//! JSON codec over the [`Value`] tree: compact and pretty writers plus a
//! recursive-descent parser. This is the `serde_json` stand-in the
//! telemetry snapshots and bench trajectory files are written with.

use crate::{Deserialize, Error, Number, Serialize, Value};

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serializes to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

/// Parses JSON text directly into a deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_break(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                write_break(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::F64(f) if f.is_finite() => {
            // Round-trippable shortest representation; integral floats keep
            // a `.0` so they re-parse as floats.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        // JSON has no Inf/NaN; null is the conventional fallback.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!("expected ',' or ']' at byte {}", self.pos)))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!("expected ',' or '}}' at byte {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one go and validate just that slice — validating
                    // from `pos` to the end of input per character would
                    // make parsing quadratic. Scanning bytes is safe: the
                    // delimiters are ASCII and UTF-8 continuation bytes
                    // are always >= 0x80.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let n = if is_float {
            Number::F64(text.parse().map_err(|_| Error::custom(format!("bad number `{text}`")))?)
        } else if text.starts_with('-') {
            Number::I64(text.parse().map_err(|_| Error::custom(format!("bad number `{text}`")))?)
        } else {
            Number::U64(text.parse().map_err(|_| Error::custom(format!("bad number `{text}`")))?)
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a \"quoted\"\nname".into())),
            (
                "counts".into(),
                Value::Array(vec![
                    Value::Number(Number::U64(3)),
                    Value::Number(Number::I64(-4)),
                    Value::Number(Number::F64(0.5)),
                ]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("missing".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let compact = to_string(&v);
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Value::Number(Number::F64(2.0));
        let text = to_string(&v);
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<Vec<u64>>("[1] junk").is_err());
    }
}
