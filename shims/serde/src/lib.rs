//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build environment has no access to crates.io, so this workspace
//! ships its own minimal serialization framework under the same crate
//! name: a [`Value`] tree model, [`Serialize`]/[`Deserialize`] traits
//! converting to and from it, `#[derive(Serialize, Deserialize)]` macros
//! (from the sibling `serde_derive` shim), and a JSON codec in [`json`].
//!
//! Encoding conventions (self-consistent, not wire-compatible with
//! `serde_json` in every corner):
//!
//! - named-field structs → JSON objects;
//! - newtype structs → their inner value (transparent);
//! - tuple structs and tuples → arrays;
//! - unit enum variants → strings; data variants → `{"Variant": ...}`;
//! - `Option` → `null` or the value;
//! - maps → arrays of `[key, value]` pairs (keys need not be strings);
//! - `u64`/`i64`/`usize` → JSON numbers printed in full precision.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;
mod value;

pub use value::{Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$variant(*self as $conv))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i128()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), v)),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_serde_int!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64
);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(Error::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

/// `&'static str` deserializes by interning into a process-lifetime pool
/// (one leak per *distinct* string). The workspace only uses this for
/// small fixed vocabularies — city names, job categories — so the pool
/// stays bounded by the vocabulary size.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
        match v {
            Value::String(s) => {
                let mut pool = POOL.lock().expect("intern pool poisoned");
                if let Some(interned) = pool.get(s.as_str()) {
                    return Ok(interned);
                }
                let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
                pool.insert(leaked);
                Ok(leaked)
            }
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::expected("fixed-length array", v)),
                }
            }
        }
    )*};
}

impl_serde_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys
/// (tuples, derived structs) round-trip losslessly.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        for v in [-5i64, 0, i64::MAX] {
            assert_eq!(i64::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_owned().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        assert_eq!(Vec::<(u32, String)>::from_value(&v.to_value()).unwrap(), v);

        let mut m = HashMap::new();
        m.insert((1u32, 2u32), 0.5f64);
        assert_eq!(HashMap::<(u32, u32), f64>::from_value(&m.to_value()).unwrap(), m);

        let arr = [0.1f64, 0.2, 0.3];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);

        assert_eq!(Option::<u32>::from_value(&None::<u32>.to_value()).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Some(3u32).to_value()).unwrap(), Some(3));
    }

    #[test]
    fn narrowing_out_of_range_fails() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(u32::from_value(&(-1i64).to_value()).is_err());
    }
}
