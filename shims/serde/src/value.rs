//! The value tree every [`Serialize`](crate::Serialize) implementation
//! produces and every [`Deserialize`](crate::Deserialize) implementation
//! consumes.

use std::fmt;

/// A JSON-style number preserving the source representation: unsigned,
/// signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Signed integer (used when negative).
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The value as an `i128`, when integral (floats only when exact).
    pub fn as_i128(self) -> Option<i128> {
        match self {
            Number::U64(u) => Some(u as i128),
            Number::I64(i) => Some(i as i128),
            Number::F64(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => Some(f as i128),
            Number::F64(_) => None,
        }
    }

    /// The value as an `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(u) => u as f64,
            Number::I64(i) => i as f64,
            Number::F64(f) => f,
        }
    }
}

/// A serialized value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None` and unit).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_string(self))
    }
}
