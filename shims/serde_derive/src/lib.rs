//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! `serde` shim.
//!
//! The macros are hand-parsed over [`proc_macro::TokenStream`] (no `syn`,
//! no `quote` — nothing from crates.io is available offline) and support
//! exactly the shapes this workspace derives on:
//!
//! - unit, newtype, tuple, and named-field structs;
//! - enums with unit, tuple, and struct variants;
//! - no generic parameters (none of the workspace's serialized types are
//!   generic; a clear compile error is emitted if one appears).
//!
//! Generated code targets the shim's value-tree model: named structs
//! become objects, newtypes are transparent, tuple shapes become arrays,
//! unit variants become strings, and data variants become single-field
//! `{"Variant": ...}` objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim edition).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (shim edition).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The parsed shape of the deriving item.
enum Shape {
    UnitStruct,
    /// Tuple struct with this many fields (1 → transparent newtype).
    TupleStruct(usize),
    /// Named-field struct.
    NamedStruct(Vec<String>),
    /// Enum as (variant name, fields) pairs.
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&name, &shape),
                Mode::Deserialize => gen_deserialize(&name, &shape),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error parses"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        other => {
            return Err(format!("serde shim derive: expected `struct` or `enum`, found {other:?}"))
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("serde shim derive: expected item name, found {other:?}")),
    };

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: `{name}` is generic; the offline serde shim only derives non-generic items"
        ));
    }

    if kind == "enum" {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("serde shim derive: expected enum body, found {other:?}")),
        };
        return Ok((name, Shape::Enum(parse_variants(body)?)));
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok((name, Shape::TupleStruct(count_top_level_fields(g.stream()))))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
        None => Ok((name, Shape::UnitStruct)),
        other => Err(format!("serde shim derive: unexpected token after `{name}`: {other:?}")),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list at commas that sit outside any `<...>`
/// nesting (inner `(...)`/`{...}` groups are opaque single tokens already).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(Vec::new());
                continue;
            }
            _ => {}
        }
        parts.last_mut().expect("non-empty").push(tt);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut i = 0;
            skip_attributes_and_visibility(&field, &mut i);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("serde shim derive: expected field name, found {other:?}")),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|variant| {
            let mut i = 0;
            skip_attributes_and_visibility(&variant, &mut i);
            let name = match variant.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => {
                    return Err(format!(
                        "serde shim derive: expected variant name, found {other:?}"
                    ))
                }
            };
            i += 1;
            let shape = match variant.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream())?)
                }
                _ => VariantShape::Unit,
            };
            Ok((name, shape))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => {
                        format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),")
                    }
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             ({v:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!(
            "match v {{ ::serde::Value::Null => Ok({name}), \
             _ => Err(::serde::Error::expected(\"null\", v)) }}"
        ),
        Shape::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         Ok({name}({})),\n\
                     _ => Err(::serde::Error::expected(\"array of {n} elements\", v)),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         v.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Object(_) => Ok({name} {{ {} }}),\n\
                     _ => Err(::serde::Error::expected(\"object\", v)),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, vs)| matches!(vs, VariantShape::Unit))
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, vs)| match vs {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => \
                                     Ok({name}::{v}({})),\n\
                                 _ => Err(::serde::Error::expected(\"array of {n} elements\", inner)),\n\
                             }},",
                            items.join(", ")
                        ))
                    }
                    VariantShape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     inner.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => match inner {{\n\
                                 ::serde::Value::Object(_) => Ok({name}::{v} {{ {} }}),\n\
                                 _ => Err(::serde::Error::expected(\"object\", inner)),\n\
                             }},",
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => Err(::serde::Error::custom(format!(\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {data}\n\
                             other => Err(::serde::Error::custom(format!(\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }},\n\
                     _ => Err(::serde::Error::expected(\"enum value\", v)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
