//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.9) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small subset of the rand 0.9 API it actually uses —
//! [`Rng::random_range`], [`Rng::random_bool`], [`SeedableRng`], and
//! [`rngs::StdRng`] — implemented on a hand-rolled xoshiro256++ generator
//! seeded through SplitMix64 (the same construction the real `rand_chacha`
//! replacement documents for reproducible simulation work).
//!
//! Determinism contract: for a fixed seed the generated stream is stable
//! across platforms and releases of this shim; the repro scenarios'
//! calibration depends on it.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can be sampled uniformly. Implemented for the half-open and
/// inclusive std ranges over the primitive types this workspace draws.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 holds every i64/u64 value, so the difference is
                // exact for signed and unsigned types alike; the wrapping
                // add then re-applies the offset in two's complement. The
                // modulo bias over a 64-bit draw is negligible for
                // simulation purposes.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit range: every draw is already uniform.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 53-bit mantissa over the closed unit interval.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array for the shipped generators).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Shipped generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point of xoshiro.
                s = [1, 2, 3, 4];
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y = rng.random_range(3usize..9);
            assert!((3..9).contains(&y));
            let z = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let share = hits as f64 / 20_000.0;
        assert!((share - 0.25).abs() < 0.02, "got {share}");
    }

    #[test]
    fn generic_rng_arguments_accept_reborrows() {
        fn draw(rng: &mut impl Rng) -> f64 {
            helper(rng)
        }
        fn helper(rng: &mut impl Rng) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw(&mut rng).is_finite());
    }
}
