//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a small wall-clock harness under the same crate name, covering
//! the API its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], `sample_size`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology: each benchmark is warmed up for ~100 ms, then timed over
//! `sample_size` samples whose per-sample iteration count targets ~10 ms,
//! reporting the median, minimum, and maximum per-iteration time. No
//! statistical analysis, plots, or baselines — numbers print to stdout
//! and the JSON trajectory files are handled by `fbox-bench`'s telemetry
//! harness instead.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier combining a function name and a parameter, printed
/// as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with both a name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { text: format!("{name}/{parameter}") }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The timing loop driver handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample`
    /// iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    target_sample_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 30,
            warm_up: Duration::from_millis(100),
            target_sample_time: Duration::from_millis(10),
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, settings: &Settings, mut routine: F) {
    // Warm-up: run single-iteration samples until the budget is spent,
    // measuring the per-iteration cost to calibrate the sample loop.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut bencher = Bencher { iters_per_sample: 1, samples: Vec::new() };
    while warm_start.elapsed() < settings.warm_up {
        routine(&mut bencher);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos() / warm_iters.max(1) as u128;
    let iters_per_sample =
        (settings.target_sample_time.as_nanos() / per_iter.max(1)).clamp(1, 1 << 24) as u64;

    let mut bencher = Bencher { iters_per_sample, samples: Vec::new() };
    for _ in 0..settings.sample_size {
        routine(&mut bencher);
    }

    let mut per_iter_ns: Vec<f64> =
        bencher.samples.iter().map(|d| d.as_nanos() as f64 / iters_per_sample as f64).collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are not NaN"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns.first().copied().unwrap_or(0.0);
    let max = per_iter_ns.last().copied().unwrap_or(0.0);
    println!("{label:<50} time: [{} {} {}]", format_ns(min), format_ns(median), format_ns(max));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark manager: entry point of every bench target.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        run_bench(name, &self.settings, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings.clone(), _criterion: self }
    }
}

/// A group of related benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        routine: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), &self.settings, routine);
        self
    }

    /// Runs one benchmark with an explicit input (passed by reference to
    /// the closure, exactly as the real crate does).
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), &self.settings, |b| routine(b, input));
        self
    }

    /// Finishes the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        // Tiny settings so the test is fast.
        c.settings.sample_size = 3;
        c.settings.warm_up = Duration::from_millis(1);
        c.settings.target_sample_time = Duration::from_millis(1);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
