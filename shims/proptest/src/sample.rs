//! Sampling strategies over existing collections, mirroring
//! `proptest::sample`.

use crate::{SizeRange, Strategy, TestRng};

/// A strategy yielding one element of `items`, uniformly at random,
/// mirroring `proptest::sample::select`.
///
/// # Panics
///
/// Panics (on sampling) if `items` is empty — the real crate rejects an
/// empty selection at construction.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    Select { items }
}

/// See [`select`].
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.items.is_empty(), "select requires a non-empty collection");
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// A strategy yielding order-preserving random subsequences of `items`
/// with a length drawn from `size`.
///
/// # Panics
///
/// Panics (on sampling) if the maximum requested length exceeds
/// `items.len()`... the minimum is clamped to the available items, as the
/// real crate rejects such sizes at construction.
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence { items, size: size.into() }
}

/// See [`subsequence`].
pub struct Subsequence<T> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn sample(&self, rng: &mut TestRng) -> Vec<T> {
        let n_items = self.items.len();
        let min = self.size.min.min(n_items);
        let max = self.size.max.min(n_items);
        let want = min + rng.below((max - min + 1) as u64) as usize;

        // Reservoir-free selection: pick `want` distinct indices, then
        // emit them in order.
        let mut picked = vec![false; n_items];
        let mut chosen = 0usize;
        while chosen < want {
            let i = rng.below(n_items as u64) as usize;
            if !picked[i] {
                picked[i] = true;
                chosen += 1;
            }
        }
        self.items.iter().zip(&picked).filter(|(_, &p)| p).map(|(x, _)| x.clone()).collect()
    }
}
