//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a miniature property-testing framework under the same crate
//! name, covering the API surface its test suites use: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), range and tuple strategies,
//! [`collection::vec`], [`sample::subsequence`], `prop_map` /
//! `prop_flat_map` / `prop_shuffle` combinators, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the sampled inputs via
//!   the assertion message; it is not minimized.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible without a `proptest-regressions`
//!   directory.

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from arbitrary bytes (the test function name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then a splitmix scramble.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next 64 uniform bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw in the closed unit interval.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}

/// A generator of test inputs. Unlike the real crate there is no value
/// tree: sampling draws a concrete value directly.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Shuffles generated `Vec`s.
    fn prop_shuffle(self) -> Shuffle<Self> {
        Shuffle { inner: self }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;

    fn sample(&self, rng: &mut TestRng) -> Vec<T> {
        let mut items = self.inner.sample(rng);
        // Fisher–Yates.
        for i in (1..items.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
        items
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u128 - start as u128 + 1) as u64;
                start + (rng.below(span)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3), (A.0, B.1, C.2, D.3, E.4));

/// Length specification for [`collection::vec`] and
/// [`sample::subsequence`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { min: *r.start(), max: *r.end() }
    }
}

/// Outcome of one executed case body: `Pass`, or `Reject` when a
/// `prop_assume!` failed (the case is re-drawn, not counted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The body ran to completion.
    Pass,
    /// A `prop_assume!` condition failed; resample.
    Reject,
}

/// Asserts inside a `proptest!` body; panics with the formatted message on
/// failure (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?);
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_ne!($a, $b $(, $($fmt)*)?);
    };
}

/// Rejects the current case (resampled without counting) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseOutcome::Reject;
        }
    };
}

/// The test harness macro. Parses the real crate's function-per-property
/// syntax, sampling each argument strategy `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_properties! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_properties! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            let max_attempts = cfg.cases.saturating_mul(20).max(100);
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest shim: too many rejected cases ({} attempts for {} accepted)",
                    attempts,
                    accepted,
                );
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome = (move || -> $crate::CaseOutcome {
                    $(let $arg = $arg;)+
                    $body
                    $crate::CaseOutcome::Pass
                })();
                if outcome == $crate::CaseOutcome::Pass {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_properties! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_name("combinators");
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0u64..10, n))
            .prop_map(|v| v.len());
        for _ in 0..200 {
            let n = strat.sample(&mut rng);
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = TestRng::from_name("shuffle");
        let strat = crate::collection::vec(0u64..5, 8usize).prop_shuffle();
        for _ in 0..50 {
            let mut v = strat.sample(&mut rng);
            assert_eq!(v.len(), 8);
            v.sort_unstable();
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assumes(x in 0u64..100, y in 0u64..100) {
            prop_assume!(x != y);
            prop_assert_ne!(x, y);
            prop_assert!(x < 100 && y < 100, "bounds hold: {x} {y}");
        }

        #[test]
        fn subsequences_are_ordered(sub in crate::sample::subsequence((0u32..20).collect::<Vec<_>>(), 2..10)) {
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
            prop_assert!((2..10).contains(&sub.len()));
        }
    }
}
