//! Collection strategies, mirroring `proptest::collection`.

use crate::{SizeRange, Strategy, TestRng};

/// A strategy producing `Vec`s of `element` samples with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
