//! Majority-vote aggregation (paper §5.1.1: "Each profile picture was
//! labeled by three different contributors on AMT and a majority vote
//! determined the final label").
//!
//! Gender and ethnicity are voted per attribute. With three voters and
//! three ethnicity classes a 1-1-1 tie is possible; [`Vote`] then escalates
//! to extra voters (as real labeling pipelines do) up to a budget, falling
//! back to the first-cast label if the tie persists.

use fbox_marketplace::demographics::{Demographic, Ethnicity, Gender};

/// Outcome of aggregating votes for one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// The winning label.
    pub label: Demographic,
    /// Total voters consulted (3 unless ties forced escalation).
    pub voters: usize,
    /// Whether any tie-break fallback (rather than a strict majority) was
    /// used for either attribute.
    pub tie_broken: bool,
}

/// Aggregates labels by per-attribute majority. `labels` must be in voting
/// order (first three are the standard panel; the rest are escalation
/// voters consumed only on ties).
///
/// # Panics
///
/// Panics if fewer than one label is supplied.
pub fn majority_vote(labels: &[Demographic]) -> Vote {
    assert!(!labels.is_empty(), "majority vote needs at least one label");
    let (gender, g_voters, g_tie) = vote_attribute(labels, |d| d.gender as usize, &Gender::ALL);
    let (ethnicity, e_voters, e_tie) =
        vote_attribute(labels, |d| d.ethnicity as usize, &Ethnicity::ALL);
    Vote {
        label: Demographic { gender, ethnicity },
        voters: g_voters.max(e_voters),
        tie_broken: g_tie || e_tie,
    }
}

/// Majority over one attribute with escalation: start with the first
/// `min(3, len)` voters; while tied and voters remain, add one more.
fn vote_attribute<T: Copy + PartialEq>(
    labels: &[Demographic],
    key: impl Fn(&Demographic) -> usize,
    domain: &[T],
) -> (T, usize, bool) {
    let mut n = labels.len().min(3);
    loop {
        let mut counts = vec![0usize; domain.len()];
        for d in &labels[..n] {
            counts[key(d)] += 1;
        }
        let best = *counts.iter().max().expect("non-empty domain");
        let winners: Vec<usize> = (0..domain.len()).filter(|&i| counts[i] == best).collect();
        if winners.len() == 1 {
            return (domain[winners[0]], n, false);
        }
        if n < labels.len() {
            n += 1;
            continue;
        }
        // Tie persists with all voters consumed: fall back to the first
        // cast label among the tied classes.
        let first =
            labels.iter().map(&key).find(|i| winners.contains(i)).expect("some label exists");
        return (domain[first], n, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(g: Gender, e: Ethnicity) -> Demographic {
        Demographic { gender: g, ethnicity: e }
    }

    #[test]
    fn unanimous() {
        let v = majority_vote(&[
            d(Gender::Female, Ethnicity::Black),
            d(Gender::Female, Ethnicity::Black),
            d(Gender::Female, Ethnicity::Black),
        ]);
        assert_eq!(v.label, d(Gender::Female, Ethnicity::Black));
        assert_eq!(v.voters, 3);
        assert!(!v.tie_broken);
    }

    #[test]
    fn two_to_one() {
        let v = majority_vote(&[
            d(Gender::Female, Ethnicity::Black),
            d(Gender::Male, Ethnicity::Black),
            d(Gender::Female, Ethnicity::White),
        ]);
        assert_eq!(v.label, d(Gender::Female, Ethnicity::Black));
        assert!(!v.tie_broken);
    }

    #[test]
    fn three_way_ethnicity_tie_escalates() {
        // 1-1-1 on ethnicity; fourth voter settles it.
        let v = majority_vote(&[
            d(Gender::Male, Ethnicity::Asian),
            d(Gender::Male, Ethnicity::Black),
            d(Gender::Male, Ethnicity::White),
            d(Gender::Male, Ethnicity::White),
        ]);
        assert_eq!(v.label.ethnicity, Ethnicity::White);
        assert_eq!(v.voters, 4);
        assert!(!v.tie_broken);
    }

    #[test]
    fn unresolvable_tie_falls_back_to_first() {
        let v = majority_vote(&[
            d(Gender::Male, Ethnicity::Asian),
            d(Gender::Male, Ethnicity::Black),
            d(Gender::Male, Ethnicity::White),
        ]);
        assert_eq!(v.label.ethnicity, Ethnicity::Asian);
        assert!(v.tie_broken);
    }

    #[test]
    fn single_label_wins() {
        let v = majority_vote(&[d(Gender::Female, Ethnicity::White)]);
        assert_eq!(v.label, d(Gender::Female, Ethnicity::White));
        assert_eq!(v.voters, 1);
    }

    #[test]
    fn attributes_vote_independently() {
        // Gender majority female, ethnicity majority white, even though no
        // single voter said (Female, White).
        let v = majority_vote(&[
            d(Gender::Female, Ethnicity::Black),
            d(Gender::Female, Ethnicity::White),
            d(Gender::Male, Ethnicity::White),
        ]);
        assert_eq!(v.label, d(Gender::Female, Ethnicity::White));
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn empty_rejected() {
        majority_vote(&[]);
    }
}
