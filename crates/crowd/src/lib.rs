//! # fbox-crowd — crowdsourced demographic labeling simulator
//!
//! The paper inferred TaskRabbit workers' gender and ethnicity from
//! profile pictures via Amazon Mechanical Turk: three labelers per
//! picture, majority vote (§5.1.1). This crate reproduces that pipeline
//! stage so label noise can propagate into the fairness measurements:
//!
//! - [`Labeler`](labeler::Labeler): confusion-matrix voters;
//! - [`majority_vote`](majority::majority_vote): per-attribute majority
//!   with tie escalation;
//! - [`label_population`](pipeline::label_population): label a whole
//!   marketplace population and account accuracy.

pub mod labeler;
pub mod majority;
pub mod pipeline;

pub use labeler::Labeler;
pub use majority::{majority_vote, Vote};
pub use pipeline::{label_population, LabelingStats};
