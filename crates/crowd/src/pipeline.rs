//! End-to-end labeling of a worker population: ground truth → noisy
//! per-labeler votes → majority labels → accuracy accounting.
//!
//! The labeled demographics are what the marketplace *crawler* observes
//! (via [`Marketplace::with_observed_labels`]); the platform itself still
//! ranks by true appearance. Label noise thus propagates into the
//! unfairness cube exactly the way AMT mislabels did in the paper.
//!
//! [`Marketplace::with_observed_labels`]: fbox_marketplace::Marketplace::with_observed_labels

use crate::labeler::Labeler;
use crate::majority::majority_vote;
use fbox_marketplace::demographics::Demographic;
use fbox_marketplace::population::Population;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Accuracy accounting for one labeling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabelingStats {
    /// Workers labeled.
    pub n_workers: usize,
    /// Share of workers whose final gender label is correct.
    pub gender_accuracy: f64,
    /// Share of workers whose final ethnicity label is correct.
    pub ethnicity_accuracy: f64,
    /// Share of workers whose full label is correct.
    pub exact_accuracy: f64,
    /// Workers that needed a tie-break fallback.
    pub tie_breaks: usize,
    /// Total votes cast (3 per worker plus escalations).
    pub votes_cast: usize,
}

/// Labels every worker with a 3-voter panel drawn round-robin from
/// `labelers` (plus escalation voters on ties), and returns the final
/// labels in worker order together with accuracy statistics.
///
/// # Panics
///
/// Panics if `labelers` is empty.
pub fn label_population(
    population: &Population,
    labelers: &[Labeler],
    seed: u64,
) -> (Vec<Demographic>, LabelingStats) {
    assert!(!labelers.is_empty(), "need at least one labeler");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels = Vec::with_capacity(population.len());
    let mut correct_gender = 0usize;
    let mut correct_eth = 0usize;
    let mut exact = 0usize;
    let mut tie_breaks = 0usize;
    let mut votes_cast = 0usize;

    for (wi, worker) in population.workers().iter().enumerate() {
        // A panel of up to 5 voters: 3 standard + 2 escalation.
        let panel: Vec<Demographic> = (0..5)
            .map(|v| labelers[(wi + v) % labelers.len()].label(worker.demographic, &mut rng))
            .collect();
        let vote = majority_vote(&panel);
        votes_cast += vote.voters;
        if vote.tie_broken {
            tie_breaks += 1;
        }
        if vote.label.gender == worker.demographic.gender {
            correct_gender += 1;
        }
        if vote.label.ethnicity == worker.demographic.ethnicity {
            correct_eth += 1;
        }
        if vote.label == worker.demographic {
            exact += 1;
        }
        labels.push(vote.label);
    }

    let n = population.len().max(1) as f64;
    let stats = LabelingStats {
        n_workers: population.len(),
        gender_accuracy: correct_gender as f64 / n,
        ethnicity_accuracy: correct_eth as f64 / n,
        exact_accuracy: exact as f64 / n,
        tie_breaks,
        votes_cast,
    };
    (labels, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> Population {
        Population::paper(21)
    }

    #[test]
    fn oracle_panel_is_exact() {
        let p = population();
        let labelers = vec![Labeler::oracle(0), Labeler::oracle(1), Labeler::oracle(2)];
        let (labels, stats) = label_population(&p, &labelers, 5);
        assert_eq!(labels.len(), p.len());
        assert_eq!(stats.exact_accuracy, 1.0);
        assert_eq!(stats.tie_breaks, 0);
        // Exactly 3 votes per worker (majority reached immediately).
        assert_eq!(stats.votes_cast, 3 * p.len());
    }

    #[test]
    fn majority_beats_individual_accuracy() {
        // Three 80 %-accurate voters give ≈ 0.8³+3·0.8²·0.2 ≈ 0.896 per
        // attribute.
        let p = population();
        let labelers: Vec<Labeler> = (0..3).map(|i| Labeler::with_accuracy(i, 0.8)).collect();
        let (_, stats) = label_population(&p, &labelers, 5);
        assert!(stats.gender_accuracy > 0.85, "got {}", stats.gender_accuracy);
        assert!(stats.ethnicity_accuracy > 0.85, "got {}", stats.ethnicity_accuracy);
    }

    #[test]
    fn labeling_is_deterministic() {
        let p = population();
        let labelers: Vec<Labeler> = (0..4).map(|i| Labeler::with_accuracy(i, 0.9)).collect();
        let (a, _) = label_population(&p, &labelers, 7);
        let (b, _) = label_population(&p, &labelers, 7);
        assert_eq!(a, b);
        let (c, _) = label_population(&p, &labelers, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn noisy_labels_disagree_sometimes() {
        let p = population();
        let labelers: Vec<Labeler> = (0..3).map(|i| Labeler::with_accuracy(i, 0.7)).collect();
        let (labels, stats) = label_population(&p, &labelers, 9);
        let wrong = labels.iter().zip(p.workers()).filter(|(l, w)| **l != w.demographic).count();
        assert!(wrong > 0, "70 % labelers must produce some mislabels");
        assert!(stats.exact_accuracy < 1.0);
    }
}
