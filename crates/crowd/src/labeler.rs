//! Simulated AMT labelers with per-attribute confusion matrices.
//!
//! The paper inferred tasker demographics by showing profile pictures to
//! Amazon Mechanical Turk workers (§5.1.1). Labelers are imperfect; each
//! simulated labeler draws the label from a confusion distribution
//! conditioned on the ground truth.

use fbox_marketplace::demographics::{Demographic, Ethnicity, Gender};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One crowd labeler.
///
/// `gender_confusion[truth][label]` and `ethnicity_confusion[truth][label]`
/// are row-stochastic matrices over the [`Gender::ALL`] /
/// [`Ethnicity::ALL`] orders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Labeler {
    /// Labeler id (stable across a study).
    pub id: u64,
    gender_confusion: [[f64; 2]; 2],
    ethnicity_confusion: [[f64; 3]; 3],
}

impl Labeler {
    /// A labeler with explicit confusion matrices.
    ///
    /// # Panics
    ///
    /// Panics if any row does not sum to 1 (±1e-9) or has negative
    /// entries.
    pub fn new(
        id: u64,
        gender_confusion: [[f64; 2]; 2],
        ethnicity_confusion: [[f64; 3]; 3],
    ) -> Self {
        for row in &gender_confusion {
            validate_row(row);
        }
        for row in &ethnicity_confusion {
            validate_row(row);
        }
        Self { id, gender_confusion, ethnicity_confusion }
    }

    /// A labeler that answers correctly with probability `accuracy` and
    /// spreads the remaining mass uniformly over the wrong labels.
    pub fn with_accuracy(id: u64, accuracy: f64) -> Self {
        assert!((0.0..=1.0).contains(&accuracy), "accuracy must be in [0,1]");
        let g_off = (1.0 - accuracy) / 1.0;
        let e_off = (1.0 - accuracy) / 2.0;
        let mut gc = [[g_off; 2]; 2];
        let mut ec = [[e_off; 3]; 3];
        for (i, row) in gc.iter_mut().enumerate() {
            row[i] = accuracy;
        }
        for (i, row) in ec.iter_mut().enumerate() {
            row[i] = accuracy;
        }
        Self::new(id, gc, ec)
    }

    /// A perfect labeler.
    pub fn oracle(id: u64) -> Self {
        Self::with_accuracy(id, 1.0)
    }

    /// Labels one profile picture.
    pub fn label(&self, truth: Demographic, rng: &mut impl Rng) -> Demographic {
        let g_row = self.gender_confusion[truth.gender.value_id().0 as usize];
        let e_row = self.ethnicity_confusion[truth.ethnicity.value_id().0 as usize];
        let gender = Gender::ALL[sample_row(&g_row, rng)];
        let ethnicity = Ethnicity::ALL[sample_row(&e_row, rng)];
        Demographic { gender, ethnicity }
    }
}

fn validate_row(row: &[f64]) {
    for &p in row {
        assert!(p >= 0.0, "confusion probabilities must be non-negative");
    }
    let sum: f64 = row.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "confusion row must sum to 1, got {sum}");
}

fn sample_row(row: &[f64], rng: &mut impl Rng) -> usize {
    let n = row.len();
    assert!(n > 0, "confusion row cannot be empty");
    let r: f64 = rng.random_range(0.0..1.0);
    let mut acc = 0.0;
    for (i, &p) in row.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    n - 1 // floating-point slack lands in the last bucket
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> Demographic {
        Demographic { gender: Gender::Female, ethnicity: Ethnicity::Black }
    }

    #[test]
    fn oracle_is_always_right() {
        let l = Labeler::oracle(1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(l.label(truth(), &mut rng), truth());
        }
    }

    #[test]
    fn accuracy_is_respected_empirically() {
        let l = Labeler::with_accuracy(1, 0.8);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut correct_gender = 0;
        let mut correct_eth = 0;
        for _ in 0..n {
            let lab = l.label(truth(), &mut rng);
            if lab.gender == truth().gender {
                correct_gender += 1;
            }
            if lab.ethnicity == truth().ethnicity {
                correct_eth += 1;
            }
        }
        assert!((correct_gender as f64 / n as f64 - 0.8).abs() < 0.02);
        assert!((correct_eth as f64 / n as f64 - 0.8).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_rows_rejected() {
        Labeler::new(1, [[0.5, 0.4], [0.0, 1.0]], [[1.0, 0.0, 0.0]; 3]);
    }

    #[test]
    fn zero_accuracy_never_right() {
        let l = Labeler::with_accuracy(1, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let lab = l.label(truth(), &mut rng);
            assert_ne!(lab.gender, truth().gender);
            assert_ne!(lab.ethnicity, truth().ethnicity);
        }
    }
}
