//! The noise sources the paper controls for (§5.1.2, after Hannak et
//! al.'s web-search personalization methodology): the carry-over effect,
//! A/B testing, and geolocation — and the knobs the study protocol uses to
//! suppress them (12-minute spacing, repeated executions, a fixed proxy
//! location).

use serde::{Deserialize, Serialize};

/// Magnitudes of the three noise sources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Peak score perturbation from a recent previous query (carry-over).
    pub carryover_strength: f64,
    /// Minutes until carry-over decays to half strength. Hannak et al.
    /// observed carry-over dissipating within ~10 minutes; the paper's
    /// extension waits 12.
    pub carryover_halflife_min: f64,
    /// Score perturbation between A/B test buckets.
    pub ab_strength: f64,
    /// Number of A/B buckets a request can land in.
    pub ab_buckets: u64,
    /// Score perturbation when the request's origin location is not
    /// pinned (distributed infrastructure / geolocation noise).
    pub geo_strength: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            carryover_strength: 0.25,
            carryover_halflife_min: 2.0,
            ab_strength: 0.08,
            ab_buckets: 4,
            geo_strength: 0.15,
        }
    }
}

impl NoiseModel {
    /// No noise at all (for isolating the personalization signal in
    /// tests).
    pub fn none() -> Self {
        Self {
            carryover_strength: 0.0,
            carryover_halflife_min: 1.0,
            ab_strength: 0.0,
            ab_buckets: 1,
            geo_strength: 0.0,
        }
    }

    /// Carry-over magnitude `minutes` after the previous query:
    /// exponential decay from `carryover_strength`.
    pub fn carryover_at(&self, minutes_since_previous: f64) -> f64 {
        assert!(minutes_since_previous >= 0.0);
        self.carryover_strength * 0.5f64.powf(minutes_since_previous / self.carryover_halflife_min)
    }
}

/// The context of one search request — everything the protocol can
/// control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestContext {
    /// Wall-clock minute of the request (drives A/B bucket churn and
    /// carry-over decay).
    pub time_min: f64,
    /// The previous query this user ran, if any, and when.
    pub previous: Option<(String, f64)>,
    /// Whether the request goes through the study's fixed proxy. When
    /// `false`, the request's effective origin jitters (geolocation
    /// noise).
    pub proxied: bool,
}

impl RequestContext {
    /// A fresh, proxied request at time 0 — the protocol's ideal.
    pub fn clean() -> Self {
        Self { time_min: 0.0, previous: None, proxied: true }
    }

    /// Minutes since the previous query, if any.
    pub fn minutes_since_previous(&self) -> Option<f64> {
        self.previous.as_ref().map(|&(_, t)| {
            assert!(self.time_min >= t, "previous query cannot be in the future");
            self.time_min - t
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carryover_decays() {
        let n = NoiseModel::default();
        let now = n.carryover_at(0.0);
        assert!((now - n.carryover_strength).abs() < 1e-12);
        let half = n.carryover_at(n.carryover_halflife_min);
        assert!((half - n.carryover_strength / 2.0).abs() < 1e-12);
        // After the protocol's 12-minute wait the effect is negligible.
        assert!(n.carryover_at(12.0) < 0.02 * n.carryover_strength + 1e-9);
    }

    #[test]
    fn none_model_is_silent() {
        let n = NoiseModel::none();
        assert_eq!(n.carryover_at(0.0), 0.0);
        assert_eq!(n.ab_strength, 0.0);
        assert_eq!(n.geo_strength, 0.0);
    }

    #[test]
    fn context_time_arithmetic() {
        let ctx = RequestContext {
            time_min: 30.0,
            previous: Some(("yard work".into(), 18.0)),
            proxied: true,
        };
        assert_eq!(ctx.minutes_since_previous(), Some(12.0));
        assert_eq!(RequestContext::clean().minutes_since_previous(), None);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn future_previous_rejected() {
        let ctx =
            RequestContext { time_min: 5.0, previous: Some(("q".into(), 10.0)), proxied: true };
        ctx.minutes_since_previous();
    }
}
