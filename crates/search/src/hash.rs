//! Deterministic hashing utilities shared by the search simulator.
//!
//! Every stochastic-looking quantity in the simulator (posting base
//! scores, personalization affinities, noise) is a pure function of a
//! seed and a composite key, so whole studies replay bit-identically.

/// SplitMix64 mixer.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a string into the key space.
pub fn mix_str(seed: u64, s: &str) -> u64 {
    s.bytes().fold(seed, |acc, b| mix(acc, b as u64 + 1))
}

/// Uniform value in `[0, 1)` from a key.
pub fn unit(key: u64) -> f64 {
    (key >> 11) as f64 / (1u64 << 53) as f64
}

/// Signed value in `[-1, 1)` from a key — used for affinity directions.
pub fn signed(key: u64) -> f64 {
    unit(key) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_eq!(mix_str(0, "abc"), mix_str(0, "abc"));
        assert_ne!(mix_str(0, "abc"), mix_str(0, "abd"));
    }

    #[test]
    fn ranges() {
        for i in 0..1000 {
            let u = unit(mix(42, i));
            assert!((0.0..1.0).contains(&u));
            let s = signed(mix(43, i));
            assert!((-1.0..1.0).contains(&s));
        }
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 100_000;
        let mean: f64 = (0..n).map(|i| unit(mix(7, i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
