//! # fbox-search — a personalized job-search engine simulator
//!
//! The substrate behind the paper's Google job search case study
//! (§5.1.2). The real study drove live Google searches through a Chrome
//! extension from recruited Prolific participants; this crate reproduces
//! the same pipeline shape, seeded and offline:
//!
//! - a deterministic [posting corpus](corpus) per (query, location);
//! - a [personalization model](personalize) where group-correlated
//!   profile signals shift rankings — the unfairness source;
//! - the three [noise sources](noise) the paper controls for (carry-over,
//!   A/B testing, geolocation) and the [extension protocol](extension)
//!   that suppresses them (12-minute spacing, repeated runs, fixed
//!   proxy);
//! - the [Prolific study](study): participants per (group, location)
//!   running the 20 study queries, yielding `SearchObservations` for the
//!   F-Box.

pub mod corpus;
pub mod engine;
pub mod extension;
pub mod hash;
pub mod noise;
pub mod personalize;
pub mod study;
pub mod terms;
pub mod user;

pub use engine::SearchEngine;
pub use extension::ExtensionRunner;
pub use noise::{NoiseModel, RequestContext};
pub use personalize::{PersonalizationOverride, PersonalizationProfile};
pub use study::{
    google_universe, run_study, run_study_journaled, run_study_resilient, ParticipantRecord,
    SessionRecord, StudyDesign, StudyJournal, StudyRun, StudyStats, LOCATIONS, QUERIES,
};
pub use user::SearchUser;
