//! Study participants: the users whose personalized result lists the
//! framework compares.

use fbox_marketplace::demographics::Demographic;
use serde::{Deserialize, Serialize};

/// A search-engine user (a Prolific participant in the paper's study).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchUser {
    /// Stable user id; also seeds the user's idiosyncratic taste.
    pub id: u64,
    /// The participant's demographic profile (screened by the recruiting
    /// platform in the paper; ground truth here).
    pub demographic: Demographic,
}

impl SearchUser {
    /// Creates a user.
    pub fn new(id: u64, demographic: Demographic) -> Self {
        Self { id, demographic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbox_marketplace::demographics::{Ethnicity, Gender};

    #[test]
    fn construction() {
        let u =
            SearchUser::new(7, Demographic { gender: Gender::Female, ethnicity: Ethnicity::Black });
        assert_eq!(u.id, 7);
        assert_eq!(u.demographic.name(), "Black Female");
    }
}
