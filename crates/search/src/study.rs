//! The Prolific user study (paper §5.1.2, Figure 9): recruit participants
//! per demographic group, have each run the query protocol at their
//! location, and assemble the F-Box inputs.
//!
//! Design notes vs. the paper:
//!
//! - The paper lists ten study locations but reports Washington, DC as the
//!   fairest Google location (§5.2.2); DC is therefore included as an
//!   11th location so that finding can be reproduced. Similarly,
//!   Furniture Assembly queries are included because §5.2.2 reports them
//!   as the fairest, although Table 7 omits the category.
//! - The paper's crawl covered 1–4 locations per job (Table 7); the
//!   simulator runs every query at every location so the unfairness cube
//!   is complete and the threshold algorithm (rather than the naive
//!   fallback) answers the quantification problems. [`paper_coverage`]
//!   preserves Table 7's numbers for the dataset-statistics reproduction.

use crate::engine::SearchEngine;
use crate::extension::ExtensionRunner;
use crate::user::SearchUser;
use fbox_core::model::{Schema, Universe};
use fbox_core::observations::SearchObservations;
use fbox_marketplace::demographics::{Demographic, Ethnicity, Gender};
use fbox_resilience::{hash, Disposition, Journal, PayloadFault, Resilience};
use serde::{Deserialize, Serialize};

/// The study's locations: the paper's ten plus Washington, DC.
pub const LOCATIONS: [&str; 11] = [
    "London, UK",
    "New York City, NY",
    "Los Angeles, CA",
    "Boston, MA",
    "Bristol, UK",
    "Charlotte, NC",
    "Pittsburgh, PA",
    "Birmingham, UK",
    "Manchester, UK",
    "Detroit, MI",
    "Washington, DC",
];

/// The 20 study queries `(name, category)` — the paper's "top 10 and
/// bottom 10 frequently searched" TaskRabbit queries, drawn from the
/// categories of Table 7 plus Furniture Assembly (see module docs).
/// Sub-query names reuse the marketplace taxonomy so cross-platform
/// hypotheses transfer (paper §5.2.1 → §5.2.2).
pub const QUERIES: [(&str, &str); 20] = [
    ("yard work", "Yard Work"),
    ("Lawn Mowing", "Yard Work"),
    ("Leaf Raking", "Yard Work"),
    ("Hedge Trimming", "Yard Work"),
    ("general cleaning", "General Cleaning"),
    ("office cleaning jobs", "General Cleaning"),
    ("private cleaning jobs", "General Cleaning"),
    ("Home Cleaning", "General Cleaning"),
    ("Deep Cleaning", "General Cleaning"),
    ("event staffing", "Event Staffing"),
    ("Event Decorating", "Event Staffing"),
    ("moving job", "Moving"),
    ("Help Moving", "Moving"),
    ("run errand", "Run Errands"),
    ("Running Errands", "Run Errands"),
    ("Shopping Errand", "Run Errands"),
    ("Wait In Line", "Run Errands"),
    ("furniture assembly", "Furniture Assembly"),
    ("IKEA Assembly", "Furniture Assembly"),
    ("Bed Assembly", "Furniture Assembly"),
];

/// Table 7 verbatim: number of locations per job in the paper's own
/// crawl.
pub const PAPER_COVERAGE: [(&str, usize); 5] = [
    ("yard work", 4),
    ("general cleaning", 3),
    ("event staffing", 1),
    ("moving job", 1),
    ("run errand", 1),
];

/// Table 7's coverage map (paper data, reproduced as-is by the
/// dataset-statistics runner).
pub fn paper_coverage() -> &'static [(&'static str, usize)] {
    &PAPER_COVERAGE
}

/// Study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyDesign {
    /// Participants recruited per (full demographic group, location) —
    /// the paper recruited "an average of 3 participants per study".
    pub participants_per_group: usize,
    /// Seed for participant identity derivation.
    pub seed: u64,
}

impl Default for StudyDesign {
    fn default() -> Self {
        Self { participants_per_group: 3, seed: 0xF0CA }
    }
}

/// Summary statistics of a completed study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyStats {
    /// Number of (group, location) studies — 6 × 11 = 66 here; the paper
    /// ran 60 over its 10 locations.
    pub n_studies: usize,
    /// Total participants.
    pub n_participants: usize,
    /// Queries each participant ran.
    pub n_queries: usize,
    /// Total search requests issued (incl. repeats and formulations).
    pub n_requests_lower_bound: usize,
    /// Participant lists lost to exhausted retry budgets.
    pub n_failed: usize,
    /// Participant lists dropped because the payload arrived corrupted.
    pub n_quarantined: usize,
    /// Participant lists delivered truncated (their top half is used).
    pub n_truncated: usize,
    /// Total retries across all (participant, query) sessions.
    pub n_retries: u64,
    /// Total virtual backoff time spent in retries, in milliseconds.
    pub backoff_virtual_ms: u64,
    /// Fraction of participant lists delivered:
    /// `delivered / (delivered + n_failed + n_quarantined)`; 1.0 for a
    /// fault-free study.
    pub coverage: f64,
}

/// The universe of the Google study: 11-group lattice, the 20 queries with
/// category tags, and the 11 locations.
pub fn google_universe() -> Universe {
    let mut u = Universe::with_all_groups(Schema::gender_ethnicity());
    for (name, category) in QUERIES {
        u.add_query(name, Some(category));
    }
    for name in LOCATIONS {
        u.add_location(name, city_region(name));
    }
    u
}

fn city_region(name: &str) -> Option<&'static str> {
    fbox_marketplace::city::city(name).map(|c| c.region)
}

/// One participant's assignment: identity plus where their lists go.
/// Enumerated in serial recruitment order so ids — and therefore the
/// derived user seeds and fault keys — are independent of how the
/// sessions are scheduled.
struct Participant {
    /// Recruitment-order id: the stable identity faults are keyed by.
    uid: u64,
    user: SearchUser,
    location: &'static str,
    l: fbox_core::model::LocationId,
}

/// What one (participant, query) session delivered, with its resilience
/// accounting. Public because it is the unit the study journal persists:
/// `fbox-store`'s durable driver encodes one [`ParticipantRecord`] (all 20
/// sessions) per segment-log record.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// The query this session ran.
    pub q: fbox_core::model::QueryId,
    /// `None` when the list was lost (budget exhausted or corrupted).
    pub list: Option<fbox_core::observations::UserList>,
    /// The payload arrived truncated; `list` holds its surviving top half.
    pub truncated: bool,
    /// The payload arrived corrupted and the list was dropped.
    pub quarantined: bool,
    /// Every attempt failed at the transport level.
    pub failed: bool,
    /// Retries consumed before resolution.
    pub retries: u32,
    /// Virtual backoff accumulated across those retries, in milliseconds.
    pub backoff_ms: u64,
}

/// One journal entry: everything one participant's session delivered. The
/// crash boundary of a durable study is the participant — a crash loses at
/// most the participants not yet journaled, and recovery re-runs exactly
/// those (deterministically, so the result is unchanged).
#[derive(Debug, Clone, PartialEq)]
pub struct ParticipantRecord {
    /// The participant's 20 query sessions, in protocol order.
    pub sessions: Vec<SessionRecord>,
}

/// The study's write-ahead journal, keyed by recruitment-order uid.
pub type StudyJournal = Journal<ParticipantRecord>;

/// Everything a (possibly degraded, possibly partial) study produced.
#[derive(Debug, Clone)]
pub struct StudyRun {
    /// The Google universe ([`google_universe`]).
    pub universe: Universe,
    /// Observations folded from every journaled participant so far.
    pub observations: SearchObservations,
    /// Statistics folded over the journal.
    pub stats: StudyStats,
    /// Whether every participant has been resolved. `false` after an
    /// interrupted run — resume by calling [`run_study_journaled`] again
    /// with the same journal.
    pub complete: bool,
}

/// Runs the full study under the resilience configuration from the
/// environment ([`Resilience::from_env`]; inert unless `FBOX_FAULTS` is
/// set): for every location and every full demographic group,
/// `participants_per_group` users each execute all 20 queries via the
/// extension protocol.
///
/// Participant sessions are independent (each starts a fresh clock), so
/// they are fanned out across `FBOX_THREADS` workers; each cell's lists
/// are merged back in recruitment order, making the observations
/// identical to a serial run at any thread count.
pub fn run_study(
    design: &StudyDesign,
    engine: &SearchEngine,
    runner: &ExtensionRunner,
) -> (Universe, SearchObservations, StudyStats) {
    run_study_resilient(design, engine, runner, &Resilience::from_env())
}

/// [`run_study`] under an explicit [`Resilience`] configuration.
///
/// Faults are keyed per `(participant, query)` — a pure function of the
/// participant's recruitment id and the query name — so the degraded
/// observations are byte-identical at any `FBOX_THREADS`. Transient and
/// rate-limit faults are absorbed by retries (the engine is deterministic,
/// so a retry re-delivers the same page; the cost is virtual backoff
/// time); a corrupted payload drops the list into quarantine; a truncated
/// payload keeps its top half; an exhausted retry budget loses the list.
/// Lost lists simply shrink the affected `(query, location)` cell — and if
/// a cell loses every list it becomes a missing cube cell, which the
/// downstream algorithms handle (see `fbox-core`'s partial-cube top-k).
pub fn run_study_resilient(
    design: &StudyDesign,
    engine: &SearchEngine,
    runner: &ExtensionRunner,
    resilience: &Resilience,
) -> (Universe, SearchObservations, StudyStats) {
    let mut journal = StudyJournal::new();
    let run = run_study_journaled(design, engine, runner, resilience, &mut journal, &mut |_, _| {});
    (run.universe, run.observations, run.stats)
}

/// [`run_study_resilient`] with a write-ahead journal and a durable sink,
/// mirroring the crawl's `crawl_with_sink`.
///
/// Participants already present in `journal` (keyed by recruitment uid)
/// are **replayed**, not re-run; `resilience.interrupt_after` stops
/// *executing* new participants after that many (replays are free), which
/// is how crash tests interrupt a study at a deterministic participant
/// boundary. Newly resolved participants are journaled — and handed to
/// `sink(uid, record)` — in recruitment order during the sequential merge
/// pass, so a persisting sink assigns every record the same on-disk index
/// at any `FBOX_THREADS`. Observations and statistics fold from the
/// *whole* journal in recruitment order, making an interrupted-and-resumed
/// study byte-identical to an uninterrupted one.
pub fn run_study_journaled(
    design: &StudyDesign,
    engine: &SearchEngine,
    runner: &ExtensionRunner,
    resilience: &Resilience,
    journal: &mut StudyJournal,
    sink: &mut dyn FnMut(u64, &ParticipantRecord),
) -> StudyRun {
    let _span = fbox_telemetry::span!("search.run_study");
    let _trace = fbox_trace::span("search.run_study");
    let universe = google_universe();
    let mut participants = Vec::new();
    let mut user_id = 0u64;

    for (li, &location) in LOCATIONS.iter().enumerate() {
        let l = universe.location_id(location).expect("registered");
        for gender in Gender::ALL {
            for ethnicity in Ethnicity::ALL {
                for p in 0..design.participants_per_group {
                    let user = SearchUser::new(
                        design.seed ^ crate::hash::mix(user_id, (li as u64) << 32 | p as u64),
                        Demographic { gender, ethnicity },
                    );
                    participants.push(Participant { uid: user_id, user, location, l });
                    user_id += 1;
                }
            }
        }
    }
    let n_participants = participants.len();

    // Work list: participants not yet journaled, in recruitment order,
    // truncated at the configured interrupt point.
    let mut work: Vec<&Participant> = Vec::new();
    let mut interrupted = false;
    for participant in &participants {
        if journal.contains(participant.uid) {
            continue;
        }
        if let Some(cap) = resilience.interrupt_after {
            if work.len() >= cap {
                interrupted = true;
                break;
            }
        }
        work.push(participant);
    }

    let sessions = fbox_par::par_map(&work, |&participant| {
        // Each participant's session starts fresh; queries run
        // back-to-back under the protocol's spacing. The protocol clock is
        // deliberately not advanced by retry backoff: fault injection must
        // stay orthogonal to the engine's noise model, or the fault seed
        // would leak into the *content* of recovered pages.
        let _participant_trace = fbox_trace::span_args("study.participant", |a| {
            a.u64("uid", participant.uid);
            a.str("location", participant.location);
        });
        let mut clock = 0.0f64;
        QUERIES
            .iter()
            .map(|(query, category)| {
                let q = universe.query_id(query).expect("registered");
                let key = hash::mix(
                    hash::cell_key("search.study", participant.location, query),
                    participant.uid,
                );
                let plan = resilience.plan_cell_traced(key);
                let mut cell = SessionRecord {
                    q,
                    list: None,
                    truncated: false,
                    quarantined: false,
                    failed: false,
                    retries: plan.retries,
                    backoff_ms: plan.backoff_ms,
                };
                match plan.disposition {
                    Disposition::Exhausted => cell.failed = true,
                    Disposition::Run(payload) => {
                        let (mut list, end) = runner.run_query(
                            engine,
                            &participant.user,
                            query,
                            category,
                            participant.location,
                            clock,
                        );
                        clock = end;
                        match payload {
                            None => cell.list = Some(list),
                            Some(PayloadFault::Truncate) => {
                                let keep = list.results.len().div_ceil(2);
                                list.results.truncate(keep);
                                cell.truncated = true;
                                cell.list = Some(list);
                            }
                            Some(PayloadFault::Corrupt) => {
                                cell.quarantined = true;
                                fbox_trace::instant_args("study.quarantine", |a| {
                                    a.u64("uid", participant.uid);
                                    a.str("query", *query);
                                });
                            }
                        }
                    }
                }
                cell
            })
            .collect::<Vec<_>>()
    });

    // Merge pass, sequential in recruitment order: journal each newly
    // executed participant and hand the record to the durable sink.
    for (participant, sessions) in work.iter().zip(sessions) {
        let rejected = journal.append(participant.uid, ParticipantRecord { sessions });
        assert!(
            rejected.is_none(),
            "work list never contains journaled participants (uid {})",
            participant.uid
        );
        sink(participant.uid, journal.get(participant.uid).expect("record was just appended"));
    }

    // Fold pass: rebuild observations and statistics from the *whole*
    // journal, in recruitment order.
    let mut observations = SearchObservations::new();
    let mut n_failed = 0usize;
    let mut n_quarantined = 0usize;
    let mut n_truncated = 0usize;
    let mut n_retries = 0u64;
    let mut backoff_virtual_ms = 0u64;
    let mut delivered = 0usize;
    for participant in &participants {
        let Some(record) = journal.get(participant.uid) else { continue };
        for cell in &record.sessions {
            n_retries += u64::from(cell.retries);
            backoff_virtual_ms += cell.backoff_ms;
            n_failed += usize::from(cell.failed);
            n_quarantined += usize::from(cell.quarantined);
            n_truncated += usize::from(cell.truncated);
            if let Some(list) = &cell.list {
                observations.push(cell.q, participant.l, list.clone());
                delivered += 1;
            }
        }
    }
    let lost = n_failed + n_quarantined;
    let coverage =
        if delivered + lost == 0 { 0.0 } else { delivered as f64 / (delivered + lost) as f64 };

    let stats = StudyStats {
        n_studies: LOCATIONS.len() * 6,
        n_participants,
        n_queries: QUERIES.len(),
        n_requests_lower_bound: n_participants
            * QUERIES.len()
            * crate::terms::N_FORMULATIONS
            * runner.repeats,
        n_failed,
        n_quarantined,
        n_truncated,
        n_retries,
        backoff_virtual_ms,
        coverage,
    };
    let t = fbox_telemetry::global();
    if t.enabled() {
        t.counter("study.participants").add(stats.n_participants as u64);
        t.counter("study.requests").add(stats.n_requests_lower_bound as u64);
        t.counter("study.retries").add(n_retries);
        t.counter("study.lists_failed").add(n_failed as u64);
        t.counter("study.lists_quarantined").add(n_quarantined as u64);
        t.counter("study.lists_truncated").add(n_truncated as u64);
        if backoff_virtual_ms > 0 {
            t.histogram("study.backoff_virtual_ms")
                .record(std::time::Duration::from_millis(backoff_virtual_ms));
        }
    }
    let complete = !interrupted && journal.len() == n_participants;
    StudyRun { universe, observations, stats, complete }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::personalize::PersonalizationProfile;

    #[test]
    fn universe_dimensions() {
        let u = google_universe();
        assert_eq!(u.n_groups(), 11);
        assert_eq!(u.n_queries(), 20);
        assert_eq!(u.n_locations(), 11);
        assert!(u.location_id("Washington, DC").is_some());
        assert_eq!(u.queries_in_category("General Cleaning").len(), 5);
    }

    #[test]
    fn paper_coverage_matches_table7() {
        let total: usize = paper_coverage().iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 10, "Table 7 sums to the 10 study locations");
    }

    #[test]
    fn study_produces_complete_observations() {
        let design = StudyDesign { participants_per_group: 2, seed: 1 };
        let engine = SearchEngine::new(PersonalizationProfile::uniform(0.1), NoiseModel::none(), 3);
        let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
        let (universe, obs, stats) = run_study(&design, &engine, &runner);
        assert_eq!(stats.n_participants, 11 * 6 * 2);
        assert_eq!(obs.n_cells(), 20 * 11, "every (query, location) cell observed");
        // Each cell holds one list per participant at that location.
        let q = universe.query_id("yard work").unwrap();
        let l = universe.location_id("Boston, MA").unwrap();
        assert_eq!(obs.get(q, l).unwrap().len(), 6 * 2);
    }

    #[test]
    fn faulted_study_degrades_gracefully() {
        use fbox_resilience::{FaultPlan, FaultProfile};
        let design = StudyDesign { participants_per_group: 2, seed: 1 };
        let engine = SearchEngine::new(PersonalizationProfile::uniform(0.1), NoiseModel::none(), 3);
        let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
        let r = Resilience::with_plan(FaultPlan::new(5, FaultProfile::heavy()));
        let (_, obs, stats) = run_study_resilient(&design, &engine, &runner, &r);
        let (_, clean_obs, clean) = run_study(&design, &engine, &runner);

        // The clean run is inert and fully covered…
        assert_eq!(clean.n_failed + clean.n_quarantined + clean.n_truncated, 0);
        assert_eq!(clean.coverage, 1.0);
        assert_eq!(clean_obs.n_cells(), 220);
        // …the faulted run loses lists in every mode but keeps going.
        assert!(stats.n_failed > 0);
        assert!(stats.n_quarantined > 0);
        assert!(stats.n_truncated > 0);
        assert!(stats.n_retries > 0);
        assert!(stats.backoff_virtual_ms > 0);
        assert!(stats.coverage > 0.5 && stats.coverage < 1.0);
        // Lost lists shrink cells; with 12 participants per cell it is
        // unlikely (but legal) for a whole cell to vanish.
        let total_lists: usize = obs.cells().map(|(_, lists)| lists.len()).sum();
        let clean_total: usize = clean_obs.cells().map(|(_, lists)| lists.len()).sum();
        assert!(total_lists < clean_total);
    }

    #[test]
    fn faulted_study_is_deterministic() {
        use fbox_resilience::{FaultPlan, FaultProfile};
        let design = StudyDesign { participants_per_group: 1, seed: 9 };
        let engine = SearchEngine::new(PersonalizationProfile::none(), NoiseModel::none(), 3);
        let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
        let r = Resilience::with_plan(FaultPlan::new(13, FaultProfile::bursty()));
        let (_, obs1, stats1) = run_study_resilient(&design, &engine, &runner, &r);
        let (_, obs2, stats2) = run_study_resilient(&design, &engine, &runner, &r);
        assert_eq!(stats1, stats2);
        assert_eq!(obs1.n_cells(), obs2.n_cells());
        for ((q, l), lists) in obs1.cells() {
            assert_eq!(obs2.get(q, l), Some(lists));
        }
    }

    #[test]
    fn participants_are_unique_and_deterministic() {
        let design = StudyDesign::default();
        let engine = SearchEngine::new(PersonalizationProfile::none(), NoiseModel::none(), 3);
        let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
        let (_, obs1, _) = run_study(&design, &engine, &runner);
        let (_, obs2, _) = run_study(&design, &engine, &runner);
        let q = fbox_core::model::QueryId(0);
        let l = fbox_core::model::LocationId(0);
        assert_eq!(obs1.get(q, l).unwrap(), obs2.get(q, l).unwrap());
    }
}
