//! The job-posting corpus: for each (query, location) a pool of postings
//! with base relevance scores shared by all users.
//!
//! Postings are generated deterministically from hashes, so the corpus
//! needs no storage: two engines with the same seed see the same postings.

use crate::hash::{mix, mix_str, unit};

/// Number of candidate postings per (query, location) pool.
pub const POOL_SIZE: usize = 40;

/// Number of results a search returns (one page).
pub const RESULT_SIZE: usize = 10;

/// A deterministic posting pool for one (query, location).
#[derive(Debug, Clone)]
pub struct PostingPool {
    /// Posting ids, unique across pools.
    ids: Vec<u64>,
    /// Base relevance per posting, in `[0, 1]`, shared by all users.
    base: Vec<f64>,
}

impl PostingPool {
    /// Builds the pool for a (query, location) under a corpus seed.
    pub fn new(seed: u64, query: &str, location: &str) -> Self {
        let key = mix_str(mix_str(seed, query), location);
        let ids: Vec<u64> = (0..POOL_SIZE as u64).map(|i| mix(key, i)).collect();
        let base: Vec<f64> = ids.iter().map(|&id| unit(mix(key, id))).collect();
        Self { ids, base }
    }

    /// Posting ids.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Base relevance of the posting at `index`.
    pub fn base(&self, index: usize) -> f64 {
        self.base[index]
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the pool is empty (never, with the fixed pool size).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let a = PostingPool::new(7, "yard work", "London, UK");
        let b = PostingPool::new(7, "yard work", "London, UK");
        assert_eq!(a.ids(), b.ids());
        let c = PostingPool::new(7, "yard work", "Boston, MA");
        assert_ne!(a.ids(), c.ids());
        let d = PostingPool::new(8, "yard work", "London, UK");
        assert_ne!(a.ids(), d.ids());
    }

    #[test]
    fn pool_shape() {
        let p = PostingPool::new(1, "q", "l");
        assert_eq!(p.len(), POOL_SIZE);
        assert!(!p.is_empty());
        // Ids unique.
        let mut ids = p.ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), POOL_SIZE);
        // Base scores in range.
        for i in 0..p.len() {
            assert!((0.0..=1.0).contains(&p.base(i)));
        }
    }
}
