//! Search-term expansion (paper §5.1.2, Table 6).
//!
//! The paper expanded each TaskRabbit query into five equivalent Google
//! search terms via Keyword Planner ("run errand" in London → "run errand
//! jobs near London UK", "errand service jobs near London UK", …). The
//! simulator uses five fixed templates; the engine treats formulations of
//! the same canonical query as near-synonyms (same posting pool, small
//! formulation-specific perturbation), matching the paper's criterion
//! that the chosen terms' "results are similar to the original term".

/// Number of equivalent formulations per query.
pub const N_FORMULATIONS: usize = 5;

/// The five formulations of a canonical query at a location.
pub fn formulations(query: &str, location: &str) -> [String; N_FORMULATIONS] {
    [
        format!("{query} jobs near {location}"),
        format!("{query} service jobs near {location}"),
        format!("{query} help wanted near {location}"),
        format!("{query} work needed near {location}"),
        format!("jobs doing {query} near {location}"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_distinct_formulations() {
        let f = formulations("run errand", "London, UK");
        assert_eq!(f.len(), 5);
        for (i, t) in f.iter().enumerate() {
            assert!(t.contains("run errand"));
            assert!(t.contains("London, UK"));
            assert!(!f[..i].contains(t), "duplicate formulation {t:?}");
        }
    }

    #[test]
    fn table6_style_shape() {
        // Mirrors Table 6's first example row.
        let f = formulations("run errand", "London, UK");
        assert_eq!(f[0], "run errand jobs near London, UK");
    }
}
