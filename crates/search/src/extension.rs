//! The Chrome-extension protocol (paper §5.1.2, Figure 9).
//!
//! The paper's extension executes the five equivalent search terms of each
//! query, re-running every term "at least twice to account for noise
//! caused by A/B testing", spacing runs "every 12 minutes to minimize
//! noise due to the carry-over effect", and pinning the browser's
//! location behind a proxy "so that all queries originate from the same
//! location". [`ExtensionRunner`] reproduces that protocol; the naive
//! single-shot runner exists so the benefit of each mitigation can be
//! measured (see the crate's tests and the noise-ablation bench).

use crate::engine::SearchEngine;
use crate::noise::RequestContext;
use crate::terms::{formulations, N_FORMULATIONS};
use crate::user::SearchUser;
use fbox_core::observations::UserList;
use std::collections::BTreeMap;

/// The study protocol configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtensionRunner {
    /// Minutes between consecutive requests (the paper: 12).
    pub spacing_min: f64,
    /// Executions per search term (the paper: at least 2).
    pub repeats: usize,
    /// Maximum extra tie-break executions when repeated runs disagree.
    pub max_extra_runs: usize,
    /// Whether requests go through the fixed proxy.
    pub proxied: bool,
}

impl Default for ExtensionRunner {
    fn default() -> Self {
        Self { spacing_min: 12.0, repeats: 2, max_extra_runs: 2, proxied: true }
    }
}

impl ExtensionRunner {
    /// A deliberately sloppy protocol: single un-proxied back-to-back
    /// runs. Used to demonstrate how much noise the paper's mitigations
    /// remove.
    pub fn naive() -> Self {
        Self { spacing_min: 0.5, repeats: 1, max_extra_runs: 0, proxied: false }
    }

    /// Runs one user's protocol for one query at one location, starting
    /// at `start_min`, and returns the merged result list plus the time
    /// the protocol finished.
    ///
    /// Per term: run `repeats` times; if runs disagree (A/B noise), run up
    /// to `max_extra_runs` more and keep the most frequent list. The five
    /// terms' resolved lists are then rank-merged (Borda) into the user's
    /// final list for the query.
    pub fn run_query(
        &self,
        engine: &SearchEngine,
        user: &SearchUser,
        query: &str,
        category: &str,
        location: &str,
        start_min: f64,
    ) -> (UserList, f64) {
        let mut time = start_min;
        let mut previous: Option<(String, f64)> = None;
        let mut resolved: Vec<Vec<u64>> = Vec::with_capacity(N_FORMULATIONS);

        for term in formulations(query, location) {
            let mut runs: Vec<Vec<u64>> = Vec::with_capacity(self.repeats);
            let total_runs = self.repeats + self.max_extra_runs;
            for attempt in 0..total_runs {
                let ctx = RequestContext {
                    time_min: time,
                    previous: previous.clone(),
                    proxied: self.proxied,
                };
                let list = engine.search(user, query, &term, category, location, &ctx);
                previous = Some((term.clone(), time));
                time += self.spacing_min;
                runs.push(list);
                // Stop early once we have the mandated repeats and a
                // majority list.
                if attempt + 1 >= self.repeats && majority(&runs).is_some() {
                    break;
                }
            }
            resolved.push(majority(&runs).unwrap_or_else(|| runs[0].clone()));
        }

        let merged = borda_merge(&resolved);
        (UserList { assignment: user.demographic.assignment(), results: merged }, time)
    }
}

/// The list occurring strictly more often than any other, if any.
fn majority(runs: &[Vec<u64>]) -> Option<Vec<u64>> {
    if runs.len() == 1 {
        return Some(runs[0].clone());
    }
    let mut counts: BTreeMap<&[u64], usize> = BTreeMap::new();
    for r in runs {
        *counts.entry(r.as_slice()).or_default() += 1;
    }
    let (best, n) = counts
        .iter()
        .max_by_key(|&(list, n)| (*n, std::cmp::Reverse(list.to_vec())))
        .map(|(l, n)| (l.to_vec(), *n))?;
    let runner_up =
        counts.iter().filter(|(l, _)| **l != best.as_slice()).map(|(_, n)| *n).max().unwrap_or(0);
    (n > runner_up).then_some(best)
}

/// Borda rank-merge: each list awards `len − position` points to its
/// items; items are re-ranked by total points (ties by id) and the top
/// page is returned.
pub fn borda_merge(lists: &[Vec<u64>]) -> Vec<u64> {
    let mut points: BTreeMap<u64, usize> = BTreeMap::new();
    let mut page = 0usize;
    for list in lists {
        let n = list.len();
        page = page.max(n);
        for (pos, &id) in list.iter().enumerate() {
            // `pos < n` by construction, so the subtraction cannot wrap.
            *points.entry(id).or_default() += n.saturating_sub(pos);
        }
    }
    let mut items: Vec<(u64, usize)> = points.into_iter().collect();
    items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    items.truncate(page);
    items.into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::personalize::PersonalizationProfile;
    use fbox_marketplace::demographics::{Demographic, Ethnicity, Gender};

    fn user(id: u64) -> SearchUser {
        SearchUser::new(id, Demographic { gender: Gender::Male, ethnicity: Ethnicity::White })
    }

    #[test]
    fn borda_merge_consistent_lists() {
        let lists = vec![vec![1, 2, 3], vec![1, 2, 3]];
        assert_eq!(borda_merge(&lists), vec![1, 2, 3]);
    }

    #[test]
    fn borda_merge_resolves_disagreement() {
        // Two lists agree that 1 is on top; disagree on the rest.
        let lists = vec![vec![1, 2, 3], vec![1, 3, 2], vec![1, 2, 4]];
        let merged = borda_merge(&lists);
        assert_eq!(merged[0], 1);
        assert_eq!(merged.len(), 3);
        // 2 scores 2+1+2 = 5 vs 3 scores 1+2 = 3.
        assert_eq!(merged[1], 2);
    }

    #[test]
    fn majority_detection() {
        let a = vec![1u64, 2];
        let b = vec![2u64, 1];
        assert_eq!(majority(&[a.clone(), a.clone(), b.clone()]), Some(a.clone()));
        assert_eq!(majority(&[a.clone(), b.clone()]), None);
        assert_eq!(majority(std::slice::from_ref(&a)), Some(a));
    }

    #[test]
    fn protocol_runs_and_reports_time() {
        let engine = SearchEngine::new(PersonalizationProfile::none(), NoiseModel::none(), 1);
        let runner = ExtensionRunner::default();
        let (list, end) =
            runner.run_query(&engine, &user(1), "yard work", "Yard Work", "Boston, MA", 0.0);
        assert_eq!(list.results.len(), crate::corpus::RESULT_SIZE);
        // 5 terms × 2 repeats × 12 min (no extra runs needed without noise).
        assert!((end - 120.0).abs() < 1e-9, "end {end}");
    }

    #[test]
    fn protocol_suppresses_noise() {
        // Under full noise, the paper's protocol must yield (nearly) the
        // same merged list as a noise-free engine, while the naive
        // protocol drifts further away.
        let seed = 9;
        let quiet = SearchEngine::new(PersonalizationProfile::none(), NoiseModel::none(), seed);
        let noisy = SearchEngine::new(PersonalizationProfile::none(), NoiseModel::default(), seed);
        let u = user(3);
        let runner = ExtensionRunner::default();
        let naive = ExtensionRunner::naive();

        let (reference, _) =
            runner.run_query(&quiet, &u, "run errand", "Run Errands", "London, UK", 0.0);
        let (clean, _) =
            runner.run_query(&noisy, &u, "run errand", "Run Errands", "London, UK", 0.0);
        let (sloppy, _) =
            naive.run_query(&noisy, &u, "run errand", "Run Errands", "London, UK", 0.0);

        let d_protocol =
            fbox_core::measures::kendall::top_k_distance(&reference.results, &clean.results, 0.5);
        let d_naive =
            fbox_core::measures::kendall::top_k_distance(&reference.results, &sloppy.results, 0.5);
        assert!(
            d_protocol <= d_naive,
            "protocol should suppress noise: protocol {d_protocol} vs naive {d_naive}"
        );
    }

    #[test]
    fn assignment_flows_into_user_list() {
        let engine = SearchEngine::new(PersonalizationProfile::none(), NoiseModel::none(), 1);
        let runner = ExtensionRunner::default();
        let u =
            SearchUser::new(4, Demographic { gender: Gender::Female, ethnicity: Ethnicity::Asian });
        let (list, _) = runner.run_query(&engine, &u, "q", "c", "l", 0.0);
        assert_eq!(list.assignment, u.demographic.assignment());
    }
}
