//! The personalization model — where unfairness enters the search engine.
//!
//! Google personalizes results from "user data, activity, and saved
//! preferences" (paper §5.1.2), which can correlate with demographics.
//! The simulator models this as a *group-level* score shift: members of a
//! demographic group share an affinity direction over postings, and the
//! shift's magnitude is `distinctiveness(g) · location_amp · query_amp`
//! (times scoped overrides). Groups with zero strength see the unbiased
//! base ranking; the larger the strength gap between comparable groups,
//! the further their result lists drift apart — which is exactly what
//! Eq. 1's Kendall/Jaccard unfairness measures.

use fbox_marketplace::demographics::{Demographic, Ethnicity, Gender};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Scoped adjustment, mirroring the marketplace's
/// [`BiasOverride`](fbox_marketplace::BiasOverride) semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonalizationOverride {
    /// Match a location by name.
    pub location: Option<String>,
    /// Match a query by name.
    pub query: Option<String>,
    /// Match a query category by name.
    pub category: Option<String>,
    /// Match one gender.
    pub gender: Option<Gender>,
    /// Match one ethnicity.
    pub ethnicity: Option<Ethnicity>,
    /// Multiplier on the personalization strength in the matched scope.
    pub scale: f64,
}

impl PersonalizationOverride {
    fn matches(&self, demo: Demographic, query: &str, category: &str, location: &str) -> bool {
        self.location.as_deref().is_none_or(|l| l == location)
            && self.query.as_deref().is_none_or(|q| q == query)
            && self.category.as_deref().is_none_or(|c| c == category)
            && self.gender.is_none_or(|g| g == demo.gender)
            && self.ethnicity.is_none_or(|e| e == demo.ethnicity)
    }
}

/// The personalization configuration of a simulated search engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonalizationProfile {
    /// Global strength multiplier.
    pub gamma: f64,
    /// Profile distinctiveness per `[gender][ethnicity]` (how much a
    /// group's browsing history separates it from the base ranking).
    pub distinctiveness: [[f64; 3]; 2],
    /// Default location amplifier.
    pub default_location_amp: f64,
    /// Per-location amplifiers.
    pub location_amp: HashMap<String, f64>,
    /// Default query amplifier.
    pub default_query_amp: f64,
    /// Per-query amplifiers (keyed by query name; category amplifiers go
    /// through overrides or per-query entries).
    pub query_amp: HashMap<String, f64>,
    /// Scoped adjustments.
    pub overrides: Vec<PersonalizationOverride>,
}

impl PersonalizationProfile {
    /// No personalization at all: every user sees the base ranking, so
    /// unfairness is zero up to residual noise.
    pub fn none() -> Self {
        Self {
            gamma: 0.0,
            distinctiveness: [[0.0; 3]; 2],
            default_location_amp: 1.0,
            location_amp: HashMap::new(),
            default_query_amp: 1.0,
            query_amp: HashMap::new(),
            overrides: Vec::new(),
        }
    }

    /// Uniform personalization with the given global strength and equal
    /// distinctiveness for all groups.
    pub fn uniform(gamma: f64) -> Self {
        Self { gamma, distinctiveness: [[1.0; 3]; 2], ..Self::none() }
    }

    /// Sets a group's distinctiveness (builder style).
    pub fn with_distinctiveness(mut self, gender: Gender, ethnicity: Ethnicity, d: f64) -> Self {
        assert!(d >= 0.0, "distinctiveness must be non-negative");
        self.distinctiveness[gender.value_id().0 as usize][ethnicity.value_id().0 as usize] = d;
        self
    }

    /// Sets a location amplifier (builder style).
    pub fn with_location_amp(mut self, location: &str, amp: f64) -> Self {
        assert!(amp >= 0.0);
        self.location_amp.insert(location.to_string(), amp);
        self
    }

    /// Sets a query amplifier (builder style).
    pub fn with_query_amp(mut self, query: &str, amp: f64) -> Self {
        assert!(amp >= 0.0);
        self.query_amp.insert(query.to_string(), amp);
        self
    }

    /// Adds an override (builder style).
    pub fn with_override(mut self, o: PersonalizationOverride) -> Self {
        self.overrides.push(o);
        self
    }

    /// The personalization strength for a user of demographic `demo` on
    /// `query` (in `category`) at `location`.
    pub fn strength(&self, demo: Demographic, query: &str, category: &str, location: &str) -> f64 {
        let d = self.distinctiveness[demo.gender.value_id().0 as usize]
            [demo.ethnicity.value_id().0 as usize];
        let loc = self.location_amp.get(location).copied().unwrap_or(self.default_location_amp);
        let q = self.query_amp.get(query).copied().unwrap_or(self.default_query_amp);
        let mut s = self.gamma * d * loc * q;
        for o in &self.overrides {
            if o.matches(demo, query, category, location) {
                s *= o.scale;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(g: Gender, e: Ethnicity) -> Demographic {
        Demographic { gender: g, ethnicity: e }
    }

    #[test]
    fn none_profile_is_strength_free() {
        let p = PersonalizationProfile::none();
        assert_eq!(p.strength(demo(Gender::Female, Ethnicity::White), "q", "c", "l"), 0.0);
    }

    #[test]
    fn factors_multiply() {
        let p = PersonalizationProfile::uniform(0.2)
            .with_distinctiveness(Gender::Female, Ethnicity::White, 2.0)
            .with_location_amp("London, UK", 1.5)
            .with_query_amp("yard work", 2.0);
        let s = p.strength(
            demo(Gender::Female, Ethnicity::White),
            "yard work",
            "Yard Work",
            "London, UK",
        );
        assert!((s - 0.2 * 2.0 * 1.5 * 2.0).abs() < 1e-12);
        // Elsewhere: defaults.
        let s2 = p.strength(
            demo(Gender::Female, Ethnicity::White),
            "run errand",
            "Run Errands",
            "Boston, MA",
        );
        assert!((s2 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn overrides_scope() {
        let p = PersonalizationProfile::uniform(1.0).with_override(PersonalizationOverride {
            location: Some("Washington, DC".into()),
            query: None,
            category: None,
            gender: None,
            ethnicity: None,
            scale: 0.0,
        });
        assert_eq!(
            p.strength(demo(Gender::Male, Ethnicity::Black), "q", "c", "Washington, DC"),
            0.0
        );
        assert!(p.strength(demo(Gender::Male, Ethnicity::Black), "q", "c", "London, UK") > 0.0);
    }
}
