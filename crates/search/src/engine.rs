//! The personalized search engine.
//!
//! A search scores the (query, location) posting pool as
//!
//! ```text
//! score(u, p) = base(p)                                   // shared ranking
//!             + strength(g(u), q, l) · affinity(g(u), p)  // group personalization
//!             + ε_user · affinity(u, p)                   // idiosyncratic taste
//!             + formulation perturbation                  // near-synonym terms
//!             + carry-over + A/B + geolocation noise      // §5.1.2 noise sources
//! ```
//!
//! and returns the top page. Every term is a pure function of the engine
//! seed and the request, so studies replay exactly.

use crate::corpus::{PostingPool, RESULT_SIZE};
use crate::hash::{mix, mix_str, signed};
use crate::noise::{NoiseModel, RequestContext};
use crate::personalize::PersonalizationProfile;
use crate::user::SearchUser;

/// Magnitude of the per-user idiosyncratic taste component. Small: users
/// in the same group see *similar but not identical* lists, as in real
/// personalization.
const USER_TASTE: f64 = 0.02;

/// Magnitude of the formulation perturbation: equivalent search terms
/// return similar, slightly reshuffled results (Table 6's "results are
/// similar to the original term").
const FORMULATION_SHIFT: f64 = 0.03;

/// A simulated job-search engine.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    personalization: PersonalizationProfile,
    noise: NoiseModel,
    seed: u64,
}

impl SearchEngine {
    /// Assembles an engine.
    pub fn new(personalization: PersonalizationProfile, noise: NoiseModel, seed: u64) -> Self {
        Self { personalization, noise, seed }
    }

    /// The personalization profile in force.
    pub fn personalization(&self) -> &PersonalizationProfile {
        &self.personalization
    }

    /// The noise model in force.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Executes one search request and returns the ranked posting ids
    /// (best first, one page).
    ///
    /// - `query`: the canonical study query (keys the posting pool);
    /// - `formulation`: the concrete search term typed (a near-synonym);
    /// - `category`: the query's job category (personalization scoping);
    /// - `location`: the search location.
    pub fn search(
        &self,
        user: &SearchUser,
        query: &str,
        formulation: &str,
        category: &str,
        location: &str,
        ctx: &RequestContext,
    ) -> Vec<u64> {
        let pool = PostingPool::new(self.seed, query, location);
        let strength = self.personalization.strength(user.demographic, query, category, location);
        // Group affinity direction: shared by all members of the user's
        // full demographic group.
        let group_key = mix(
            mix_str(self.seed, "group-affinity"),
            (user.demographic.gender.value_id().0 as u64) << 8
                | user.demographic.ethnicity.value_id().0 as u64,
        );
        let user_key = mix(mix_str(self.seed, "user-taste"), user.id);
        let formulation_key = mix_str(mix_str(self.seed, "formulation"), formulation);

        // Noise keys.
        let carry = match ctx.minutes_since_previous() {
            Some(dt) => {
                let (prev, _) = ctx.previous.as_ref().expect("previous present");
                let key = mix(mix_str(mix_str(self.seed, "carryover"), prev), user.id);
                Some((self.noise.carryover_at(dt), key))
            }
            None => None,
        };
        let ab_bucket = if self.noise.ab_buckets > 1 {
            mix(
                mix_str(self.seed, "ab"),
                user.id ^ fbox_core::measures::float::floor_units(ctx.time_min),
            ) % self.noise.ab_buckets
        } else {
            0
        };
        let ab_key = mix(mix_str(self.seed, "ab-direction"), ab_bucket);
        let geo_key = (!ctx.proxied).then(|| {
            let secs = ctx.time_min * 60.0;
            // Session timestamps are finite and non-negative; the guard
            // pins that invariant at the conversion.
            let secs = if secs.is_finite() && secs >= 0.0 { secs } else { 0.0 };
            mix(mix_str(self.seed, "geo"), secs as u64 ^ user.id)
        });

        let mut scored: Vec<(u64, f64)> = (0..pool.len())
            .map(|i| {
                let id = pool.ids()[i];
                let mut s = pool.base(i)
                    + strength * signed(mix(group_key, id))
                    + USER_TASTE * signed(mix(user_key, id))
                    + FORMULATION_SHIFT * signed(mix(formulation_key, id));
                if let Some((mag, key)) = carry {
                    s += mag * signed(mix(key, id));
                }
                if ab_bucket != 0 {
                    s += self.noise.ab_strength * signed(mix(ab_key, id));
                }
                if let Some(g) = geo_key {
                    s += self.noise.geo_strength * signed(mix(g, id));
                }
                (id, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(RESULT_SIZE);
        scored.into_iter().map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbox_marketplace::demographics::{Demographic, Ethnicity, Gender};

    fn user(id: u64, g: Gender, e: Ethnicity) -> SearchUser {
        SearchUser::new(id, Demographic { gender: g, ethnicity: e })
    }

    fn clean_engine(p: PersonalizationProfile) -> SearchEngine {
        SearchEngine::new(p, NoiseModel::none(), 42)
    }

    #[test]
    fn no_personalization_no_noise_same_group_lists_nearly_identical() {
        // With zero personalization, lists differ only by the tiny user
        // taste — top pages should overlap heavily.
        let e = clean_engine(PersonalizationProfile::none());
        let ctx = RequestContext::clean();
        let a = e.search(
            &user(1, Gender::Male, Ethnicity::White),
            "yard work",
            "yard work jobs",
            "Yard Work",
            "Boston, MA",
            &ctx,
        );
        let b = e.search(
            &user(2, Gender::Female, Ethnicity::Black),
            "yard work",
            "yard work jobs",
            "Yard Work",
            "Boston, MA",
            &ctx,
        );
        let overlap = a.iter().filter(|x| b.contains(x)).count();
        assert!(overlap >= 8, "expected heavy overlap, got {overlap}/10");
    }

    #[test]
    fn search_is_deterministic() {
        let e = clean_engine(PersonalizationProfile::uniform(0.1));
        let ctx = RequestContext::clean();
        let u = user(5, Gender::Female, Ethnicity::Asian);
        let a = e.search(&u, "q", "f", "c", "l", &ctx);
        let b = e.search(&u, "q", "f", "c", "l", &ctx);
        assert_eq!(a, b);
        assert_eq!(a.len(), RESULT_SIZE);
    }

    #[test]
    fn personalization_separates_groups() {
        // Strong group personalization must push different groups' lists
        // apart more than same-group users'.
        let e = clean_engine(PersonalizationProfile::uniform(0.3));
        let ctx = RequestContext::clean();
        let m1 = e.search(&user(1, Gender::Male, Ethnicity::White), "q", "f", "c", "l", &ctx);
        let m2 = e.search(&user(2, Gender::Male, Ethnicity::White), "q", "f", "c", "l", &ctx);
        let f1 = e.search(&user(3, Gender::Female, Ethnicity::Black), "q", "f", "c", "l", &ctx);
        let within = fbox_core::measures::jaccard::distance(&m1, &m2);
        let across = fbox_core::measures::jaccard::distance(&m1, &f1);
        assert!(
            across > within,
            "across-group distance {across} should exceed within-group {within}"
        );
    }

    #[test]
    fn formulations_return_similar_results() {
        let e = clean_engine(PersonalizationProfile::none());
        let ctx = RequestContext::clean();
        let u = user(1, Gender::Male, Ethnicity::White);
        let a = e.search(&u, "run errand", "run errand jobs near X", "Run Errands", "l", &ctx);
        let b = e.search(&u, "run errand", "errand service jobs near X", "Run Errands", "l", &ctx);
        // Similar (same pool, small shift) but usually not identical.
        let d = fbox_core::measures::jaccard::distance(&a, &b);
        assert!(d < 0.5, "formulations should stay similar, distance {d}");
    }

    #[test]
    fn carryover_perturbs_and_decays() {
        let e = SearchEngine::new(PersonalizationProfile::none(), NoiseModel::default(), 42);
        let u = user(1, Gender::Male, Ethnicity::White);
        let fresh = e.search(&u, "q", "f", "c", "l", &RequestContext::clean());
        let hot = RequestContext {
            time_min: 1.0,
            previous: Some(("other query".into(), 0.9)),
            proxied: true,
        };
        let cold = RequestContext {
            time_min: 20.0,
            previous: Some(("other query".into(), 0.0)),
            proxied: true,
        };
        let hot_list = e.search(&u, "q", "f", "c", "l", &hot);
        let cold_list = e.search(&u, "q", "f", "c", "l", &cold);
        let d_hot = fbox_core::measures::kendall::top_k_distance(&fresh, &hot_list, 0.5);
        let d_cold = fbox_core::measures::kendall::top_k_distance(&fresh, &cold_list, 0.5);
        assert!(
            d_cold <= d_hot,
            "carry-over should decay with spacing: hot {d_hot} vs cold {d_cold}"
        );
        // Hot carry-over actually moves things.
        assert!(d_hot > 0.0);
    }

    #[test]
    fn unproxied_requests_jitter() {
        let e = SearchEngine::new(PersonalizationProfile::none(), NoiseModel::default(), 42);
        let u = user(1, Gender::Male, Ethnicity::White);
        let a = e.search(
            &u,
            "q",
            "f",
            "c",
            "l",
            &RequestContext { time_min: 0.0, previous: None, proxied: false },
        );
        let b = e.search(
            &u,
            "q",
            "f",
            "c",
            "l",
            &RequestContext { time_min: 5.0, previous: None, proxied: false },
        );
        // Different origins at different times → some reshuffling.
        assert_ne!(a, b);
    }
}
