//! Epoch snapshots: readers see a frozen cube while ingestion continues.
//!
//! An [`EpochStore`] holds a mutable writer-side [`FBox`] that cell
//! observations delta-update as they stream in (via
//! [`FBox::update_market_cell`] / [`FBox::update_search_cell`], which
//! touch only the affected measure entries and posting lists), plus the
//! latest *published* epoch: an immutable [`EpochSnapshot`] behind an
//! `Arc`. Top-k, NRA, naive scans, and `compare` run against a pinned
//! epoch and are byte-stable for as long as the pin is held, no matter
//! how much ingestion or publishing happens concurrently.
//!
//! Publishing clones the writer F-Box — an O(cube) copy, paid only at
//! epoch boundaries, never per cell. Epoch numbers start at 0 (the empty
//! universe) and increase by one per [`EpochStore::publish`].
//!
//! Determinism: the store reads no clocks and no environment; epoch
//! contents are a pure function of the ingestion sequence, so two runs
//! that ingest the same cells in the same order publish bit-identical
//! epochs.

use fbox_core::model::{LocationId, QueryId, Universe};
use fbox_core::observations::{MarketRanking, UserList};
use fbox_core::unfairness::{MarketMeasure, SearchMeasure};
use fbox_core::FBox;
use std::sync::{Arc, Mutex};

/// An immutable, numbered publication of the store's F-Box.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    epoch: u64,
    fbox: FBox,
}

impl EpochSnapshot {
    /// The epoch number (0 = the initial empty publication).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen F-Box. All read algorithms (`top_k*`, `compare`) hang
    /// off this.
    #[must_use]
    pub fn fbox(&self) -> &FBox {
        &self.fbox
    }
}

/// Writer-side state, guarded by one mutex: the live F-Box, the next
/// epoch number, and the count of cell updates since the last publish.
#[derive(Debug)]
struct WriterState {
    fbox: FBox,
    next_epoch: u64,
    dirty_cells: u64,
}

/// A concurrently readable, incrementally writable cube store.
///
/// Writers call [`ingest_market`](Self::ingest_market) /
/// [`ingest_search`](Self::ingest_search) as cells resolve and
/// [`publish`](Self::publish) at consistency points; readers call
/// [`latest`](Self::latest) and keep the `Arc` for as long as they need
/// a frozen view.
#[derive(Debug)]
pub struct EpochStore {
    state: Mutex<WriterState>,
    published: Mutex<Arc<EpochSnapshot>>,
}

impl EpochStore {
    /// A store over an empty cube for `universe`. Epoch 0 (the empty
    /// F-Box) is published immediately.
    #[must_use]
    pub fn new(universe: Universe) -> Self {
        Self::with_fbox(FBox::empty(universe))
    }

    /// A store seeded with an existing F-Box (e.g. one loaded from a
    /// snapshot); the seed is published as epoch 0.
    #[must_use]
    pub fn with_fbox(fbox: FBox) -> Self {
        let initial = Arc::new(EpochSnapshot { epoch: 0, fbox: fbox.clone() });
        Self {
            state: Mutex::new(WriterState { fbox, next_epoch: 1, dirty_cells: 0 }),
            published: Mutex::new(initial),
        }
    }

    /// Delta-updates the writer cube with a marketplace observation for
    /// cell `(q, l)`. `None` clears the cell (e.g. a quarantined record).
    pub fn ingest_market(
        &self,
        q: QueryId,
        l: LocationId,
        ranking: Option<&MarketRanking>,
        measure: MarketMeasure,
    ) {
        let mut state = self.state.lock().expect("epoch store writer poisoned");
        state.fbox.update_market_cell(q, l, ranking, measure);
        state.dirty_cells += 1;
    }

    /// Delta-updates the writer cube with search observations for cell
    /// `(q, l)`. An empty slice clears the cell.
    pub fn ingest_search(
        &self,
        q: QueryId,
        l: LocationId,
        lists: &[UserList],
        measure: SearchMeasure,
    ) {
        let mut state = self.state.lock().expect("epoch store writer poisoned");
        state.fbox.update_search_cell(q, l, lists, measure);
        state.dirty_cells += 1;
    }

    /// Freezes the current writer state into a new immutable epoch,
    /// publishes it, and returns it. Readers holding earlier epochs are
    /// unaffected.
    pub fn publish(&self) -> Arc<EpochSnapshot> {
        let _trace = fbox_trace::span("store.epoch.publish");
        let snapshot = {
            let mut state = self.state.lock().expect("epoch store writer poisoned");
            let epoch = state.next_epoch;
            state.next_epoch += 1;
            state.dirty_cells = 0;
            Arc::new(EpochSnapshot { epoch, fbox: state.fbox.clone() })
        };
        let t = fbox_telemetry::global();
        if t.enabled() {
            t.counter("store.epochs_published").inc();
        }
        *self.published.lock().expect("epoch store publication poisoned") = Arc::clone(&snapshot);
        snapshot
    }

    /// The most recently published epoch. Cloning the `Arc` pins it:
    /// the returned snapshot never changes, even across later publishes.
    #[must_use]
    pub fn latest(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.published.lock().expect("epoch store publication poisoned"))
    }

    /// Cell updates ingested since the last publish.
    #[must_use]
    pub fn dirty_cells(&self) -> u64 {
        self.state.lock().expect("epoch store writer poisoned").dirty_cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbox_core::model::ValueId;
    use fbox_core::model::{GroupId, Schema};
    use fbox_core::observations::RankedWorker;

    fn universe() -> Universe {
        let mut u = Universe::with_all_groups(Schema::gender_ethnicity());
        u.add_query("Home Cleaning", Some("General Cleaning"));
        u.add_location("San Francisco, CA", None);
        u
    }

    fn ranking() -> MarketRanking {
        let workers = (1..=10)
            .map(|rank| RankedWorker {
                assignment: vec![ValueId((rank % 2) as u16), ValueId(2)],
                rank,
                score: None,
            })
            .collect();
        MarketRanking::new(workers)
    }

    #[test]
    fn epochs_advance_and_pins_stay_frozen() {
        let store = EpochStore::new(universe());
        let empty = store.latest();
        assert_eq!(empty.epoch(), 0);
        assert!(empty.fbox().cube().raw_data().iter().all(Option::is_none));

        store.ingest_market(QueryId(0), LocationId(0), Some(&ranking()), MarketMeasure::exposure());
        assert_eq!(store.dirty_cells(), 1);
        let filled = store.publish();
        assert_eq!(filled.epoch(), 1);
        assert_eq!(store.dirty_cells(), 0);

        // The pinned epoch 0 still sees the empty cube.
        assert!(empty.fbox().cube().raw_data().iter().all(Option::is_none));
        assert!(filled.fbox().cube().get(GroupId(0), QueryId(0), LocationId(0)).is_some());
        assert_eq!(store.latest().epoch(), 1);
    }

    #[test]
    fn clearing_a_cell_is_an_update() {
        let store = EpochStore::new(universe());
        store.ingest_market(QueryId(0), LocationId(0), Some(&ranking()), MarketMeasure::exposure());
        let _ = store.publish();
        store.ingest_market(QueryId(0), LocationId(0), None, MarketMeasure::exposure());
        let cleared = store.publish();
        assert_eq!(cleared.epoch(), 2);
        assert!(cleared.fbox().cube().raw_data().iter().all(Option::is_none));
    }

    #[test]
    fn seeded_store_publishes_the_seed_as_epoch_zero() {
        let mut fbox = FBox::empty(universe());
        fbox.update_market_cell(
            QueryId(0),
            LocationId(0),
            Some(&ranking()),
            MarketMeasure::exposure(),
        );
        let store = EpochStore::with_fbox(fbox);
        let seed = store.latest();
        assert_eq!(seed.epoch(), 0);
        assert!(seed.fbox().cube().get(GroupId(0), QueryId(0), LocationId(0)).is_some());
    }
}
