//! The durable, checksummed segment log under incremental ingestion.
//!
//! # Record format
//!
//! ```text
//! record := magic "FBXR" (4) | len: u32 LE (4) | payload_fnv: u64 LE (8)
//!           | header_fnv: u64 LE (8) | payload[len]
//! ```
//!
//! `payload_fnv` is FNV-1a ([`fbox_resilience::hash::fnv1a`]) over the
//! payload; `header_fnv` is FNV-1a over the first 16 header bytes (magic,
//! len, payload_fnv). Two checksums split the failure modes cleanly: a
//! damaged *header* means the record boundary itself cannot be trusted —
//! everything from here on is a torn tail and is truncated; a damaged
//! *payload* behind a valid header means exactly this record is bad — it
//! is quarantined and replay continues at the next boundary, which the
//! intact `len` still locates.
//!
//! # Replay rules
//!
//! - Fewer than 24 bytes remain, the magic mismatches, or `header_fnv`
//!   mismatches → torn tail; truncate the file here.
//! - Header valid but fewer than `len` payload bytes remain → torn tail.
//! - Header valid, payload present, `payload_fnv` mismatches → quarantine
//!   this record, skip `len` bytes, continue.
//! - Otherwise the record replays.
//!
//! Because a torn write kills the writing process, a torn tail can only be
//! the *last* thing in the file; truncating it before appending restores
//! the append-only invariant.
//!
//! # Fault injection
//!
//! Writes and reads are perturbed by a [`StoragePlan`] — a pure function
//! of `(seed, generation, record index)`, where the generation (the
//! number of times this log has been opened) is persisted in a `.gen`
//! sidecar. See [`fbox_resilience::storage`] for why the generation keys
//! the draw: it is what makes crash-recovery *converge* while staying
//! fully deterministic.

use fbox_resilience::hash::fnv1a;
use fbox_resilience::{StorageFaultKind, StoragePlan};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every record.
pub const RECORD_MAGIC: [u8; 4] = *b"FBXR";

/// Fixed header size: magic (4) + len (4) + payload_fnv (8) + header_fnv (8).
pub const RECORD_HEADER_LEN: usize = 24;

/// What replay found when the log was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Records replayed intact.
    pub replayed: usize,
    /// Records whose payload checksum mismatched (bit flip on disk);
    /// skipped, their cells will be re-ingested.
    pub quarantined: usize,
    /// Bytes of torn tail truncated from the end of the file.
    pub torn_tail_bytes: u64,
    /// Reads that came up short once and succeeded on retry.
    pub short_read_retries: usize,
    /// The generation this open started (1 for a fresh log).
    pub generation: u64,
}

/// How an append resolved under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a torn append crashes the log; callers deciding to continue must know"]
pub enum Append {
    /// The record reached the disk whole (possibly with a silently
    /// flipped payload byte — that is the point of the checksum).
    Persisted,
    /// The write tore partway through and the log is crashed: nothing
    /// else persists this generation. The in-memory run may continue;
    /// recovery re-runs whatever was lost.
    Torn,
    /// Dropped because the log crashed earlier this generation.
    Lost,
}

/// An append-only segment log of checksummed records.
#[derive(Debug)]
pub struct SegmentLog {
    path: PathBuf,
    file: File,
    plan: StoragePlan,
    generation: u64,
    n_records: u64,
    crashed: bool,
}

impl SegmentLog {
    /// Opens (or creates) the log at `path` under the fault plan from the
    /// environment ([`StoragePlan::from_env`]; inert unless `FBOX_FAULTS`
    /// is set), replaying existing records per the module rules. Returns
    /// the log positioned for appends, the surviving payloads in record
    /// order, and the replay statistics.
    pub fn open(path: &Path) -> io::Result<(Self, Vec<Vec<u8>>, ReplayStats)> {
        Self::open_with_plan(path, StoragePlan::from_env())
    }

    /// [`Self::open`] under an explicit fault plan.
    pub fn open_with_plan(
        path: &Path,
        plan: StoragePlan,
    ) -> io::Result<(Self, Vec<Vec<u8>>, ReplayStats)> {
        let _trace = fbox_trace::span("store.segment.open");
        let generation = bump_generation(path)?;
        let buf = match std::fs::read(path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (payloads, keep_len, mut stats) = replay(&buf, &plan, generation);
        stats.generation = generation;

        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        file.set_len(keep_len)?;
        file.seek(SeekFrom::Start(keep_len))?;

        let t = fbox_telemetry::global();
        if t.enabled() {
            t.counter("store.records_replayed").add(stats.replayed as u64);
            t.counter("store.records_quarantined").add(stats.quarantined as u64);
            t.counter("store.torn_tail_bytes").add(stats.torn_tail_bytes);
            t.counter("store.short_read_retries").add(stats.short_read_retries as u64);
        }

        let n_records = (stats.replayed + stats.quarantined) as u64;
        Ok((
            Self { path: path.to_path_buf(), file, plan, generation, n_records, crashed: false },
            payloads,
            stats,
        ))
    }

    /// Appends one record. Under an inert plan this always persists; under
    /// fault injection the outcome is a pure function of
    /// `(seed, generation, record index)` — see [`Append`].
    pub fn append(&mut self, payload: &[u8]) -> io::Result<Append> {
        if self.crashed {
            return Ok(Append::Lost);
        }
        let index = self.n_records;
        let mut record = encode_record(payload);
        match self.plan.fault(self.generation, index) {
            Some(StorageFaultKind::TornWrite) => {
                // A proper prefix reaches the disk; the writing "process"
                // is gone for the rest of this generation.
                let cut = tear_point(&self.plan, self.generation, index, record.len());
                self.file.write_all(&record[..cut])?;
                self.file.flush()?;
                self.crashed = true;
                fbox_trace::instant_args("store.fault", |a| {
                    a.str("kind", StorageFaultKind::TornWrite.label());
                    a.u64("index", index);
                });
                Ok(Append::Torn)
            }
            Some(StorageFaultKind::BitFlip) => {
                // One payload byte flips on the way to disk. The checksums
                // were computed over the pristine payload, so replay will
                // catch the mismatch and quarantine exactly this record.
                if !payload.is_empty() {
                    let (byte, bit) = flip_point(&self.plan, self.generation, index, payload.len());
                    record[RECORD_HEADER_LEN + byte] ^= 1 << bit;
                }
                fbox_trace::instant_args("store.fault", |a| {
                    a.str("kind", StorageFaultKind::BitFlip.label());
                    a.u64("index", index);
                });
                self.write_record(&record)
            }
            // Short reads are a replay-side fault; the write is clean.
            Some(StorageFaultKind::ShortRead) | None => self.write_record(&record),
        }
    }

    fn write_record(&mut self, record: &[u8]) -> io::Result<Append> {
        self.file.write_all(record)?;
        self.file.flush()?;
        self.n_records += 1;
        let t = fbox_telemetry::global();
        if t.enabled() {
            t.counter("store.records_appended").inc();
            t.counter("store.bytes_appended").add(record.len() as u64);
        }
        Ok(Append::Persisted)
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// This open's generation (1 for a fresh log).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Complete records currently on disk (replayed + quarantined + newly
    /// appended) — the index the next append will draw its fault at.
    #[must_use]
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// Whether a torn write killed this generation's writer. Appends are
    /// dropped until the log is reopened.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }
}

/// Encodes one record: header (magic, len, payload checksum, header
/// checksum) followed by the payload.
#[must_use]
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let len = payload.len();
    assert!(len <= u32::MAX as usize, "record payload exceeds the u32 length field");
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + len);
    buf.extend_from_slice(&RECORD_MAGIC);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a(payload).to_le_bytes());
    let header_fnv = fnv1a(&buf[..16]);
    buf.extend_from_slice(&header_fnv.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Replays a log buffer: surviving payloads, the byte length to keep
/// (everything before the torn tail), and the statistics.
fn replay(buf: &[u8], plan: &StoragePlan, generation: u64) -> (Vec<Vec<u8>>, u64, ReplayStats) {
    let mut stats = ReplayStats::default();
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    let mut index = 0u64;
    let n = buf.len();
    while pos < n {
        let remaining = n - pos;
        if remaining < RECORD_HEADER_LEN {
            break; // torn tail
        }
        let header = &buf[pos..pos + RECORD_HEADER_LEN];
        let magic_ok = header[..4] == RECORD_MAGIC;
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        let payload_fnv = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let header_fnv = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        if !magic_ok || fnv1a(&header[..16]) != header_fnv {
            break; // torn tail: the boundary itself cannot be trusted
        }
        if remaining < RECORD_HEADER_LEN + len {
            break; // torn tail: the payload never finished landing
        }
        let payload = &buf[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len];
        // A planned short read stutters once and succeeds on retry;
        // nothing on disk is affected.
        if plan.fault(generation, index) == Some(StorageFaultKind::ShortRead) {
            stats.short_read_retries += 1;
        }
        if fnv1a(payload) == payload_fnv {
            payloads.push(payload.to_vec());
            stats.replayed += 1;
        } else {
            stats.quarantined += 1;
        }
        pos += RECORD_HEADER_LEN + len;
        index += 1;
    }
    // `pos` only ever advances to a record boundary at or before `n`.
    stats.torn_tail_bytes = n.saturating_sub(pos) as u64;
    (payloads, pos as u64, stats)
}

/// Where a torn write stops: a deterministic proper prefix of the record.
fn tear_point(plan: &StoragePlan, generation: u64, index: u64, record_len: usize) -> usize {
    let draw = fbox_resilience::hash::mix(
        fbox_resilience::hash::mix(plan.seed() ^ 0x7EA2, generation),
        index,
    );
    (draw % record_len as u64) as usize
}

/// Which payload (byte, bit) a bit flip damages.
fn flip_point(plan: &StoragePlan, generation: u64, index: u64, payload_len: usize) -> (usize, u8) {
    let draw = fbox_resilience::hash::mix(
        fbox_resilience::hash::mix(plan.seed() ^ 0xB17F, generation),
        index,
    );
    ((draw % payload_len as u64) as usize, (draw >> 32) as u8 % 8)
}

/// Reads, increments, and persists the open-count sidecar (`<path>.gen`).
/// The sidecar is 8 little-endian bytes; a missing or malformed sidecar
/// counts as generation 0 (so the first open is generation 1).
fn bump_generation(path: &Path) -> io::Result<u64> {
    let mut name = path.as_os_str().to_os_string();
    name.push(".gen");
    let gen_path = PathBuf::from(name);
    let stored = match std::fs::read(&gen_path) {
        Ok(bytes) if bytes.len() == 8 => {
            u64::from_le_bytes(bytes.try_into().expect("length checked"))
        }
        Ok(_) => 0,
        Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
        Err(e) => return Err(e),
    };
    let generation = stored + 1;
    std::fs::write(&gen_path, generation.to_le_bytes())?;
    Ok(generation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbox_resilience::StorageProfile;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fbox-store-segment-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("{name}-{}.fbxlog", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut gen = path.as_os_str().to_os_string();
        gen.push(".gen");
        let _ = std::fs::remove_file(PathBuf::from(gen));
        path
    }

    #[test]
    fn clean_log_round_trips_in_order() {
        let path = tmp("clean");
        let payloads: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i; usize::from(i) + 1]).collect();
        {
            let (mut log, replayed, stats) =
                SegmentLog::open_with_plan(&path, StoragePlan::none()).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(stats.generation, 1);
            for p in &payloads {
                assert_eq!(log.append(p).unwrap(), Append::Persisted);
            }
        }
        let (log, replayed, stats) =
            SegmentLog::open_with_plan(&path, StoragePlan::none()).unwrap();
        assert_eq!(replayed, payloads);
        assert_eq!(stats.replayed, 10);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.torn_tail_bytes, 0);
        assert_eq!(stats.generation, 2);
        assert_eq!(log.n_records(), 10);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let path = tmp("torn");
        {
            let (mut log, _, _) = SegmentLog::open_with_plan(&path, StoragePlan::none()).unwrap();
            let _ = log.append(b"first").unwrap();
            let _ = log.append(b"second").unwrap();
        }
        // Tear the last record by hand: drop its final 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut log, replayed, stats) =
            SegmentLog::open_with_plan(&path, StoragePlan::none()).unwrap();
        assert_eq!(replayed, vec![b"first".to_vec()]);
        assert_eq!(stats.replayed, 1);
        assert_eq!(stats.torn_tail_bytes, (RECORD_HEADER_LEN + 3) as u64);
        let _ = log.append(b"second again").unwrap();
        drop(log);

        let (_, replayed, stats) = SegmentLog::open_with_plan(&path, StoragePlan::none()).unwrap();
        assert_eq!(replayed, vec![b"first".to_vec(), b"second again".to_vec()]);
        assert_eq!(stats.torn_tail_bytes, 0);
    }

    #[test]
    fn flipped_payload_byte_is_quarantined_not_fatal() {
        let path = tmp("bitflip");
        {
            let (mut log, _, _) = SegmentLog::open_with_plan(&path, StoragePlan::none()).unwrap();
            let _ = log.append(b"keep me").unwrap();
            let _ = log.append(b"damage me").unwrap();
            let _ = log.append(b"keep me too").unwrap();
        }
        // Flip one bit in the middle record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload = RECORD_HEADER_LEN + b"keep me".len() + RECORD_HEADER_LEN;
        bytes[second_payload] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let (log, replayed, stats) =
            SegmentLog::open_with_plan(&path, StoragePlan::none()).unwrap();
        assert_eq!(replayed, vec![b"keep me".to_vec(), b"keep me too".to_vec()]);
        assert_eq!(stats.replayed, 2);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.torn_tail_bytes, 0);
        // The quarantined slot still occupies a record index.
        assert_eq!(log.n_records(), 3);
    }

    #[test]
    fn injected_torn_write_crashes_the_generation() {
        let path = tmp("injected-torn");
        let plan =
            StoragePlan::new(1, StorageProfile { torn_write_pm: 1000, ..StorageProfile::none() });
        let (mut log, _, _) = SegmentLog::open_with_plan(&path, plan).unwrap();
        assert_eq!(log.append(b"doomed").unwrap(), Append::Torn);
        assert!(log.is_crashed());
        assert_eq!(log.append(b"after the crash").unwrap(), Append::Lost);
        drop(log);

        // Recovery sees only a torn tail; generation 2 draws fresh faults
        // (still all-torn under this profile, so the next write tears
        // again — convergence needs a profile that can draw clean).
        let (_, replayed, stats) = SegmentLog::open_with_plan(&path, plan).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(stats.replayed, 0);
        assert_eq!(stats.generation, 2);
    }

    #[test]
    fn injected_bit_flip_quarantines_on_replay() {
        let path = tmp("injected-flip");
        let plan =
            StoragePlan::new(5, StorageProfile { bit_flip_pm: 1000, ..StorageProfile::none() });
        {
            let (mut log, _, _) = SegmentLog::open_with_plan(&path, plan).unwrap();
            assert_eq!(log.append(b"will flip").unwrap(), Append::Persisted);
        }
        let (_, replayed, stats) = SegmentLog::open_with_plan(&path, plan).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn short_reads_retry_and_lose_nothing() {
        let path = tmp("short-read");
        let plan =
            StoragePlan::new(9, StorageProfile { short_read_pm: 1000, ..StorageProfile::none() });
        {
            let (mut log, _, _) = SegmentLog::open_with_plan(&path, plan).unwrap();
            for i in 0u8..4 {
                assert_eq!(log.append(&[i]).unwrap(), Append::Persisted);
            }
        }
        let (_, replayed, stats) = SegmentLog::open_with_plan(&path, plan).unwrap();
        assert_eq!(replayed.len(), 4);
        assert_eq!(stats.short_read_retries, 4);
        assert_eq!(stats.quarantined, 0);
    }

    #[test]
    fn empty_payloads_are_legal_records() {
        let path = tmp("empty-payload");
        {
            let (mut log, _, _) = SegmentLog::open_with_plan(&path, StoragePlan::none()).unwrap();
            let _ = log.append(b"").unwrap();
            let _ = log.append(b"x").unwrap();
        }
        let (_, replayed, _) = SegmentLog::open_with_plan(&path, StoragePlan::none()).unwrap();
        assert_eq!(replayed, vec![Vec::new(), b"x".to_vec()]);
    }
}
