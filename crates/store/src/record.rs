//! Payload codecs for the two ingestion record kinds the segment log
//! carries: crawl cell records and study participant records.
//!
//! A payload is everything *inside* one log record — the log's own
//! framing (magic, length, checksums) lives in [`crate::segment`]. Both
//! codecs re-validate domain invariants on decode (rank sequences go back
//! through [`MarketRanking::try_new`]), so even a payload that survives
//! its checksum cannot smuggle an invalid ranking into the journal.

use crate::codec::{self, CodecError, Reader};
use fbox_core::model::{QueryId, ValueId};
use fbox_core::observations::{MarketRanking, RankedWorker, RankingError, UserList};
use fbox_marketplace::{CellOutcome, CellRecord};
use fbox_search::{ParticipantRecord, SessionRecord};

/// Encodes one crawl journal entry (grid key plus [`CellRecord`]).
#[must_use]
pub fn encode_crawl(key: u64, record: &CellRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u64(&mut buf, key);
    codec::put_u32(&mut buf, record.retries);
    codec::put_u64(&mut buf, record.backoff_ms);
    match &record.outcome {
        CellOutcome::Clean(ranking) => {
            codec::put_u8(&mut buf, 0);
            put_ranking(&mut buf, ranking);
        }
        CellOutcome::Truncated(ranking) => {
            codec::put_u8(&mut buf, 1);
            put_ranking(&mut buf, ranking);
        }
        CellOutcome::NotOffered => codec::put_u8(&mut buf, 2),
        CellOutcome::Exhausted => codec::put_u8(&mut buf, 3),
        CellOutcome::Quarantined(err) => {
            codec::put_u8(&mut buf, 4);
            match *err {
                RankingError::DuplicateRank { rank } => {
                    codec::put_u8(&mut buf, 0);
                    codec::put_len(&mut buf, rank);
                }
                RankingError::GapInRanks { expected, found } => {
                    codec::put_u8(&mut buf, 1);
                    codec::put_len(&mut buf, expected);
                    codec::put_len(&mut buf, found);
                }
            }
        }
        CellOutcome::SkippedByBreaker => codec::put_u8(&mut buf, 5),
    }
    buf
}

/// Decodes one crawl journal entry.
pub fn decode_crawl(payload: &[u8]) -> Result<(u64, CellRecord), CodecError> {
    let mut r = Reader::new(payload);
    let key = r.u64()?;
    let retries = r.u32()?;
    let backoff_ms = r.u64()?;
    let outcome = match r.u8()? {
        0 => CellOutcome::Clean(take_ranking(&mut r)?),
        1 => CellOutcome::Truncated(take_ranking(&mut r)?),
        2 => CellOutcome::NotOffered,
        3 => CellOutcome::Exhausted,
        4 => CellOutcome::Quarantined(match r.u8()? {
            // Ranks are values, not counts: read them as plain u64s
            // rather than through the buffer-bounded `len()`.
            0 => RankingError::DuplicateRank { rank: r.u64()? as usize },
            1 => RankingError::GapInRanks { expected: r.u64()? as usize, found: r.u64()? as usize },
            tag => return Err(CodecError::BadTag { what: "RankingError", tag }),
        }),
        5 => CellOutcome::SkippedByBreaker,
        tag => return Err(CodecError::BadTag { what: "CellOutcome", tag }),
    };
    r.finish()?;
    Ok((key, CellRecord { retries, backoff_ms, outcome }))
}

fn put_ranking(buf: &mut Vec<u8>, ranking: &MarketRanking) {
    codec::put_len(buf, ranking.len());
    for w in ranking.workers() {
        codec::put_len(buf, w.assignment.len());
        for &v in &w.assignment {
            codec::put_u16(buf, v.0);
        }
        codec::put_len(buf, w.rank);
        codec::put_opt_f64(buf, w.score);
    }
}

fn take_ranking(r: &mut Reader<'_>) -> Result<MarketRanking, CodecError> {
    let n = r.length()?;
    let mut workers = Vec::with_capacity(n);
    for _ in 0..n {
        let arity = r.length()?;
        let mut assignment = Vec::with_capacity(arity);
        for _ in 0..arity {
            assignment.push(ValueId(r.u16()?));
        }
        let rank = r.u64()? as usize;
        let score = r.opt_f64()?;
        workers.push(RankedWorker { assignment, rank, score });
    }
    MarketRanking::try_new(workers)
        .map_err(|_| CodecError::Invalid("decoded ranking fails rank validation"))
}

/// Encodes one study journal entry (participant uid plus
/// [`ParticipantRecord`]).
#[must_use]
pub fn encode_study(uid: u64, record: &ParticipantRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u64(&mut buf, uid);
    codec::put_len(&mut buf, record.sessions.len());
    for s in &record.sessions {
        codec::put_u32(&mut buf, s.q.0);
        match &s.list {
            None => codec::put_u8(&mut buf, 0),
            Some(list) => {
                codec::put_u8(&mut buf, 1);
                codec::put_len(&mut buf, list.assignment.len());
                for &v in &list.assignment {
                    codec::put_u16(&mut buf, v.0);
                }
                codec::put_len(&mut buf, list.results.len());
                for &item in &list.results {
                    codec::put_u64(&mut buf, item);
                }
            }
        }
        codec::put_u8(&mut buf, u8::from(s.truncated));
        codec::put_u8(&mut buf, u8::from(s.quarantined));
        codec::put_u8(&mut buf, u8::from(s.failed));
        codec::put_u32(&mut buf, s.retries);
        codec::put_u64(&mut buf, s.backoff_ms);
    }
    buf
}

/// Decodes one study journal entry.
pub fn decode_study(payload: &[u8]) -> Result<(u64, ParticipantRecord), CodecError> {
    let mut r = Reader::new(payload);
    let uid = r.u64()?;
    let n = r.length()?;
    let mut sessions = Vec::with_capacity(n);
    for _ in 0..n {
        let q = QueryId(r.u32()?);
        let list = match r.u8()? {
            0 => None,
            1 => {
                let arity = r.length()?;
                let mut assignment = Vec::with_capacity(arity);
                for _ in 0..arity {
                    assignment.push(ValueId(r.u16()?));
                }
                let n_results = r.length()?;
                let mut results = Vec::with_capacity(n_results);
                for _ in 0..n_results {
                    results.push(r.u64()?);
                }
                Some(UserList { assignment, results })
            }
            tag => return Err(CodecError::BadTag { what: "Option<UserList>", tag }),
        };
        let truncated = take_bool(&mut r)?;
        let quarantined = take_bool(&mut r)?;
        let failed = take_bool(&mut r)?;
        let retries = r.u32()?;
        let backoff_ms = r.u64()?;
        sessions.push(SessionRecord {
            q,
            list,
            truncated,
            quarantined,
            failed,
            retries,
            backoff_ms,
        });
    }
    r.finish()?;
    Ok((uid, ParticipantRecord { sessions }))
}

fn take_bool(r: &mut Reader<'_>) -> Result<bool, CodecError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(CodecError::BadTag { what: "bool", tag }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking() -> MarketRanking {
        MarketRanking::new(
            (1..=4)
                .map(|rank| RankedWorker {
                    assignment: vec![ValueId((rank % 2) as u16), ValueId(1)],
                    rank,
                    score: if rank == 1 { Some(0.75) } else { None },
                })
                .collect(),
        )
    }

    #[test]
    fn crawl_records_round_trip() {
        let cases = [
            CellRecord { retries: 0, backoff_ms: 0, outcome: CellOutcome::Clean(ranking()) },
            CellRecord { retries: 2, backoff_ms: 300, outcome: CellOutcome::Truncated(ranking()) },
            CellRecord { retries: 0, backoff_ms: 0, outcome: CellOutcome::NotOffered },
            CellRecord { retries: 5, backoff_ms: 3100, outcome: CellOutcome::Exhausted },
            CellRecord {
                retries: 1,
                backoff_ms: 100,
                outcome: CellOutcome::Quarantined(RankingError::DuplicateRank { rank: 3 }),
            },
            CellRecord {
                retries: 1,
                backoff_ms: 100,
                outcome: CellOutcome::Quarantined(RankingError::GapInRanks {
                    expected: 2,
                    found: 4,
                }),
            },
            CellRecord { retries: 0, backoff_ms: 0, outcome: CellOutcome::SkippedByBreaker },
        ];
        for (i, record) in cases.iter().enumerate() {
            let bytes = encode_crawl(i as u64 * 7, record);
            let (key, back) = decode_crawl(&bytes).unwrap();
            assert_eq!(key, i as u64 * 7);
            assert_eq!(&back, record);
        }
    }

    #[test]
    fn study_records_round_trip() {
        let record = ParticipantRecord {
            sessions: vec![
                SessionRecord {
                    q: QueryId(3),
                    list: Some(UserList {
                        assignment: vec![ValueId(1), ValueId(2)],
                        results: vec![10, 20, 30],
                    }),
                    truncated: false,
                    quarantined: false,
                    failed: false,
                    retries: 0,
                    backoff_ms: 0,
                },
                SessionRecord {
                    q: QueryId(7),
                    list: None,
                    truncated: true,
                    quarantined: true,
                    failed: true,
                    retries: 4,
                    backoff_ms: 1500,
                },
            ],
        };
        let bytes = encode_study(42, &record);
        let (uid, back) = decode_study(&bytes).unwrap();
        assert_eq!(uid, 42);
        assert_eq!(back, record);
    }

    #[test]
    fn invalid_rank_sequences_are_rejected_on_decode() {
        // Hand-build a payload whose ranking has a duplicated rank: the
        // checksum layer cannot catch this, the codec must.
        let mut buf = Vec::new();
        codec::put_u64(&mut buf, 0); // key
        codec::put_u32(&mut buf, 0); // retries
        codec::put_u64(&mut buf, 0); // backoff
        codec::put_u8(&mut buf, 0); // Clean
        codec::put_len(&mut buf, 2); // two workers
        for _ in 0..2 {
            codec::put_len(&mut buf, 0); // empty assignment
            codec::put_len(&mut buf, 1); // both claim rank 1
            codec::put_opt_f64(&mut buf, None);
        }
        assert!(matches!(
            decode_crawl(&buf),
            Err(CodecError::Invalid("decoded ranking fails rank validation"))
        ));
    }

    #[test]
    fn truncated_payloads_error_cleanly() {
        let bytes = encode_crawl(
            9,
            &CellRecord { retries: 0, backoff_ms: 0, outcome: CellOutcome::Clean(ranking()) },
        );
        for cut in 0..bytes.len() {
            assert!(decode_crawl(&bytes[..cut]).is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_crawl(
            1,
            &CellRecord { retries: 0, backoff_ms: 0, outcome: CellOutcome::NotOffered },
        );
        bytes.push(0xFF);
        assert!(matches!(decode_crawl(&bytes), Err(CodecError::TrailingBytes(1))));
    }
}
