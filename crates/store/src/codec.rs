//! Hand-rolled little-endian binary primitives for the segment log and
//! the cube snapshot format.
//!
//! The build environment is offline and the on-disk formats must be
//! byte-stable across machines, so nothing here is derived: every field
//! is written explicitly, integers are little-endian, strings are
//! length-prefixed UTF-8, and every optional value carries a one-byte
//! presence tag. Floats are stored as their IEEE-754 bit patterns
//! (`f64::to_bits`), which is what makes snapshot round-trips *bit*-equal,
//! not merely approximately equal.

use std::fmt;

/// Why a buffer failed to decode. Checksums are verified before decoding,
/// so in practice these indicate a format-version mismatch or a bug — but
/// the decoder must still never panic on arbitrary bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a field's bytes.
    UnexpectedEof {
        /// Bytes the field needed.
        wanted: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// An enum tag byte had no matching variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    NonUtf8,
    /// A decoded value violated a domain invariant (e.g. a rank sequence
    /// that does not validate).
    Invalid(&'static str),
    /// Bytes remained after the last expected field.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof { wanted, have } => {
                write!(f, "unexpected end of record: wanted {wanted} bytes, have {have}")
            }
            Self::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            Self::NonUtf8 => write!(f, "string field is not valid UTF-8"),
            Self::Invalid(what) => write!(f, "decoded value violates invariant: {what}"),
            Self::TrailingBytes(n) => write!(f, "{n} bytes left after the last field"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u16`, little-endian.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as a `u64` (the formats are 64-bit regardless of
/// host width).
pub fn put_len(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Appends an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends an `Option<f64>`: presence tag, then the bits when present.
pub fn put_opt_f64(buf: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => put_u8(buf, 0),
        Some(v) => {
            put_u8(buf, 1);
            put_f64(buf, v);
        }
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_len(buf, s.len());
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed optional string.
pub fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => put_u8(buf, 0),
        Some(s) => {
            put_u8(buf, 1);
            put_str(buf, s);
        }
    }
}

/// A forward-only reader over a decoded buffer. Every accessor returns
/// [`CodecError`] instead of panicking, whatever the bytes contain.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        // `pos` never advances past the end, so the subtraction cannot
        // wrap; saturating keeps that visible on every path.
        self.buf.len().saturating_sub(self.pos)
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { wanted: n, have: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a length written by [`put_len`], bounded by the bytes that
    /// could possibly follow (so a corrupted length cannot trigger a huge
    /// allocation).
    pub fn length(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        if v > self.remaining() as u64 {
            return Err(CodecError::UnexpectedEof {
                wanted: usize::try_from(v).unwrap_or(usize::MAX),
                have: self.remaining(),
            });
        }
        Ok(v as usize)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `Option<f64>` written by [`put_opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            tag => Err(CodecError::BadTag { what: "Option<f64>", tag }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let n = self.length()?;
        std::str::from_utf8(self.take(n)?).map_err(|_| CodecError::NonUtf8)
    }

    /// Reads an optional string written by [`put_opt_str`].
    pub fn opt_str(&mut self) -> Result<Option<&'a str>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            tag => Err(CodecError::BadTag { what: "Option<str>", tag }),
        }
    }

    /// Asserts the buffer is fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_opt_f64(&mut buf, None);
        put_opt_f64(&mut buf, Some(f64::MIN_POSITIVE));
        put_str(&mut buf, "Lawn Mowing");
        put_opt_str(&mut buf, None);
        put_opt_str(&mut buf, Some("Yard Work"));

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        // Bit-exact: -0.0 must come back as -0.0, not 0.0.
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(f64::MIN_POSITIVE));
        assert_eq!(r.str().unwrap(), "Lawn Mowing");
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.opt_str().unwrap(), Some("Yard Work"));
        r.finish().unwrap();
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut r = Reader::new(&buf[..5]);
        assert!(matches!(r.u64(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn corrupt_length_cannot_demand_huge_allocation() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // a "length" no buffer can satisfy
        let mut r = Reader::new(&buf);
        assert!(matches!(r.length(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn bad_tags_are_reported() {
        let buf = [9u8];
        assert!(matches!(
            Reader::new(&buf).opt_f64(),
            Err(CodecError::BadTag { what: "Option<f64>", tag: 9 })
        ));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let buf = [0u8, 1];
        let mut r = Reader::new(&buf);
        let _ = r.u8().unwrap();
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes(1)));
    }
}
