//! Durable ingestion drivers: crawl and study runs backed by the
//! segment log.
//!
//! Each driver opens (or resumes) a [`SegmentLog`], replays its surviving
//! records into the run's write-ahead journal, then hands that journal to
//! the ordinary resilient runner with a sink that appends every *newly*
//! resolved cell back to the log. Replayed cells are never re-executed
//! and never re-appended; quarantined or torn-away records simply are not
//! in the journal, so the runner re-runs exactly those cells.
//!
//! Recovery therefore converges: each open bumps the log generation,
//! which re-keys the storage-fault draws ([`StoragePlan::fault`]), and
//! every generation strictly grows the set of durably persisted cells
//! unless *every* append tears — impossible under any profile that can
//! draw clean. The final run's in-memory result folds from the whole
//! journal in grid/recruitment order, so it is bit-equal to an
//! uninterrupted build regardless of which generation executed which
//! cell or what `FBOX_THREADS` was at any point.

use crate::record;
use crate::segment::{Append, ReplayStats, SegmentLog};
use fbox_marketplace::{crawl_with_sink, CrawlJournal, CrawlRun, Marketplace};
use fbox_resilience::{Resilience, StoragePlan};
use fbox_search::{run_study_journaled, ExtensionRunner, StudyDesign, StudyJournal, StudyRun};
use std::io;
use std::path::Path;

/// A durable run's outcome: the ordinary run result plus what the log
/// replay found and what this generation appended.
#[derive(Debug)]
pub struct Durable<R> {
    /// The run, folded from the full journal (replayed + new cells).
    pub run: R,
    /// What replay found when the log was opened.
    pub replay: ReplayStats,
    /// Records this generation durably appended.
    pub appended: usize,
    /// Whether a torn write crashed the log mid-run. The returned `run`
    /// is still complete in memory; the *next* open will re-run whatever
    /// tore away.
    pub crashed: bool,
}

/// A crawl whose journal is durably backed by a segment log at `path`,
/// under the storage-fault plan from the environment.
pub fn crawl_durable(
    marketplace: &Marketplace,
    resilience: &Resilience,
    path: &Path,
) -> io::Result<Durable<CrawlRun>> {
    crawl_durable_with_plan(marketplace, resilience, path, StoragePlan::from_env())
}

/// [`crawl_durable`] under an explicit storage-fault plan.
pub fn crawl_durable_with_plan(
    marketplace: &Marketplace,
    resilience: &Resilience,
    path: &Path,
    plan: StoragePlan,
) -> io::Result<Durable<CrawlRun>> {
    let _trace = fbox_trace::span("store.ingest.crawl");
    let (mut log, payloads, replay) = SegmentLog::open_with_plan(path, plan)?;

    let mut journal = CrawlJournal::new();
    for payload in &payloads {
        let (key, cell) = record::decode_crawl(payload)?;
        let rejected = journal.append(key, cell);
        assert!(rejected.is_none(), "segment log contains duplicate cell records (key {key})");
    }

    let mut appended = 0usize;
    let mut log_error: Option<io::Error> = None;
    let run = crawl_with_sink(marketplace, resilience, &mut journal, &mut |key, cell| {
        if log_error.is_some() {
            return;
        }
        match log.append(&record::encode_crawl(key, cell)) {
            Ok(Append::Persisted) => appended += 1,
            Ok(Append::Torn | Append::Lost) => {}
            Err(e) => log_error = Some(e),
        }
    });
    if let Some(e) = log_error {
        return Err(e);
    }
    Ok(Durable { run, replay, appended, crashed: log.is_crashed() })
}

/// A study whose journal is durably backed by a segment log at `path`,
/// under the storage-fault plan from the environment.
pub fn study_durable(
    design: &StudyDesign,
    engine: &fbox_search::SearchEngine,
    runner: &ExtensionRunner,
    resilience: &Resilience,
    path: &Path,
) -> io::Result<Durable<StudyRun>> {
    study_durable_with_plan(design, engine, runner, resilience, path, StoragePlan::from_env())
}

/// [`study_durable`] under an explicit storage-fault plan.
pub fn study_durable_with_plan(
    design: &StudyDesign,
    engine: &fbox_search::SearchEngine,
    runner: &ExtensionRunner,
    resilience: &Resilience,
    path: &Path,
    plan: StoragePlan,
) -> io::Result<Durable<StudyRun>> {
    let _trace = fbox_trace::span("store.ingest.study");
    let (mut log, payloads, replay) = SegmentLog::open_with_plan(path, plan)?;

    let mut journal = StudyJournal::new();
    for payload in &payloads {
        let (uid, participant) = record::decode_study(payload)?;
        let rejected = journal.append(uid, participant);
        assert!(
            rejected.is_none(),
            "segment log contains duplicate participant records (uid {uid})"
        );
    }

    let mut appended = 0usize;
    let mut log_error: Option<io::Error> = None;
    let run =
        run_study_journaled(design, engine, runner, resilience, &mut journal, &mut |uid, rec| {
            if log_error.is_some() {
                return;
            }
            match log.append(&record::encode_study(uid, rec)) {
                Ok(Append::Persisted) => appended += 1,
                Ok(Append::Torn | Append::Lost) => {}
                Err(e) => log_error = Some(e),
            }
        });
    if let Some(e) = log_error {
        return Err(e);
    }
    Ok(Durable { run, replay, appended, crashed: log.is_crashed() })
}
