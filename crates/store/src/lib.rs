//! # fbox-store — crash-consistent incremental cube store
//!
//! The durability layer under the F-Box: cell observations stream into a
//! checksummed segment log as a crawl or study runs, delta-update an
//! incremental F-Box, and publish as immutable epoch snapshots that the
//! read algorithms consume while ingestion continues. A compact binary
//! snapshot format lets the `repro-*` binaries save a built cube and
//! reload it instead of re-running the simulators.
//!
//! ## Module map
//!
//! - [`codec`] — explicit little-endian binary primitives shared by the
//!   log payloads and the snapshot format.
//! - [`segment`] — the append-only [`SegmentLog`]: FNV-1a-checksummed
//!   records, torn-tail truncation and per-record quarantine on replay,
//!   and storage-fault injection (torn writes, bit flips, short reads)
//!   driven by [`fbox_resilience::StoragePlan`].
//! - [`record`] — payload codecs for crawl cell records and study
//!   participant records.
//! - [`ingest`] — [`crawl_durable`] / [`study_durable`]: the resilient
//!   runners wired to a segment log, so an interrupted or fault-torn run
//!   resumes from durable state and converges to the uninterrupted
//!   result, bit for bit.
//! - [`epoch`] — the [`EpochStore`]: a delta-updated writer F-Box plus
//!   immutable, numbered [`EpochSnapshot`] publications for readers.
//! - [`snapshot`] — the `"FBXS"` cube snapshot file format
//!   ([`CubeSnapshot`]) behind the repro binaries' `--cube <path>`.
//!
//! ## Determinism
//!
//! Nothing in this crate reads a clock or fresh entropy. Storage faults
//! are a pure function of `(seed, log generation, record index)`; replay,
//! delta updates, and epoch publication are pure functions of the
//! ingestion sequence. Recovering from a crash at *any* record boundary
//! therefore rebuilds a cube bit-equal to an uninterrupted build, at any
//! `FBOX_THREADS`.

pub mod codec;
pub mod epoch;
pub mod ingest;
pub mod record;
pub mod segment;
pub mod snapshot;

pub use codec::CodecError;
pub use epoch::{EpochSnapshot, EpochStore};
pub use ingest::{
    crawl_durable, crawl_durable_with_plan, study_durable, study_durable_with_plan, Durable,
};
pub use segment::{Append, ReplayStats, SegmentLog, RECORD_HEADER_LEN, RECORD_MAGIC};
pub use snapshot::{CubeSnapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
