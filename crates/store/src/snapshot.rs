//! The compact binary cube snapshot format behind `--cube <path>`.
//!
//! A [`CubeSnapshot`] freezes a universe plus any number of named
//! unfairness cubes (and free-form string metadata) into one checksummed
//! file, so the `repro-*` binaries can load a previously built cube
//! instead of re-running the simulators.
//!
//! # File format
//!
//! ```text
//! file := magic "FBXS" (4) | version: u32 LE (4) | body | fnv1a(body): u64 LE (8)
//! ```
//!
//! The body serializes, in order: the schema (attribute names and value
//! domains), the groups (as predicate id pairs), the queries and
//! locations (names plus optional category/region), the named cubes
//! (dimensions plus one optional-f64 per cell in `raw_data` order), and
//! the metadata map. Everything uses the explicit little-endian
//! primitives of [`crate::codec`]; cell values travel as IEEE-754 bit
//! patterns, so a load is *bit*-identical to the cube that was saved.
//!
//! The universe is rebuilt through the same registration calls
//! (`Universe::new` → `add_group`/`add_query`/`add_location` in stored
//! order) that built the original, so every dense id comes back
//! unchanged — cubes indexed by those ids remain valid.
//!
//! Saves write to `<path>.tmp` and rename into place, so a crash mid-save
//! leaves either the old snapshot or none, never a torn one. Loads
//! verify magic, version, and checksum before touching the body and
//! report [`std::io::ErrorKind::InvalidData`] on any mismatch.

use crate::codec::{self, CodecError, Reader};
use fbox_core::cube::UnfairnessCube;
use fbox_core::model::{
    AttrId, Attribute, GroupId, GroupLabel, LocationId, QueryId, Schema, Universe, ValueId,
};
use fbox_resilience::hash::fnv1a;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"FBXS";

/// Current format version. Loads reject any other version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A frozen universe plus named cubes and metadata.
#[derive(Debug, Clone)]
pub struct CubeSnapshot {
    universe: Universe,
    cubes: Vec<(String, UnfairnessCube)>,
    meta: BTreeMap<String, String>,
}

impl CubeSnapshot {
    /// An empty snapshot over a universe.
    #[must_use]
    pub fn new(universe: Universe) -> Self {
        Self { universe, cubes: Vec::new(), meta: BTreeMap::new() }
    }

    /// The frozen universe.
    #[must_use]
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Adds (or replaces) a named cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube's dimensions disagree with the universe.
    pub fn insert_cube(&mut self, name: impl Into<String>, cube: UnfairnessCube) {
        assert_eq!(
            (cube.n_groups(), cube.n_queries(), cube.n_locations()),
            (self.universe.n_groups(), self.universe.n_queries(), self.universe.n_locations()),
            "cube dimensions disagree with the snapshot universe"
        );
        let name = name.into();
        if let Some(slot) = self.cubes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = cube;
        } else {
            self.cubes.push((name, cube));
        }
    }

    /// Looks up a cube by name.
    #[must_use]
    pub fn cube(&self, name: &str) -> Option<&UnfairnessCube> {
        self.cubes.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// The named cubes in insertion order.
    #[must_use]
    pub fn cubes(&self) -> &[(String, UnfairnessCube)] {
        &self.cubes
    }

    /// Sets a metadata entry.
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.meta.insert(key.into(), value.into());
    }

    /// Looks up a metadata entry.
    #[must_use]
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.get(key).map(String::as_str)
    }

    /// All metadata entries, sorted by key.
    #[must_use]
    pub fn meta_entries(&self) -> &BTreeMap<String, String> {
        &self.meta
    }

    /// Serializes the snapshot to bytes (magic, version, body, checksum).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        encode_universe(&mut body, &self.universe);
        codec::put_len(&mut body, self.cubes.len());
        for (name, cube) in &self.cubes {
            codec::put_str(&mut body, name);
            encode_cube(&mut body, cube);
        }
        codec::put_len(&mut body, self.meta.len());
        for (k, v) in &self.meta {
            codec::put_str(&mut body, k);
            codec::put_str(&mut body, v);
        }

        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        let checksum = fnv1a(&body);
        out.extend_from_slice(&body);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserializes a snapshot, verifying magic, version, and checksum
    /// before decoding the body.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let n = bytes.len();
        if n < 16 {
            return Err(CodecError::UnexpectedEof { wanted: 16, have: n });
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(CodecError::Invalid("snapshot magic mismatch"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(CodecError::Invalid("unsupported snapshot version"));
        }
        let body = &bytes[8..n - 8];
        let stored = u64::from_le_bytes(bytes[n - 8..].try_into().expect("8 bytes"));
        if fnv1a(body) != stored {
            return Err(CodecError::Invalid("snapshot checksum mismatch"));
        }

        let mut r = Reader::new(body);
        let universe = decode_universe(&mut r)?;
        let n_cubes = r.length()?;
        let mut cubes = Vec::with_capacity(n_cubes);
        for _ in 0..n_cubes {
            let name = r.str()?.to_string();
            let cube = decode_cube(&mut r, &universe)?;
            cubes.push((name, cube));
        }
        let n_meta = r.length()?;
        let mut meta = BTreeMap::new();
        for _ in 0..n_meta {
            let k = r.str()?.to_string();
            let v = r.str()?.to_string();
            meta.insert(k, v);
        }
        r.finish()?;
        Ok(Self { universe, cubes, meta })
    }

    /// Saves the snapshot atomically: writes `<path>.tmp`, then renames
    /// into place.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let _trace = fbox_trace::span("store.snapshot.save");
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads and verifies a snapshot from disk.
    pub fn load(path: &Path) -> io::Result<Self> {
        let _trace = fbox_trace::span("store.snapshot.load");
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes).map_err(Into::into)
    }
}

fn encode_universe(buf: &mut Vec<u8>, u: &Universe) {
    let schema = u.schema();
    codec::put_len(buf, schema.len());
    for attr in schema.attributes() {
        codec::put_str(buf, attr.name());
        codec::put_len(buf, attr.cardinality());
        for v in attr.values() {
            codec::put_str(buf, v);
        }
    }
    codec::put_len(buf, u.n_groups());
    for g in u.group_ids() {
        let label = u.group(g);
        codec::put_len(buf, label.arity());
        for &(a, v) in label.predicates() {
            codec::put_u16(buf, a.0);
            codec::put_u16(buf, v.0);
        }
    }
    codec::put_len(buf, u.n_queries());
    for q in u.query_ids() {
        let def = u.query(q);
        codec::put_str(buf, &def.name);
        codec::put_opt_str(buf, def.category.as_deref());
    }
    codec::put_len(buf, u.n_locations());
    for l in u.location_ids() {
        let def = u.location(l);
        codec::put_str(buf, &def.name);
        codec::put_opt_str(buf, def.region.as_deref());
    }
}

fn decode_universe(r: &mut Reader<'_>) -> Result<Universe, CodecError> {
    let n_attrs = r.length()?;
    let mut attributes = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let name = r.str()?.to_string();
        let n_values = r.length()?;
        if n_values == 0 {
            return Err(CodecError::Invalid("attribute with empty value domain"));
        }
        let mut values = Vec::with_capacity(n_values);
        for _ in 0..n_values {
            values.push(r.str()?.to_string());
        }
        attributes.push((name, values));
    }
    // Re-validate through the constructors so a tampered body that passes
    // the checksum still cannot build an inconsistent universe.
    let schema = Schema::new(
        attributes.into_iter().map(|(name, values)| Attribute::new(name, values)).collect(),
    );
    let mut universe = Universe::new(schema);

    let n_groups = r.length()?;
    for i in 0..n_groups {
        let arity = r.length()?;
        let mut predicates = Vec::with_capacity(arity);
        for _ in 0..arity {
            let a = AttrId(r.u16()?);
            let v = ValueId(r.u16()?);
            let attr_ok = (a.0 as usize) < universe.schema().len();
            if !attr_ok || (v.0 as usize) >= universe.schema().attribute(a).cardinality() {
                return Err(CodecError::Invalid("group predicate outside the schema"));
            }
            predicates.push((a, v));
        }
        let id = universe.add_group(GroupLabel::new(predicates));
        if id != GroupId(i as u32) {
            return Err(CodecError::Invalid("duplicate group label in snapshot"));
        }
    }
    let n_queries = r.length()?;
    for i in 0..n_queries {
        let name = r.str()?.to_string();
        let category = r.opt_str()?.map(str::to_string);
        let id = universe.add_query(name, category.as_deref());
        if id != QueryId(i as u32) {
            return Err(CodecError::Invalid("duplicate query name in snapshot"));
        }
    }
    let n_locations = r.length()?;
    for i in 0..n_locations {
        let name = r.str()?.to_string();
        let region = r.opt_str()?.map(str::to_string);
        let id = universe.add_location(name, region.as_deref());
        if id != LocationId(i as u32) {
            return Err(CodecError::Invalid("duplicate location name in snapshot"));
        }
    }
    Ok(universe)
}

fn encode_cube(buf: &mut Vec<u8>, cube: &UnfairnessCube) {
    codec::put_len(buf, cube.n_groups());
    codec::put_len(buf, cube.n_queries());
    codec::put_len(buf, cube.n_locations());
    for &cell in cube.raw_data() {
        codec::put_opt_f64(buf, cell);
    }
}

fn decode_cube(r: &mut Reader<'_>, universe: &Universe) -> Result<UnfairnessCube, CodecError> {
    let ng = r.length()?;
    let nq = r.length()?;
    let nl = r.length()?;
    if (ng, nq, nl) != (universe.n_groups(), universe.n_queries(), universe.n_locations()) {
        return Err(CodecError::Invalid("cube dimensions disagree with snapshot universe"));
    }
    let mut cube = UnfairnessCube::with_dims(ng, nq, nl);
    for g in 0..ng as u32 {
        for q in 0..nq as u32 {
            for l in 0..nl as u32 {
                cube.set_opt(GroupId(g), QueryId(q), LocationId(l), r.opt_f64()?);
            }
        }
    }
    Ok(cube)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Universe {
        let mut u = Universe::with_all_groups(Schema::gender_ethnicity());
        u.add_query("Organize Closet", Some("General Cleaning"));
        u.add_query("Lawn Mowing", Some("Yard Work"));
        u.add_location("San Francisco, CA", Some("West Coast"));
        u.add_location("London", None);
        u
    }

    fn snapshot() -> CubeSnapshot {
        let u = universe();
        let mut cube = UnfairnessCube::empty(&u);
        cube.set(GroupId(0), QueryId(0), LocationId(0), 0.25);
        cube.set(GroupId(3), QueryId(1), LocationId(1), -0.0);
        let mut snap = CubeSnapshot::new(u);
        snap.insert_cube("market:exposure", cube);
        snap.set_meta("platform", "taskrabbit");
        snap
    }

    #[test]
    fn bytes_round_trip_bit_exactly() {
        let snap = snapshot();
        let decoded = CubeSnapshot::from_bytes(&snap.to_bytes()).unwrap();

        let u = decoded.universe();
        assert_eq!(u.n_groups(), 11);
        assert_eq!(u.query(QueryId(0)).category.as_deref(), Some("General Cleaning"));
        assert_eq!(u.location(LocationId(1)).region, None);
        assert_eq!(u.group(GroupId(3)), snapshot().universe().group(GroupId(3)));
        assert_eq!(decoded.meta("platform"), Some("taskrabbit"));

        let orig = snap.cube("market:exposure").unwrap();
        let back = decoded.cube("market:exposure").unwrap();
        let bits = |c: &UnfairnessCube| {
            c.raw_data().iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>()
        };
        assert_eq!(bits(orig), bits(back));
        // -0.0 survives with its sign bit.
        assert_eq!(
            back.get(GroupId(3), QueryId(1), LocationId(1)).map(f64::to_bits),
            Some((-0.0f64).to_bits())
        );
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("fbox-store-snapshot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("roundtrip-{}.fbxs", std::process::id()));
        let snap = snapshot();
        snap.save(&path).unwrap();
        let loaded = CubeSnapshot::load(&path).unwrap();
        assert_eq!(loaded.cubes().len(), 1);
        assert_eq!(loaded.to_bytes(), snap.to_bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        let snap = snapshot();
        let good = snap.to_bytes();

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            CubeSnapshot::from_bytes(&flipped),
            Err(CodecError::Invalid(_) | CodecError::UnexpectedEof { .. })
        ));

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            CubeSnapshot::from_bytes(&bad_magic),
            Err(CodecError::Invalid("snapshot magic mismatch"))
        ));

        let mut bad_version = good;
        bad_version[4] = 99;
        // Version check fires before the checksum is even computed.
        assert!(matches!(
            CubeSnapshot::from_bytes(&bad_version),
            Err(CodecError::Invalid("unsupported snapshot version"))
        ));
    }

    #[test]
    fn load_reports_invalid_data_kind() {
        let dir = std::env::temp_dir().join("fbox-store-snapshot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("garbage-{}.fbxs", std::process::id()));
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        let err = CubeSnapshot::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn insert_cube_replaces_by_name() {
        let u = universe();
        let mut snap = CubeSnapshot::new(u.clone());
        snap.insert_cube("c", UnfairnessCube::empty(&u));
        let mut replacement = UnfairnessCube::empty(&u);
        replacement.set(GroupId(0), QueryId(0), LocationId(0), 1.0);
        snap.insert_cube("c", replacement);
        assert_eq!(snap.cubes().len(), 1);
        assert_eq!(snap.cube("c").unwrap().get(GroupId(0), QueryId(0), LocationId(0)), Some(1.0));
    }
}
