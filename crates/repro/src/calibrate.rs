//! Calibrated bias/personalization profiles.
//!
//! These are the *inputs* of the reproduction: instead of hard-coding the
//! paper's result tables, we encode a plausible discrimination pattern —
//! how strongly each demographic group, city, and job category is
//! affected — and let every number emerge from the ranked results through
//! the F-Box. The parameters below were tuned (by running the pipeline,
//! not by construction) until the *orderings* of the paper's Tables 8–21
//! and §5.2 narrative reproduce; EXPERIMENTS.md records the residual
//! differences.

use fbox_marketplace::demographics::{Ethnicity, Gender};
use fbox_marketplace::{BiasOverride, BiasProfile, OverrideAction};
use fbox_search::{PersonalizationOverride, PersonalizationProfile};

/// Seed used by every repro scenario (population, noise, corpus).
pub const SEED: u64 = 0xEDB7_2020;

/// The TaskRabbit bias profile.
///
/// - Group penalties: Asians penalized most, then Blacks, then Whites;
///   within each ethnicity women fare worse, with the gender gap widest
///   for Asians (drives Table 8's AF > AM > BF > BM > WF > WM ladder).
/// - City amplifiers: UK cities and Oklahoma City most biased; Chicago,
///   San Francisco, Washington and the large coastal markets least
///   (Tables 10–11).
/// - Category amplifiers: Handyman and Yard Work most biased; Furniture
///   Assembly, Run Errands and Delivery least (Table 9).
/// - Overrides: the sign exceptions behind the comparison findings
///   (Tables 12–15) — cities where women are treated *better* than men,
///   query × ethnicity quirks for Lawn Mowing vs Event Decorating, and
///   the San Francisco Bay Area vs Chicago organizing sub-queries.
pub fn taskrabbit_bias() -> BiasProfile {
    let mut p = BiasProfile::neutral()
        // Penalty ladder (score units; clean scores span [0, 1]). Asian
        // workers are displaced most — females down, males *up* (positive
        // discrimination, §2) — so both Asian groups sit far from every
        // comparable group while the Black/White cluster stays tight.
        // That is what puts Asian Females and Asian Males on top of
        // Table 8 under a distribution distance without dragging White
        // Males (everyone's "far" comparable otherwise) up with them.
        .with_penalty(Gender::Female, Ethnicity::Asian, 0.42)
        .with_penalty(Gender::Male, Ethnicity::Asian, -0.12)
        .with_penalty(Gender::Female, Ethnicity::Black, 0.18)
        .with_penalty(Gender::Male, Ethnicity::Black, 0.05)
        .with_penalty(Gender::Female, Ethnicity::White, 0.09)
        .with_penalty(Gender::Male, Ethnicity::White, 0.07);
    // The EMD response to the amplifier is steep roughly over [0.2, 0.9]
    // and saturates above; all amplifiers live in the steep region so that
    // city orderings are driven by the profile, not by saturation.
    p.default_location_amp = 0.28;
    p.default_category_amp = 1.0;

    // Cities, unfairest → fairest (Tables 10–11).
    for (city, amp) in [
        ("Birmingham, UK", 0.6),
        ("Oklahoma City, OK", 0.57),
        ("Bristol, UK", 0.54),
        ("Manchester, UK", 0.51),
        ("New Haven, CT", 0.49),
        ("Milwaukee, WI", 0.47),
        ("Memphis, TN", 0.455),
        ("Indianapolis, IN", 0.44),
        ("Nashville, TN", 0.50),
        ("Detroit, MI", 0.42),
        ("London, UK", 0.37),
        ("Salt Lake City, UT", 0.36),
        ("Norfolk, VA", 0.335),
        ("Charlotte, NC", 0.33),
        ("St. Louis, MO", 0.325),
        ("San Diego, CA", 0.26),
        ("Philadelphia, PA", 0.25),
        ("Orlando, FL", 0.245),
        ("Houston, TX", 0.24),
        ("Atlanta, GA", 0.23),
        ("Boston, MA", 0.225),
        ("Los Angeles, CA", 0.22),
        ("Washington, DC", 0.21),
        ("San Francisco Bay Area, CA", 0.2),
        ("San Francisco, CA", 0.18),
        ("Chicago, IL", 0.10),
    ] {
        p = p.with_location_amp(city, amp);
    }

    // Categories, unfairest → fairest (Table 9).
    for (category, amp) in [
        ("Handyman", 1.25f64),
        ("Yard Work", 1.22),
        ("Event Staffing", 1.04),
        ("General Cleaning", 1.00),
        ("Moving", 0.95),
        ("Furniture Assembly", 0.76),
        ("Run Errands", 0.70),
        ("Delivery", 0.64),
    ] {
        let amp = amp.max(0.0);
        debug_assert!(amp >= 0.0, "calibrated amplifiers are non-negative");
        p = p.with_category_amp(category, amp);
    }

    // Table 12: cities where females are treated more fairly than males,
    // inverting the overall trend. Female penalties are damped well below
    // the male ones there (rather than swapping genders outright, which
    // would shift the much larger male population and inflate the city's
    // total unfairness).
    for city in [
        "Charlotte, NC",
        "Chicago, IL",
        "Nashville, TN",
        "Norfolk, VA",
        "San Francisco Bay Area, CA",
        "St. Louis, MO",
    ] {
        p = p.with_override(BiasOverride {
            location: Some(city.to_string()),
            query: None,
            category: None,
            gender: Some(Gender::Female),
            ethnicity: None,
            action: OverrideAction::Scale(0.0),
        });
        // Scale only the *penalized* male groups up; amplifying the Asian
        // males' boost would inflate the whole city's unfairness and
        // corrupt the Table 10/11 location ordering.
        for ethnicity in [Ethnicity::Black, Ethnicity::White] {
            p = p.with_override(BiasOverride {
                location: Some(city.to_string()),
                query: None,
                category: None,
                gender: Some(Gender::Male),
                ethnicity: Some(ethnicity),
                action: OverrideAction::Scale(2.4),
            });
        }
    }

    // Tables 13–14: Lawn Mowing vs Event Decorating quirks. Event
    // Decorating hits White workers unusually hard (EMD reversal for
    // Whites) while Lawn Mowing goes easy on Black workers (exposure
    // reversal for Blacks).
    // The cross-measure split (Tables 13 vs 14 flag different
    // ethnicities) works because the two measures see different things:
    // exposure reacts to a group's *net* displacement, EMD to its
    // *distribution shape*. A gender-split displacement inside an
    // ethnicity (women pushed down, men up, with population-weighted
    // shares balancing out) is huge under EMD but nearly invisible to
    // exposure — and a mild uniform displacement is the opposite.
    let quirk = |query: &str, gender: Option<Gender>, ethnicity, scale| BiasOverride {
        location: None,
        query: Some(query.to_string()),
        category: None,
        gender,
        ethnicity: Some(ethnicity),
        action: OverrideAction::Scale(scale),
    };
    p = p
        // White: Event Decorating gender-splits (EMD-reversal for White,
        // Table 13); Lawn Mowing demotes mildly and uniformly.
        .with_override(quirk("Lawn Mowing", None, Ethnicity::White, 0.9))
        .with_override(quirk("Event Decorating", Some(Gender::Female), Ethnicity::White, 9.0))
        .with_override(quirk("Event Decorating", Some(Gender::Male), Ethnicity::White, -4.5))
        // Black: Lawn Mowing gender-splits (exposure-reversal for Black,
        // Table 14); Event Decorating demotes mildly and uniformly.
        .with_override(quirk("Lawn Mowing", Some(Gender::Female), Ethnicity::Black, 3.4))
        .with_override(quirk("Lawn Mowing", Some(Gender::Male), Ethnicity::Black, -3.6))
        .with_override(quirk("Event Decorating", None, Ethnicity::Black, 0.6))
        // Asian: keep Lawn Mowing slightly hotter so the overall
        // Lawn Mowing > Event Decorating order holds under both measures.
        .with_override(quirk("Lawn Mowing", None, Ethnicity::Asian, 1.8))
        .with_override(quirk("Event Decorating", None, Ethnicity::Asian, 0.6));

    // Table 15: within General Cleaning the Bay Area is fairer than
    // Chicago overall — Chicago runs General Cleaning unusually hot —
    // but Chicago wins on the three organizing sub-queries.
    p = p.with_override(BiasOverride {
        location: Some("Chicago, IL".to_string()),
        query: None,
        category: Some("General Cleaning".to_string()),
        gender: None,
        ethnicity: None,
        action: OverrideAction::Scale(3.8),
    });
    for q in ["Back To Organized", "Organize & Declutter", "Organize Closet"] {
        p = p.with_override(BiasOverride {
            location: Some("Chicago, IL".to_string()),
            query: Some(q.to_string()),
            category: None,
            gender: None,
            ethnicity: None,
            action: OverrideAction::Scale(0.21),
        });
    }
    p
}

/// The Google personalization profile.
///
/// - Distinctiveness: White Females' profiles separate them most, Black
///   Males least (§5.2.2's most/least discriminated groups).
/// - Locations: London most personalized (unfairest), Washington DC
///   essentially not at all (fairest).
/// - Queries: Yard Work terms most personalized, Furniture Assembly least.
/// - Overrides: locations where the male/female trend inverts
///   (Tables 16–17) and the Running-Errands-vs-General-Cleaning ethnicity
///   quirks (Tables 18–19).
pub fn google_personalization() -> PersonalizationProfile {
    let mut p = PersonalizationProfile::uniform(0.17)
        .with_distinctiveness(Gender::Female, Ethnicity::White, 1.00)
        .with_distinctiveness(Gender::Male, Ethnicity::White, 0.78)
        .with_distinctiveness(Gender::Female, Ethnicity::Asian, 0.62)
        .with_distinctiveness(Gender::Male, Ethnicity::Asian, 0.50)
        .with_distinctiveness(Gender::Female, Ethnicity::Black, 0.34)
        .with_distinctiveness(Gender::Male, Ethnicity::Black, 0.16);
    p.default_location_amp = 1.0;
    p.default_query_amp = 1.0;

    for (location, amp) in [
        ("London, UK", 1.45),
        ("Birmingham, UK", 1.22),
        ("Manchester, UK", 1.12),
        ("Bristol, UK", 1.6),
        ("New York City, NY", 1.00),
        ("Detroit, MI", 0.94),
        ("Los Angeles, CA", 0.88),
        ("Pittsburgh, PA", 0.82),
        ("Charlotte, NC", 0.76),
        ("Boston, MA", 0.70),
        ("Washington, DC", 0.06),
    ] {
        p = p.with_location_amp(location, amp);
    }

    // Query amplifiers by study query (fbox_search::QUERIES), Yard Work
    // hottest, Furniture Assembly coolest.
    for (query, amp) in [
        ("yard work", 1.75f64),
        ("Lawn Mowing", 1.68),
        ("Leaf Raking", 1.60),
        ("Hedge Trimming", 1.55),
        ("general cleaning", 1.02),
        ("office cleaning jobs", 0.98),
        ("private cleaning jobs", 0.95),
        ("Home Cleaning", 1.00),
        ("Deep Cleaning", 0.97),
        ("event staffing", 1.10),
        ("Event Decorating", 1.06),
        ("moving job", 0.90),
        ("Help Moving", 0.88),
        ("run errand", 0.84),
        ("Running Errands", 0.86),
        ("Shopping Errand", 0.82),
        ("Wait In Line", 0.80),
        ("furniture assembly", 0.55),
        ("IKEA Assembly", 0.52),
        ("Bed Assembly", 0.50),
    ] {
        let amp = amp.max(0.0);
        debug_assert!(amp >= 0.0, "calibrated amplifiers are non-negative");
        p = p.with_query_amp(query, amp);
    }

    // Tables 16–17: locations where females see *less* personalization
    // than males, inverting the overall male/female comparison.
    for location in ["Birmingham, UK", "Bristol, UK", "Detroit, MI", "New York City, NY"] {
        p = p.with_override(PersonalizationOverride {
            location: Some(location.to_string()),
            query: None,
            category: None,
            gender: Some(Gender::Female),
            ethnicity: None,
            scale: 0.55,
        });
    }

    // Tables 18–19: for Black and Asian users the "general cleaning"
    // query is more personalized than "run errand", inverting the overall
    // order of the two queries (which is carried by White users, for whom
    // errand search personalizes hard). Scoped to the two compared
    // queries so the global query rankings are untouched.
    for (ethnicity, re_scale, gc_scale) in [
        (Ethnicity::Black, 0.85, 4.2),
        (Ethnicity::Asian, 0.38, 1.85),
        (Ethnicity::White, 2.15, 0.07),
    ] {
        p = p.with_override(PersonalizationOverride {
            location: None,
            query: Some("run errand".to_string()),
            category: None,
            gender: None,
            ethnicity: Some(ethnicity),
            scale: re_scale,
        });
        p = p.with_override(PersonalizationOverride {
            location: None,
            query: Some("general cleaning".to_string()),
            category: None,
            gender: None,
            ethnicity: Some(ethnicity),
            scale: gc_scale,
        });
    }

    // Tables 20–21: Bristol is less fair than Boston for General Cleaning
    // overall, but Boston runs the office/private cleaning terms hotter.
    for q in ["office cleaning jobs", "private cleaning jobs"] {
        p = p.with_override(PersonalizationOverride {
            location: Some("Boston, MA".to_string()),
            query: Some(q.to_string()),
            category: None,
            gender: None,
            ethnicity: None,
            scale: 1.6,
        });
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbox_marketplace::demographics::Demographic;

    #[test]
    fn taskrabbit_displacement_ladder() {
        // |penalty| = displacement from merit. Asians most displaced
        // (females down, males up), then Black/White females, then
        // Black/White males.
        let p = taskrabbit_bias();
        let d = |g, e| p.base_penalty(Demographic { gender: g, ethnicity: e });
        let af = d(Gender::Female, Ethnicity::Asian);
        let am = d(Gender::Male, Ethnicity::Asian);
        let bf = d(Gender::Female, Ethnicity::Black);
        let bm = d(Gender::Male, Ethnicity::Black);
        let wf = d(Gender::Female, Ethnicity::White);
        let wm = d(Gender::Male, Ethnicity::White);
        assert!(af > 0.0 && am < 0.0, "asian females penalized, males boosted");
        assert!(af.abs() > am.abs(), "females displaced further than males");
        assert!(af > bf, "asian females are the farthest displaced group");
        // Within the Black/White cluster: women fare worse than men, and
        // every base penalty is a (positive) disadvantage.
        assert!(bf > wf && wf > wm && wm > bm && bm > 0.0, "{bf} {wf} {wm} {bm}");
    }

    #[test]
    fn birmingham_is_the_most_amplified_city() {
        let p = taskrabbit_bias();
        let birmingham = p.location_amp["Birmingham, UK"];
        for (city, amp) in &p.location_amp {
            assert!(*amp <= birmingham, "{city} amp {amp} exceeds Birmingham");
        }
        assert!(p.default_location_amp < birmingham);
    }

    #[test]
    fn chicago_swaps_genders() {
        let p = taskrabbit_bias();
        let wf = Demographic { gender: Gender::Female, ethnicity: Ethnicity::White };
        let wm = Demographic { gender: Gender::Male, ethnicity: Ethnicity::White };
        let f_chi = p.penalty(wf, "Home Cleaning", "General Cleaning", "Chicago, IL");
        let m_chi = p.penalty(wm, "Home Cleaning", "General Cleaning", "Chicago, IL");
        assert!(f_chi < m_chi, "Chicago should favor women: {f_chi} vs {m_chi}");
        let f_bos = p.penalty(wf, "Home Cleaning", "General Cleaning", "Boston, MA");
        let m_bos = p.penalty(wm, "Home Cleaning", "General Cleaning", "Boston, MA");
        assert!(f_bos > m_bos, "Boston keeps the overall trend");
    }

    #[test]
    fn google_dc_is_nearly_personalization_free() {
        let p = google_personalization();
        let wf = Demographic { gender: Gender::Female, ethnicity: Ethnicity::White };
        let dc = p.strength(wf, "yard work", "Yard Work", "Washington, DC");
        let london = p.strength(wf, "yard work", "Yard Work", "London, UK");
        assert!(dc < london / 10.0, "DC {dc} vs London {london}");
    }

    #[test]
    fn google_covers_every_study_query() {
        let p = google_personalization();
        for (query, _) in fbox_search::QUERIES {
            assert!(p.query_amp.contains_key(query), "query {query:?} missing an amplifier");
        }
    }
}
