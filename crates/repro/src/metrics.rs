//! Telemetry wiring for the `repro-*` binaries.
//!
//! Every binary calls [`init_from_args`] first thing and
//! [`print_section`] last. Metrics collection turns on when either the
//! `--metrics` flag is passed or the `FBOX_TELEMETRY` environment variable
//! is set (to anything but `0`); otherwise both calls are no-ops and the
//! binary's output is byte-identical to an uninstrumented run.

use std::io::Write;

use fbox_telemetry::{Subscriber, TableSink};

/// Enables the global telemetry registry when `--metrics` is among the
/// process arguments (the `FBOX_TELEMETRY` environment variable is honored
/// by the registry itself). Returns whether metrics are on.
pub fn init_from_args() -> bool {
    if std::env::args().any(|a| a == "--metrics") {
        fbox_telemetry::set_enabled(true);
    }
    fbox_telemetry::global().enabled()
}

/// Renders the metrics section appended to a report when telemetry is
/// enabled; returns `None` when it is off.
pub fn render_section() -> Option<String> {
    let t = fbox_telemetry::global();
    if !t.enabled() {
        return None;
    }
    let mut out = Vec::new();
    writeln!(out, "======================================================================").ok()?;
    writeln!(out, "TELEMETRY (--metrics)").ok()?;
    writeln!(out, "======================================================================").ok()?;
    TableSink::new(&mut out).export(&t.snapshot()).ok()?;
    String::from_utf8(out).ok()
}

/// Prints the metrics section to stdout when telemetry is enabled.
pub fn print_section() {
    if let Some(section) = render_section() {
        print!("{section}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_is_none_while_disabled() {
        // The global registry starts disabled in the test environment
        // (FBOX_TELEMETRY unset); render_section must be silent then.
        if !fbox_telemetry::global().enabled() {
            assert!(render_section().is_none());
        }
    }

    #[test]
    fn section_lists_pipeline_counters_when_enabled() {
        fbox_telemetry::set_enabled(true);
        fbox_telemetry::global().counter("cube.cells_computed").add(3);
        let section = render_section().expect("enabled registry renders");
        assert!(section.contains("TELEMETRY"));
        assert!(section.contains("cube.cells_computed"));
        fbox_telemetry::set_enabled(false);
        fbox_telemetry::global().reset();
    }
}
