//! Telemetry and tracing wiring for the `repro-*` binaries.
//!
//! Every binary calls [`init_from_args`] first thing and
//! [`print_section`] last. Metrics collection turns on when either the
//! `--metrics` flag is passed or the `FBOX_TELEMETRY` environment variable
//! is set (to anything but `0`); tracing turns on when `--trace <path>`
//! (or `--trace=<path>`) is passed or the `FBOX_TRACE` environment
//! variable names an output path. Otherwise both calls are no-ops and the
//! binary's stdout is byte-identical to an uninstrumented run — trace
//! files are written on the side and trace notes go to stderr only.

use std::io::Write;
use std::sync::OnceLock;

use fbox_telemetry::{Subscriber, TableSink};

/// Where the Chrome trace JSON goes, resolved once at init. `None` inside
/// means tracing is off for this process.
static TRACE_PATH: OnceLock<Option<String>> = OnceLock::new();

/// `--trace <path>` / `--trace=<path>` from the process arguments, falling
/// back to the `FBOX_TRACE` environment variable.
fn resolve_trace_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next();
        }
        if let Some(rest) = a.strip_prefix("--trace=") {
            return Some(rest.to_string());
        }
    }
    fbox_trace::env_trace_path()
}

/// `--cube <path>` / `--cube=<path>` from the process arguments, falling
/// back to the `FBOX_CUBE` environment variable: where to load a saved
/// cube snapshot from (when the file exists) or save one to (after a
/// fresh build). `None` means snapshot caching is off.
pub fn resolve_cube_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--cube" {
            return args.next().map(Into::into);
        }
        if let Some(rest) = a.strip_prefix("--cube=") {
            return Some(rest.into());
        }
    }
    std::env::var_os("FBOX_CUBE").filter(|v| !v.is_empty()).map(Into::into)
}

/// Enables the global telemetry registry when `--metrics` is among the
/// process arguments (the `FBOX_TELEMETRY` environment variable is honored
/// by the registry itself), and starts a wall-clock trace session when a
/// trace output path is configured. Returns whether metrics are on.
pub fn init_from_args() -> bool {
    if std::env::args().any(|a| a == "--metrics") {
        fbox_telemetry::set_enabled(true);
    }
    let path = resolve_trace_path();
    let tracing = path.is_some();
    let _ = TRACE_PATH.set(path);
    if tracing {
        fbox_trace::start(fbox_trace::Clock::Wall);
    }
    fbox_telemetry::global().enabled()
}

/// Finishes the trace session (if one was started) and writes the Chrome
/// trace-event JSON to the configured path plus a folded-flamegraph
/// sibling (`<path>.folded`). Status goes to stderr so stdout stays
/// byte-identical to an untraced run.
fn write_trace() {
    let Some(Some(path)) = TRACE_PATH.get() else {
        return;
    };
    let trace = fbox_trace::finish();
    let folded_path = format!("{path}.folded");
    if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
        eprintln!("trace: failed to write {path}: {e}");
        return;
    }
    if let Err(e) = std::fs::write(&folded_path, trace.to_folded()) {
        eprintln!("trace: failed to write {folded_path}: {e}");
        return;
    }
    eprintln!("trace: {} events -> {path} (folded: {folded_path})", trace.len());
}

/// Renders the metrics section appended to a report when telemetry is
/// enabled; returns `None` when it is off.
pub fn render_section() -> Option<String> {
    let t = fbox_telemetry::global();
    if !t.enabled() {
        return None;
    }
    let mut out = Vec::new();
    writeln!(out, "======================================================================").ok()?;
    writeln!(out, "TELEMETRY (--metrics)").ok()?;
    writeln!(out, "======================================================================").ok()?;
    TableSink::new(&mut out).export(&t.snapshot()).ok()?;
    String::from_utf8(out).ok()
}

/// Prints the metrics section to stdout when telemetry is enabled, then
/// flushes any live trace session to its output files.
pub fn print_section() {
    if let Some(section) = render_section() {
        print!("{section}");
    }
    write_trace();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_is_none_while_disabled() {
        // The global registry starts disabled in the test environment
        // (FBOX_TELEMETRY unset); render_section must be silent then.
        if !fbox_telemetry::global().enabled() {
            assert!(render_section().is_none());
        }
    }

    #[test]
    fn section_lists_pipeline_counters_when_enabled() {
        fbox_telemetry::set_enabled(true);
        fbox_telemetry::global().counter("cube.cells_computed").add(3);
        let section = render_section().expect("enabled registry renders");
        assert!(section.contains("TELEMETRY"));
        assert!(section.contains("cube.cells_computed"));
        fbox_telemetry::set_enabled(false);
        fbox_telemetry::global().reset();
    }
}
