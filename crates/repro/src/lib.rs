//! # fbox-repro — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) from
//! the simulators, through the F-Box, with no hard-coded outputs:
//!
//! - [`calibrate`]: the bias/personalization profiles (the *inputs* of the
//!   reproduction — tuned until the paper's orderings emerge, never the
//!   outputs themselves);
//! - [`scenario`]: simulator → crawl/study → F-Box assembly;
//! - [`experiments`]: one module per table/figure group, each returning a
//!   rendered report plus named shape checks;
//! - [`paper`]: the paper's reported values, verbatim, for side-by-side
//!   display;
//! - [`tables`], [`util`]: rendering and id helpers.
//!
//! Binaries: `repro-taskrabbit-quant`, `repro-taskrabbit-compare`,
//! `repro-google-quant`, `repro-google-compare`, `repro-figures`, and
//! `repro-all`. See EXPERIMENTS.md for recorded paper-vs-measured results.

pub mod calibrate;
pub mod experiments;
pub mod metrics;
pub mod paper;
pub mod scenario;
pub mod tables;
pub mod util;
