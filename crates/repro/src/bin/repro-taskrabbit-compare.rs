//! Regenerates Tables 12–15.
fn main() {
    let s = fbox_repro::scenario::taskrabbit();
    let r = fbox_repro::experiments::taskrabbit_compare::run(&s);
    print!("{}", r.report);
}
