//! Regenerates Tables 12–15.
fn main() {
    fbox_repro::metrics::init_from_args();
    let s = fbox_repro::scenario::taskrabbit();
    let r = fbox_repro::experiments::taskrabbit_compare::run(&s);
    print!("{}", r.report);
    fbox_repro::metrics::print_section();
}
