//! Regenerates Tables 8–11 and the §5.2.1 narrative results.
fn main() {
    fbox_repro::metrics::init_from_args();
    let cube = fbox_repro::metrics::resolve_cube_path();
    let s = fbox_repro::scenario::taskrabbit_cached(cube.as_deref());
    let r = fbox_repro::experiments::taskrabbit_quant::run(&s);
    print!("{}", r.report);
    fbox_repro::metrics::print_section();
}
