//! Regenerates the worked examples (Figures 1–5) and setup statistics
//! (Figures 7–8, Tables 6–7).
fn main() {
    fbox_repro::metrics::init_from_args();
    let cube = fbox_repro::metrics::resolve_cube_path();
    let s = fbox_repro::scenario::taskrabbit_cached(cube.as_deref());
    let r = fbox_repro::experiments::figures::run(&s);
    print!("{}", r.report);
    fbox_repro::metrics::print_section();
}
