//! Sweeps every (measure × intervention × bias profile) mitigation cell
//! on both platforms and reports pre/post unfairness plus NDCG cost.
//! `--json` emits the grid as machine-readable JSON instead of tables.
fn main() {
    fbox_repro::metrics::init_from_args();
    let cells = fbox_repro::experiments::mitigate::grid();
    if std::env::args().any(|a| a == "--json") {
        print!("{}", fbox_repro::experiments::mitigate::to_json(&cells));
    } else {
        let r = fbox_repro::experiments::mitigate::report(&cells);
        print!("{}", r.report);
    }
    fbox_repro::metrics::print_section();
}
