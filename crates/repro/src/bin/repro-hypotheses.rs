//! Regenerates the paper's §6 workflow: hypotheses generated on the
//! TaskRabbit study, verified against the Google study.
fn main() {
    fbox_repro::metrics::init_from_args();
    let tr = fbox_repro::scenario::taskrabbit();
    let gg = fbox_repro::scenario::google();
    let r = fbox_repro::experiments::hypotheses::run(&tr, &gg);
    print!("{}", r.report);
    fbox_repro::metrics::print_section();
}
