//! Regenerates the paper's §6 workflow: hypotheses generated on the
//! TaskRabbit study, verified against the Google study.
fn main() {
    fbox_repro::metrics::init_from_args();
    let cube = fbox_repro::metrics::resolve_cube_path();
    let tr = fbox_repro::scenario::taskrabbit_cached(
        fbox_repro::scenario::cube_variant(cube.as_deref(), "taskrabbit").as_deref(),
    );
    let gg = fbox_repro::scenario::google_cached(
        fbox_repro::scenario::cube_variant(cube.as_deref(), "google").as_deref(),
    );
    let r = fbox_repro::experiments::hypotheses::run(&tr, &gg);
    print!("{}", r.report);
    fbox_repro::metrics::print_section();
}
