//! Runs every experiment and prints one combined report with a final
//! shape-check tally — the entry point behind EXPERIMENTS.md.
fn main() {
    fbox_repro::metrics::init_from_args();
    let cube = fbox_repro::metrics::resolve_cube_path();
    let tr = fbox_repro::scenario::taskrabbit_cached(
        fbox_repro::scenario::cube_variant(cube.as_deref(), "taskrabbit").as_deref(),
    );
    let gg = fbox_repro::scenario::google_cached(
        fbox_repro::scenario::cube_variant(cube.as_deref(), "google").as_deref(),
    );
    let sections = [
        ("FIGURES & SETUP", fbox_repro::experiments::figures::run(&tr)),
        (
            "TASKRABBIT QUANTIFICATION (Tables 8–11)",
            fbox_repro::experiments::taskrabbit_quant::run(&tr),
        ),
        (
            "TASKRABBIT COMPARISON (Tables 12–15)",
            fbox_repro::experiments::taskrabbit_compare::run(&tr),
        ),
        ("GOOGLE QUANTIFICATION (§5.2.2)", fbox_repro::experiments::google_quant::run(&gg)),
        ("GOOGLE COMPARISON (Tables 16–21)", fbox_repro::experiments::google_compare::run(&gg)),
        ("CROSS-PLATFORM HYPOTHESES (§6)", fbox_repro::experiments::hypotheses::run(&tr, &gg)),
    ];
    let mut pass = 0usize;
    let mut total = 0usize;
    for (title, r) in &sections {
        println!("======================================================================");
        println!("{title}");
        println!("======================================================================");
        print!("{}", r.report);
        pass += r.checks.iter().filter(|(_, ok)| *ok).count();
        total += r.checks.len();
    }
    println!("======================================================================");
    println!("SHAPE CHECKS PASSED: {pass}/{total}");
    fbox_repro::metrics::print_section();
}
