//! Regenerates Tables 16–21.
fn main() {
    fbox_repro::metrics::init_from_args();
    let s = fbox_repro::scenario::google();
    let r = fbox_repro::experiments::google_compare::run(&s);
    print!("{}", r.report);
    fbox_repro::metrics::print_section();
}
