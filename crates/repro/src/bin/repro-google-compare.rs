//! Regenerates Tables 16–21.
fn main() {
    fbox_repro::metrics::init_from_args();
    let cube = fbox_repro::metrics::resolve_cube_path();
    let s = fbox_repro::scenario::google_cached(cube.as_deref());
    let r = fbox_repro::experiments::google_compare::run(&s);
    print!("{}", r.report);
    fbox_repro::metrics::print_section();
}
