//! Regenerates Tables 16–21.
fn main() {
    let s = fbox_repro::scenario::google();
    let r = fbox_repro::experiments::google_compare::run(&s);
    print!("{}", r.report);
}
