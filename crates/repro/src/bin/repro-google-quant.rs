//! Regenerates the §5.2.2 Google quantification results.
fn main() {
    fbox_repro::metrics::init_from_args();
    let s = fbox_repro::scenario::google();
    let r = fbox_repro::experiments::google_quant::run(&s);
    print!("{}", r.report);
    fbox_repro::metrics::print_section();
}
