//! Regenerates the §5.2.2 Google quantification results.
fn main() {
    let s = fbox_repro::scenario::google();
    let r = fbox_repro::experiments::google_quant::run(&s);
    print!("{}", r.report);
}
