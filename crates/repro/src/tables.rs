//! Plain-text table rendering for the experiment runners.
//!
//! Every runner prints paper-reported values next to measured ones, so a
//! reader can check the *shape* claims (orderings, reversals) at a glance.

/// Renders a two-column ranking comparison: the paper's ordering (with its
/// reported values) next to the measured ordering.
pub fn ranking_table(title: &str, paper: &[(&str, f64)], measured: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<4} {:<34} {:>7}   {:<34} {:>7}\n",
        "#", "paper", "value", "measured", "value"
    ));
    let rows = paper.len().max(measured.len());
    for i in 0..rows {
        let (pn, pv) =
            paper.get(i).map(|&(n, v)| (n, format!("{v:.3}"))).unwrap_or(("", String::new()));
        let (mn, mv) = measured
            .get(i)
            .map(|(n, v)| (n.as_str(), format!("{v:.3}")))
            .unwrap_or(("", String::new()));
        out.push_str(&format!("{:<4} {pn:<34} {pv:>7}   {mn:<34} {mv:>7}\n", i + 1));
    }
    out
}

/// Renders a comparison table (Problem 2): overall row plus breakdown
/// rows, flagging reversals.
pub fn comparison_table(
    title: &str,
    label1: &str,
    label2: &str,
    overall: (f64, f64),
    rows: &[(String, f64, f64, bool)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!("{:<34} {:>10} {:>10}   {}\n", "breakdown", label1, label2, "reversed?"));
    out.push_str(&format!("{:<34} {:>10.3} {:>10.3}\n", "All", overall.0, overall.1));
    for (name, d1, d2, reversed) in rows {
        out.push_str(&format!(
            "{name:<34} {d1:>10.3} {d2:>10.3}   {}\n",
            if *reversed { "<-- reversed" } else { "" }
        ));
    }
    out
}

/// A one-line PASS/MISS verdict used in the runners' shape-check section.
pub fn verdict(name: &str, ok: bool) -> String {
    format!("  [{}] {name}\n", if ok { "PASS" } else { "MISS" })
}

/// How well a measured ordering agrees with the paper's, as the fraction
/// of concordant pairs (Kendall-style agreement between two rankings of
/// the same names). Names present in only one list are ignored.
pub fn ordering_agreement(paper: &[&str], measured: &[String]) -> f64 {
    let common: Vec<&str> =
        paper.iter().copied().filter(|p| measured.iter().any(|m| m == p)).collect();
    if common.len() < 2 {
        return 1.0;
    }
    let pos = |name: &str| measured.iter().position(|m| m == name).expect("filtered");
    let mut concordant = 0usize;
    let mut total = 0usize;
    for i in 0..common.len() {
        for j in (i + 1)..common.len() {
            total += 1;
            if pos(common[i]) < pos(common[j]) {
                concordant += 1;
            }
        }
    }
    if total == 0 {
        return 1.0;
    }
    concordant as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_table_renders_both_sides() {
        let t = ranking_table(
            "Table X",
            &[("Asian Female", 0.876), ("Asian Male", 0.755)],
            &[("Asian Female".to_string(), 0.41), ("Asian Male".to_string(), 0.34)],
        );
        assert!(t.contains("Table X"));
        assert!(t.contains("0.876"));
        assert!(t.contains("0.410"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn ranking_table_handles_unequal_lengths() {
        let t = ranking_table("T", &[("a", 1.0)], &[]);
        assert!(t.contains('a'));
    }

    #[test]
    fn comparison_table_flags_reversals() {
        let t = comparison_table(
            "Table 12",
            "Males",
            "Females",
            (0.117, 0.299),
            &[("Chicago, IL".to_string(), 0.062, 0.062, true)],
        );
        assert!(t.contains("<-- reversed"));
        assert!(t.contains("All"));
    }

    #[test]
    fn ordering_agreement_bounds() {
        let measured: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(ordering_agreement(&["a", "b", "c"], &measured), 1.0);
        assert_eq!(ordering_agreement(&["c", "b", "a"], &measured), 0.0);
        let half = ordering_agreement(&["b", "a", "c"], &measured);
        assert!((half - 2.0 / 3.0).abs() < 1e-12);
        // Disjoint names → trivially 1.
        assert_eq!(ordering_agreement(&["x", "y"], &measured), 1.0);
    }
}
