//! Google job search fairness quantification (paper §5.2.2).
//!
//! The paper reports extremes rather than full tables here: White Females
//! most / Black Males least discriminated; Washington DC fairest / London
//! unfairest; Yard Work most / Furniture Assembly least unfair queries —
//! under both Kendall Tau and Jaccard.

use super::taskrabbit_quant::ExperimentResult;
use crate::scenario::GoogleScenario;
use crate::tables::ranking_table;
use crate::{paper, util};
use fbox_core::algo::{RankOrder, Restriction};
use fbox_core::FBox;

/// Runs the quantification experiment for both measures.
pub fn run(s: &GoogleScenario) -> ExperimentResult {
    let mut report = String::new();
    let mut checks = Vec::new();

    for (name, fb) in [("Kendall Tau", &s.kendall), ("Jaccard", &s.jaccard)] {
        run_measure(name, fb, &mut report, &mut checks);
    }

    ExperimentResult { report, checks }.finish()
}

fn run_measure(measure: &str, fb: &FBox, report: &mut String, checks: &mut Vec<(String, bool)>) {
    // Groups: full ranking, extremes asserted.
    let groups = util::group_ranking(fb);
    report.push_str(&ranking_table(
        &format!("§5.2.2 ({measure}): groups, unfairest first (paper reports only the extremes)"),
        &[
            (paper::GOOGLE_MOST_UNFAIR_GROUP, f64::NAN),
            (paper::GOOGLE_LEAST_UNFAIR_GROUP, f64::NAN),
        ],
        &groups,
    ));
    // The paper's extremes are over the six *full* demographic groups (its
    // study recruits participants per full group).
    let fulls: Vec<&(String, f64)> = groups.iter().filter(|(n, _)| n.contains(' ')).collect();
    checks.push((
        format!("§5.2.2 {measure}: White Females are the most discriminated full group"),
        fulls.first().map(|(n, _)| n.as_str()) == Some(paper::GOOGLE_MOST_UNFAIR_GROUP),
    ));
    checks.push((
        format!("§5.2.2 {measure}: Black Males are the least discriminated full group"),
        fulls.last().map(|(n, _)| n.as_str()) == Some(paper::GOOGLE_LEAST_UNFAIR_GROUP),
    ));

    // Locations.
    let locations = fb.top_k_locations(
        fb.universe().n_locations(),
        RankOrder::MostUnfair,
        &Restriction::none(),
    );
    report.push_str(&ranking_table(
        &format!("§5.2.2 ({measure}): locations, unfairest first"),
        &[
            (paper::GOOGLE_UNFAIREST_LOCATION, f64::NAN),
            ("…", f64::NAN),
            (paper::GOOGLE_FAIREST_LOCATION, f64::NAN),
        ],
        &locations,
    ));
    checks.push((
        format!("§5.2.2 {measure}: London, UK is the unfairest location"),
        locations.first().map(|(n, _)| n.as_str()) == Some(paper::GOOGLE_UNFAIREST_LOCATION),
    ));
    checks.push((
        format!("§5.2.2 {measure}: Washington, DC is the fairest location"),
        locations.last().map(|(n, _)| n.as_str()) == Some(paper::GOOGLE_FAIREST_LOCATION),
    ));

    // Query categories.
    let categories: Vec<&str> = fbox_search::QUERIES
        .iter()
        .map(|&(_, c)| c)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let ranked = util::category_ranking(fb, &categories);
    report.push_str(&ranking_table(
        &format!("§5.2.2 ({measure}): query categories, unfairest first"),
        &[
            (paper::GOOGLE_MOST_UNFAIR_CATEGORY, f64::NAN),
            ("…", f64::NAN),
            (paper::GOOGLE_FAIREST_CATEGORY, f64::NAN),
        ],
        &ranked,
    ));
    checks.push((
        format!("§5.2.2 {measure}: Yard Work is the most unfair query category"),
        ranked.first().map(|(n, _)| n.as_str()) == Some(paper::GOOGLE_MOST_UNFAIR_CATEGORY),
    ));
    checks.push((
        format!("§5.2.2 {measure}: Furniture Assembly is the fairest query category"),
        ranked.last().map(|(n, _)| n.as_str()) == Some(paper::GOOGLE_FAIREST_CATEGORY),
    ));
    report.push('\n');
}
