//! The paper's worked examples and setup figures: Figures 1–5 (toy
//! computations of §3), Figures 7–8 (tasker demographics), Table 6
//! (search-term expansion) and Table 7 (study coverage).

use super::taskrabbit_quant::ExperimentResult;
use crate::paper;
use crate::scenario::TaskRabbitScenario;
use fbox_core::model::{LocationId, QueryId};
use fbox_core::observations::MarketObservations;
use fbox_core::paper_toy;
use fbox_core::unfairness::{
    market_cell_unfairness, search_cell_unfairness, MarketMeasure, SearchMeasure,
};
use fbox_core::FBox;

/// Runs all figure/setup reproductions. `taskrabbit` supplies the crawl
/// stats behind Figures 7–8.
pub fn run(taskrabbit: &TaskRabbitScenario) -> ExperimentResult {
    let mut report = String::new();
    let mut checks = Vec::new();

    // ---- Figures 1/3: search-engine toy (Table 1) -------------------------
    let (universe, lists) = paper_toy::table1_lists();
    let bf = universe.group_id_by_text("gender=Female & ethnicity=Black").expect("toy group");
    let kendall = search_cell_unfairness(&universe, &lists, bf, SearchMeasure::kendall())
        .expect("toy data complete");
    let jaccard = search_cell_unfairness(&universe, &lists, bf, SearchMeasure::JaccardDistance)
        .expect("toy data complete");
    report.push_str("## Figures 1/3: Black Females on the toy search engine (Table 1)\n");
    report.push_str(&format!(
        "Kendall-Tau unfairness: {kendall:.3}  (paper's Figure 1 illustrates the averaging with 0.50)\n"
    ));
    report.push_str(&format!(
        "Jaccard unfairness:     {jaccard:.3}  (paper's Figure 3 illustrates one pair with 0.65)\n"
    ));
    report.push_str(
        "Note: the figures' numbers are illustrative — they are not derivable from Table 1's lists;\n\
         the measured values above are the exact Eq. 1 results on Table 1.\n\n",
    );
    checks.push((
        "Figures 1/3: toy unfairness values are in (0, 1)".into(),
        kendall > 0.0 && kendall < 1.0 && jaccard > 0.0 && jaccard < 1.0,
    ));

    // ---- Figures 2/4: EMD toy (Tables 2–3) --------------------------------
    let (universe, ranking) = paper_toy::table3_ranking();
    let bf = universe.group_id_by_text("gender=Female & ethnicity=Black").expect("toy group");
    let emd = market_cell_unfairness(&universe, &ranking, bf, MarketMeasure::emd())
        .expect("toy data complete");
    report.push_str("## Figures 2/4: Black Females on the toy marketplace (Tables 2–3)\n");
    report.push_str(&format!(
        "EMD unfairness: {emd:.3}  (paper's Figure 4 illustrates the averaging with 0.50)\n\n"
    ));
    checks.push(("Figures 2/4: toy EMD unfairness is in (0, 1)".into(), emd > 0.0 && emd < 1.0));

    // ---- Figure 5: exposure toy — the paper's exact numbers ---------------
    let exposure = market_cell_unfairness(&universe, &ranking, bf, MarketMeasure::exposure())
        .expect("toy data complete");
    report.push_str("## Figure 5: exposure unfairness of Black Females (Tables 2–3)\n");
    report.push_str(&format!(
        "Measured: {exposure:.3}; paper: |0.94/(0.94+4.0) − 0.5/(0.5+2.9)| ≈ 0.04\n\n"
    ));
    checks.push((
        "Figure 5: exposure unfairness matches the paper's 0.04 (±0.005)".into(),
        (exposure - 0.04).abs() < 0.005,
    ));

    // ---- Figures 7–8: tasker demographics ---------------------------------
    let stats = &taskrabbit.stats;
    report.push_str("## Figures 7–8: tasker demographics\n");
    report.push_str(&format!(
        "Workers: {} (paper: {}); male share {:.1}% (paper ≈ {:.0}%); white share {:.1}% (paper ≈ {:.0}%)\n",
        stats.n_workers,
        paper::N_TASKERS,
        100.0 * stats.male_share,
        100.0 * paper::FIG7_MALE_SHARE,
        100.0 * stats.ethnicity_shares[2],
        100.0 * paper::FIG8_WHITE_SHARE,
    ));
    report.push_str(&format!(
        "Crawled queries: {} (paper: {})\n\n",
        stats.n_queries,
        paper::N_CRAWL_QUERIES
    ));
    checks.push((
        "§5.1.1: exactly 5,361 crawl queries".into(),
        stats.n_queries == paper::N_CRAWL_QUERIES,
    ));
    checks.push(("§5.1.1: exactly 3,311 taskers".into(), stats.n_workers == paper::N_TASKERS));
    checks.push((
        "Figure 7: male share within 3 points of 72%".into(),
        (stats.male_share - paper::FIG7_MALE_SHARE).abs() < 0.03,
    ));
    checks.push((
        "Figure 8: white share within 3 points of 66%".into(),
        (stats.ethnicity_shares[2] - paper::FIG8_WHITE_SHARE).abs() < 0.03,
    ));

    // ---- Table 6: search-term expansion ------------------------------------
    report.push_str("## Table 6: query → equivalent Google search terms (sample)\n");
    for (query, location) in [("run errand", "London, UK"), ("yard work", "New York City, NY")] {
        let terms = fbox_search::terms::formulations(query, location);
        report.push_str(&format!("{query} @ {location}:\n"));
        for t in &terms {
            report.push_str(&format!("  - {t}\n"));
        }
    }
    report.push('\n');
    checks.push((
        "Table 6: five equivalent formulations per query".into(),
        fbox_search::terms::N_FORMULATIONS == 5,
    ));

    // ---- Table 7: study coverage -------------------------------------------
    report.push_str("## Table 7: number of locations per job in the paper's Google study\n");
    let mut total = 0usize;
    for &(job, n) in fbox_search::study::paper_coverage() {
        report.push_str(&format!("  {job:<18} {n}\n"));
        total += n;
    }
    report.push_str(&format!(
        "  (sum = {total}; our simulated study instead runs every query at all {} locations so the\n   unfairness cube is complete — see DESIGN.md)\n\n",
        fbox_search::LOCATIONS.len()
    ));
    checks.push(("Table 7: coverage sums to the 10 study locations".into(), total == 10));

    ExperimentResult { report, checks }.finish()
}

/// Builds the toy marketplace wrapped in a full F-Box (used by the
/// quickstart example and tests) — Table 3's ranking as a one-cell study.
pub fn toy_fbox() -> FBox {
    let (mut universe, ranking) = paper_toy::table3_ranking();
    let q = universe.add_query("Home Cleaning", Some("General Cleaning"));
    let l = universe.add_location("San Francisco, CA", Some("West Coast"));
    let mut obs = MarketObservations::new();
    obs.insert(q, l, ranking);
    let _ = (QueryId(0), LocationId(0));
    FBox::from_market(universe, &obs, MarketMeasure::exposure())
}
