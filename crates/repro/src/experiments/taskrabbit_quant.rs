//! TaskRabbit fairness quantification (paper §5.2.1): Tables 8–11 plus
//! the per-job/per-location narrative results.

use crate::scenario::TaskRabbitScenario;
use crate::tables::{ordering_agreement, ranking_table, verdict};
use crate::{paper, util};
use fbox_core::algo::{RankOrder, Restriction};
use fbox_core::index::Dimension;
use fbox_core::FBox;

/// Rendered report plus named shape checks (true = the paper's claim
/// reproduces).
pub struct ExperimentResult {
    /// Human-readable report (tables + verdicts).
    pub report: String,
    /// Shape checks: `(claim, reproduced?)`.
    pub checks: Vec<(String, bool)>,
}

impl ExperimentResult {
    /// Appends the verdict block to the report.
    pub fn finish(mut self) -> Self {
        self.report.push_str("### Shape checks\n");
        let checks = std::mem::take(&mut self.checks);
        for (name, ok) in &checks {
            self.report.push_str(&verdict(name, *ok));
        }
        self.checks = checks;
        self
    }
}

/// Runs the full quantification experiment.
pub fn run(s: &TaskRabbitScenario) -> ExperimentResult {
    let mut report = String::new();
    let mut checks = Vec::new();

    // ---- Table 8: groups ------------------------------------------------
    let emd_groups = util::group_ranking(&s.emd);
    let exp_groups = util::group_ranking(&s.exposure);
    report.push_str(&ranking_table(
        "Table 8 (EMD): groups, unfairest first",
        &paper::TABLE8_EMD,
        &emd_groups,
    ));
    report.push_str(&ranking_table(
        "Table 8 (Exposure): groups, unfairest first",
        &paper::TABLE8_EXPOSURE,
        &exp_groups,
    ));
    let top3: Vec<&str> = emd_groups.iter().take(3).map(|(n, _)| n.as_str()).collect();
    checks.push((
        "Table 8 EMD: Asian Female, Asian Male, Black Female are the three most unfair groups"
            .into(),
        top3 == ["Asian Female", "Asian Male", "Black Female"],
    ));
    checks.push((
        "Table 8 Exposure: Asian Female is the most unfair group".into(),
        exp_groups.first().map(|(n, _)| n.as_str()) == Some("Asian Female"),
    ));
    let male = emd_groups.iter().find(|(n, _)| n == "Male").expect("male present").1;
    let female = emd_groups.iter().find(|(n, _)| n == "Female").expect("female present").1;
    checks.push((
        "Table 8 EMD: Male and Female have identical values (structural, §3.3.1)".into(),
        (male - female).abs() < 1e-12,
    ));
    let names: Vec<String> = emd_groups.iter().map(|(n, _)| n.clone()).collect();
    let paper_names: Vec<&str> = paper::TABLE8_EMD.iter().map(|&(n, _)| n).collect();
    report.push_str(&format!(
        "Ordering agreement with the paper (Table 8 EMD): {:.0}%\n\n",
        100.0 * ordering_agreement(&paper_names, &names)
    ));

    // ---- Table 9: job categories ----------------------------------------
    let categories: Vec<&str> = paper::TABLE9_EMD.iter().map(|&(n, _)| n).collect();
    let emd_cats = util::category_ranking(&s.emd, &categories);
    let exp_cats = util::category_ranking(&s.exposure, &categories);
    report.push_str(&ranking_table("Table 9 (EMD): job categories", &paper::TABLE9_EMD, &emd_cats));
    report.push_str(&ranking_table(
        "Table 9 (Exposure): job categories",
        &paper::TABLE9_EXPOSURE,
        &exp_cats,
    ));
    let top2: Vec<&str> = emd_cats.iter().take(3).map(|(n, _)| n.as_str()).collect();
    checks.push((
        "Table 9 EMD: Handyman and Yard Work are among the three most unfair categories".into(),
        top2.contains(&"Handyman") && top2.contains(&"Yard Work"),
    ));
    let bottom: Vec<&str> = emd_cats.iter().rev().take(3).map(|(n, _)| n.as_str()).collect();
    checks.push((
        "Table 9 EMD: Delivery and Run Errands are among the three fairest categories".into(),
        bottom.contains(&"Delivery") && bottom.contains(&"Run Errands"),
    ));

    // ---- Tables 10–11: locations -----------------------------------------
    let unfairest = s.emd.top_k_locations(10, RankOrder::MostUnfair, &Restriction::none());
    let fairest = s.emd.top_k_locations(10, RankOrder::LeastUnfair, &Restriction::none());
    report.push_str(&ranking_table(
        "Table 10 (EMD): ten unfairest cities",
        &paper::TABLE10_EMD,
        &unfairest,
    ));
    report.push_str(&ranking_table(
        "Table 11 (EMD): ten fairest cities",
        &paper::TABLE11_EMD,
        &fairest,
    ));
    let unfair_names: Vec<&str> = unfairest.iter().map(|(n, _)| n.as_str()).collect();
    checks.push((
        "Table 10: Birmingham UK, Oklahoma City and Bristol UK are among the ten unfairest cities"
            .into(),
        ["Birmingham, UK", "Oklahoma City, OK", "Bristol, UK"]
            .iter()
            .all(|c| unfair_names.contains(c)),
    ));
    let fair_names: Vec<&str> = fairest.iter().map(|(n, _)| n.as_str()).collect();
    checks.push((
        "Table 11: San Francisco and Chicago are among the ten fairest cities".into(),
        ["San Francisco, CA", "Chicago, IL"].iter().all(|c| fair_names.contains(c)),
    ));
    checks.push((
        "Table 11: San Francisco or Chicago is the single fairest city".into(),
        matches!(fair_names.first(), Some(&"San Francisco, CA") | Some(&"Chicago, IL")),
    ));

    // ---- §5.2.1 narrative: extremes per job / per location ---------------
    // Reported, not asserted: at single-(job, city) granularity a cell
    // averages only 12 sub-queries over one city's worker pool, and the
    // most-biased (city, category) combinations saturate the EMD — the
    // extreme *names* are below the simulated crawl's resolution even
    // though the coarser Tables 8–11 orderings are stable. EXPERIMENTS.md
    // discusses this limit.
    report.push_str(
        "## §5.2.1 narrative: per-job and per-location extremes (reported, not asserted)\n",
    );
    for job in ["Handyman", "Run Errands"] {
        let (fairest_loc, top_unfair) = job_location_extremes(&s.emd, job);
        report.push_str(&format!(
            "{job}: fairest location = {fairest_loc}, three unfairest = {top_unfair:?} (EMD; paper names Birmingham, UK)\n"
        ));
    }
    for city in ["Birmingham, UK", "Detroit, MI", "Nashville, TN"] {
        let (fairest_job, unfairest_job) = location_job_extremes(&s.emd, city);
        report.push_str(&format!(
            "{city}: fairest category = {fairest_job}, unfairest = {unfairest_job} (EMD; paper: Delivery/Furniture Assembly fairest)\n"
        ));
    }
    report.push('\n');

    ExperimentResult { report, checks }.finish()
}

/// The fairest location and the three unfairest locations for one job
/// category.
fn job_location_extremes(fb: &FBox, category: &str) -> (String, Vec<String>) {
    let u = fb.universe();
    let qs: Vec<u32> = u.queries_in_category(category).iter().map(|q| q.0).collect();
    let restrict = Restriction { queries: Some(qs), ..Default::default() };
    let fairest = fb.top_k_locations(1, RankOrder::LeastUnfair, &restrict);
    let unfairest = fb.top_k_locations(3, RankOrder::MostUnfair, &restrict);
    (fairest[0].0.clone(), unfairest.into_iter().map(|(n, _)| n).collect())
}

/// (fairest, unfairest) category names for one city.
fn location_job_extremes(fb: &FBox, city: &str) -> (String, String) {
    let u = fb.universe();
    let l = u.location_id(city).expect("known city");
    let restrict = Restriction { locations: Some(vec![l.0]), ..Default::default() };
    let _ = &restrict;
    let categories: Vec<&str> = paper::TABLE9_EMD.iter().map(|&(n, _)| n).collect();
    let mut ranked: Vec<(String, f64)> = categories
        .iter()
        .map(|&c| {
            let qs: Vec<u32> = u.queries_in_category(c).iter().map(|q| q.0).collect();
            let r = fb.top_k(
                Dimension::Query,
                qs.len(),
                RankOrder::MostUnfair,
                &Restriction {
                    queries: Some(qs),
                    locations: Some(vec![l.0]),
                    ..Default::default()
                },
            );
            let avg = r.entries.iter().map(|e| e.1).sum::<f64>() / r.entries.len().max(1) as f64;
            (c.to_string(), avg)
        })
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    (ranked.first().expect("categories").0.clone(), ranked.last().expect("categories").0.clone())
}
