//! Mitigation: the fairness loop closed.
//!
//! The paper quantifies unfairness; this experiment *acts* on it. Every
//! intervention in [`fbox_mitigate`] re-ranks each platform's
//! observations, the re-ranked lists flow back through
//! [`FBox::from_market`] / [`FBox::from_search`], and the same measures
//! that diagnosed the bias report the pre/post delta — per
//! (measure × intervention × bias profile) — plus the NDCG utility each
//! intervention paid for it.

use crate::calibrate;
use crate::experiments::ExperimentResult;
use fbox_core::model::Universe;
use fbox_core::observations::{MarketObservations, SearchObservations};
use fbox_core::unfairness::{MarketMeasure, SearchMeasure};
use fbox_core::FBox;
use fbox_marketplace::{
    attach_platform_scores, crawl, BiasProfile, Marketplace, Population, ScoringModel,
};
use fbox_mitigate::{rerank_market, rerank_search, Intervention, RerankConfig};
use fbox_search::{
    run_study, ExtensionRunner, NoiseModel, PersonalizationProfile, SearchEngine, StudyDesign,
};

/// One point of the mitigation grid: a (platform, bias profile, measure,
/// intervention) combination with its pre/post mean unfairness and the
/// NDCG the intervention spent.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationCell {
    /// `"taskrabbit"` or `"google"`.
    pub platform: &'static str,
    /// Bias-profile label (`"neutral"`, `"paper"`, `"amplified"`).
    pub profile: &'static str,
    /// Measure label (`"emd"`, `"exposure"`, `"kendall"`, `"jaccard"`).
    pub measure: &'static str,
    /// The intervention applied.
    pub intervention: Intervention,
    /// Mean cube unfairness before the intervention.
    pub pre: f64,
    /// Mean cube unfairness after re-ranking.
    pub post: f64,
    /// Mean NDCG given up by the re-ranking (baseline − re-ranked).
    pub ndcg_loss: f64,
}

impl MitigationCell {
    /// Signed unfairness change; negative is an improvement.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.post - self.pre
    }
}

/// Mean unfairness over every populated cube cell.
fn cube_mean(fb: &FBox) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (_, _, _, v) in fb.cube().cells() {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs the full intervention sweep over one marketplace observation set:
/// for each intervention, re-rank once, rebuild the F-Box under both
/// market measures, and report the mean-unfairness deltas. Deterministic
/// at any `FBOX_THREADS` (the re-ranker and both cube builds are).
#[must_use = "the grid cells are the experiment's output"]
pub fn market_cells(
    profile: &'static str,
    universe: &Universe,
    observations: &MarketObservations,
    config: &RerankConfig,
) -> Vec<MitigationCell> {
    let measures = [("emd", MarketMeasure::emd()), ("exposure", MarketMeasure::exposure())];
    let pre: Vec<f64> = measures
        .iter()
        .map(|(_, m)| cube_mean(&FBox::from_market(universe.clone(), observations, *m)))
        .collect();
    let mut cells = Vec::new();
    for intervention in Intervention::ALL {
        let r = rerank_market(universe, observations, intervention, config);
        for ((label, m), &pre) in measures.iter().zip(&pre) {
            let post = cube_mean(&FBox::from_market(universe.clone(), &r.observations, *m));
            cells.push(MitigationCell {
                platform: "taskrabbit",
                profile,
                measure: label,
                intervention,
                pre,
                post,
                ndcg_loss: r.stats.ndcg_loss(),
            });
        }
    }
    cells
}

/// The search-side counterpart of [`market_cells`]: Kendall-Tau and
/// Jaccard before/after each intervention.
#[must_use = "the grid cells are the experiment's output"]
pub fn search_cells(
    profile: &'static str,
    universe: &Universe,
    observations: &SearchObservations,
    config: &RerankConfig,
) -> Vec<MitigationCell> {
    let measures =
        [("kendall", SearchMeasure::kendall()), ("jaccard", SearchMeasure::JaccardDistance)];
    let pre: Vec<f64> = measures
        .iter()
        .map(|(_, m)| cube_mean(&FBox::from_search(universe.clone(), observations, *m)))
        .collect();
    let mut cells = Vec::new();
    for intervention in Intervention::ALL {
        let r = rerank_search(universe, observations, intervention, config);
        for ((label, m), &pre) in measures.iter().zip(&pre) {
            let post = cube_mean(&FBox::from_search(universe.clone(), &r.observations, *m));
            cells.push(MitigationCell {
                platform: "google",
                profile,
                measure: label,
                intervention,
                pre,
                post,
                ndcg_loss: r.stats.ndcg_loss(),
            });
        }
    }
    cells
}

/// TaskRabbit bias profiles spanning the grid's third axis: no bias at
/// all, the calibrated paper profile, and the paper profile with its
/// location amplification pushed toward saturation.
fn market_profiles() -> Vec<(&'static str, BiasProfile)> {
    let mut amplified = calibrate::taskrabbit_bias();
    amplified.default_location_amp = 0.55;
    vec![
        ("neutral", BiasProfile::neutral()),
        ("paper", calibrate::taskrabbit_bias()),
        ("amplified", amplified),
    ]
}

/// Google personalization profiles for the same axis. The amplified
/// variant scales `gamma` (the global personalization strength): the
/// per-query/per-location amp tables cover every study cell, so the
/// `default_*_amp` fields would be dead knobs here.
fn search_profiles() -> Vec<(&'static str, PersonalizationProfile)> {
    let mut amplified = calibrate::google_personalization();
    amplified.gamma *= 2.5;
    vec![
        ("neutral", PersonalizationProfile::uniform(0.0)),
        ("paper", calibrate::google_personalization()),
        ("amplified", amplified),
    ]
}

/// Builds every observation set and sweeps the full
/// (measure × intervention × bias profile) grid on both platforms.
#[must_use = "the grid cells are the experiment's output"]
pub fn grid() -> Vec<MitigationCell> {
    let _span = fbox_telemetry::span!("repro.mitigate_grid");
    let _trace = fbox_trace::span("repro.mitigate_grid");
    let config = RerankConfig::default();
    let mut cells = Vec::new();
    for (profile, bias) in market_profiles() {
        let population = Population::paper(calibrate::SEED);
        let market = Marketplace::new(population, ScoringModel::default(), bias, calibrate::SEED);
        let (universe, crawled, _stats) = crawl(&market);
        // Mitigation is a *platform* action: the platform re-ranks its own
        // results with its scores visible, so the measures judge the
        // intervened ranking against true relevance. A plain crawl's
        // rank-derived relevance would hide the bias the intervention is
        // supposed to fix (a buried group scores low on exposure *and* on
        // measured relevance at once).
        let observations = attach_platform_scores(&market, &universe, &crawled);
        cells.extend(market_cells(profile, &universe, &observations, &config));
    }
    for (profile, personalization) in search_profiles() {
        let engine = SearchEngine::new(personalization, NoiseModel::default(), calibrate::SEED);
        let design = StudyDesign { participants_per_group: 3, seed: calibrate::SEED };
        let (universe, observations, _stats) =
            run_study(&design, &engine, &ExtensionRunner::default());
        cells.extend(search_cells(profile, &universe, &observations, &config));
    }
    cells
}

/// Renders the grid as machine-readable JSON (an array of objects, one
/// per cell), for `repro-mitigate --json`.
#[must_use]
pub fn to_json(cells: &[MitigationCell]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"platform\": \"{}\", \"profile\": \"{}\", \"measure\": \"{}\", ",
                "\"intervention\": \"{}\", \"pre\": {:.6}, \"post\": {:.6}, ",
                "\"delta\": {:.6}, \"ndcg_loss\": {:.6}}}{}\n"
            ),
            c.platform,
            c.profile,
            c.measure,
            c.intervention.label(),
            c.pre,
            c.post,
            c.delta(),
            c.ndcg_loss,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

/// Renders the report and the shape checks from a computed grid.
#[must_use = "the rendered report is the experiment's output"]
pub fn report(cells: &[MitigationCell]) -> ExperimentResult {
    let mut out = String::new();
    let mut checks = Vec::new();

    let mut sections: Vec<(&'static str, &'static str)> = Vec::new();
    for c in cells {
        if !sections.contains(&(c.platform, c.profile)) {
            sections.push((c.platform, c.profile));
        }
    }
    for (platform, profile) in &sections {
        out.push_str(&format!("## Mitigation: {platform}, bias profile `{profile}`\n"));
        out.push_str(&format!(
            "{:<10} {:<14} {:>9} {:>9} {:>9} {:>10}\n",
            "measure", "intervention", "pre", "post", "delta", "ndcg-loss"
        ));
        for c in cells.iter().filter(|c| c.platform == *platform && c.profile == *profile) {
            out.push_str(&format!(
                "{:<10} {:<14} {:>9.4} {:>9.4} {:>+9.4} {:>10.4}\n",
                c.measure,
                c.intervention.label(),
                c.pre,
                c.post,
                c.delta(),
                c.ndcg_loss
            ));
        }
        out.push('\n');
    }

    let expected = sections.len() * 2 * Intervention::ALL.len();
    checks.push((
        format!(
            "grid is complete: {} (platform, profile) section(s) x 2 measures x {} interventions",
            sections.len(),
            Intervention::ALL.len()
        ),
        cells.len() == expected,
    ));

    let paper_improved = |platform: &str| {
        cells
            .iter()
            .filter(|c| c.platform == platform && c.profile == "paper")
            .any(|c| c.delta() < -1e-9)
    };
    checks.push((
        "TaskRabbit paper profile: at least one intervention strictly reduces mean unfairness"
            .into(),
        paper_improved("taskrabbit"),
    ));
    checks.push((
        "Google paper profile: at least one intervention strictly reduces mean unfairness".into(),
        paper_improved("google"),
    ));
    let exposure_opt_fixes_exposure = cells.iter().any(|c| {
        c.platform == "taskrabbit"
            && c.profile == "paper"
            && c.measure == "exposure"
            && c.intervention == Intervention::ExposureOptimal
            && c.delta() < -1e-9
    });
    checks.push((
        "exposure-optimal strictly reduces the exposure measure it optimizes (paper profile)"
            .into(),
        exposure_opt_fixes_exposure,
    ));
    // Re-ranked workers carry their relevance, and EMD depends only on
    // each group's relevance distribution — which a re-ordering cannot
    // change. Pinning the zero delta keeps the column honest: re-ranking
    // fixes exposure, not representation.
    let emd_invariant = cells.iter().filter(|c| c.measure == "emd").all(|c| c.delta().abs() < 1e-9);
    checks.push((
        "EMD is invariant under every re-ranking (representation is not position)".into(),
        emd_invariant,
    ));
    let worst_loss = cells.iter().map(|c| c.ndcg_loss).fold(f64::NEG_INFINITY, f64::max);
    checks.push((
        "utility: no intervention costs more than 0.35 mean NDCG anywhere on the grid".into(),
        worst_loss <= 0.35,
    ));

    ExperimentResult { report: out, checks }.finish()
}

/// Runs the whole experiment: grid, report, checks.
#[must_use = "the rendered report is the experiment's output"]
pub fn run() -> ExperimentResult {
    report(&grid())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbox_core::model::{Schema, ValueId};
    use fbox_core::observations::{MarketRanking, RankedWorker, UserList};

    /// A small synthetic market/search world — the full crawl is a
    /// release-binary workload, not a unit-test one.
    fn toy_world() -> (Universe, MarketObservations, SearchObservations) {
        let mut u = Universe::with_all_groups(Schema::gender_ethnicity());
        let qs: Vec<_> = (0..3).map(|i| u.add_query(format!("q{i}"), Some("cat"))).collect();
        let ls: Vec<_> = (0..2).map(|i| u.add_location(format!("l{i}"), None)).collect();
        let mut market = MarketObservations::new();
        let mut search = SearchObservations::new();
        for (qi, &q) in qs.iter().enumerate() {
            for (li, &l) in ls.iter().enumerate() {
                let n = 8 + qi + li;
                market.insert(
                    q,
                    l,
                    MarketRanking::new(
                        (0..n)
                            .map(|i| RankedWorker {
                                assignment: vec![
                                    ValueId(u16::from(i >= n / 2)),
                                    ValueId((i % 3) as u16),
                                ],
                                rank: i + 1,
                                score: None,
                            })
                            .collect(),
                    ),
                );
                for g in 0..4u16 {
                    search.push(
                        q,
                        l,
                        UserList {
                            assignment: vec![ValueId(g % 2), ValueId(g % 3)],
                            results: (0..6)
                                .map(|r| (qi * 100 + li * 10 + (r + g as usize) % 9) as u64)
                                .collect(),
                        },
                    );
                }
            }
        }
        (u, market, search)
    }

    #[test]
    fn toy_grid_covers_every_measure_and_intervention() {
        let (u, market, search) = toy_world();
        let config = RerankConfig::default();
        let mut cells = market_cells("toy", &u, &market, &config);
        cells.extend(search_cells("toy", &u, &search, &config));
        assert_eq!(cells.len(), 2 * 2 * Intervention::ALL.len());
        for c in &cells {
            assert!(c.pre.is_finite() && c.post.is_finite());
            assert!(c.pre >= 0.0 && c.post >= 0.0);
        }
        let r = report(&cells);
        assert!(r.report.contains("det-relaxed"));
        assert!(r.report.contains("exposure"));
        // The completeness check must pass on any well-formed grid.
        assert!(r.checks.iter().any(|(name, ok)| name.starts_with("grid is complete") && *ok));
    }

    #[test]
    fn grid_cells_are_thread_count_invariant() {
        // The acceptance bar: bit-identical pre/post/NDCG at
        // FBOX_THREADS in {1, 2, 8} — re-ranker and cube builds both.
        let (u, market, search) = toy_world();
        let config = RerankConfig::default();
        let run = || {
            let mut cells = market_cells("toy", &u, &market, &config);
            cells.extend(search_cells("toy", &u, &search, &config));
            cells
        };
        let one = fbox_par::with_threads(1, run);
        let two = fbox_par::with_threads(2, run);
        let eight = fbox_par::with_threads(8, run);
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let cells = vec![MitigationCell {
            platform: "taskrabbit",
            profile: "paper",
            measure: "emd",
            intervention: Intervention::FaStarIr,
            pre: 0.25,
            post: 0.2,
            ndcg_loss: 0.0125,
        }];
        let json = to_json(&cells);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"intervention\": \"fair\""));
        assert!(json.contains("\"delta\": -0.050000"));
        assert!(!json.contains(",\n]"), "no trailing comma");
    }
}
