//! TaskRabbit fairness comparison (paper §5.3.1): Tables 12–15.

use super::taskrabbit_quant::ExperimentResult;
use crate::scenario::TaskRabbitScenario;
use crate::tables::comparison_table;
use crate::{paper, util};
use fbox_core::algo::{compare, compare_sets, Entity, Restriction};
use fbox_core::index::Dimension;
use fbox_core::model::{GroupId, LocationId, QueryId};
use fbox_core::FBox;

/// Runs Tables 12–15.
pub fn run(s: &TaskRabbitScenario) -> ExperimentResult {
    let mut report = String::new();
    let mut checks = Vec::new();

    table12(&s.exposure, &mut report, &mut checks);
    table13_14(s, &mut report, &mut checks);
    table15(&s.emd, &mut report, &mut checks);

    ExperimentResult { report, checks }.finish()
}

/// Table 12: Males vs Females across cities, exposure. The comparison
/// pools the full gender × ethnicity groups per side (see the crate docs
/// on the two-group-partition symmetry of direct single-attribute
/// exposure).
fn table12(fb: &FBox, report: &mut String, checks: &mut Vec<(String, bool)>) {
    let u = fb.universe();
    let out = compare_sets(
        fb.indices(),
        Dimension::Group,
        &util::gender_full_ids(u, "Male"),
        &util::gender_full_ids(u, "Female"),
        Dimension::Location,
        None,
        &Restriction::none(),
    )
    .expect("data present");
    let rows: Vec<(String, f64, f64, bool)> = out
        .rows
        .iter()
        .filter(|r| r.reversed)
        .map(|r| (u.location(LocationId(r.entity)).name.clone(), r.d1, r.d2, r.reversed))
        .collect();
    report.push_str(&comparison_table(
        &format!(
            "Table 12 (Exposure): Males vs Females by city — paper overall ({:.3}, {:.3}), reversal cities listed",
            paper::TABLE12_OVERALL.0,
            paper::TABLE12_OVERALL.1
        ),
        "Males",
        "Females",
        (out.overall1, out.overall2),
        &rows,
    ));
    checks.push((
        "Table 12: overall, Females are treated less fairly than Males".into(),
        out.overall2 > out.overall1,
    ));
    let reversed_names: Vec<&str> = rows.iter().map(|(n, _, _, _)| n.as_str()).collect();
    let hits = paper::TABLE12_CITIES.iter().filter(|c| reversed_names.contains(c)).count();
    report.push_str(&format!(
        "Paper reversal cities reproduced: {hits}/{}\n\n",
        paper::TABLE12_CITIES.len()
    ));
    checks.push((
        "Table 12: at least two of the paper's reversal cities reproduce".into(),
        hits >= 2,
    ));
}

/// Tables 13–14: Lawn Mowing vs Event Decorating across ethnicities,
/// under EMD and exposure respectively.
fn table13_14(s: &TaskRabbitScenario, report: &mut String, checks: &mut Vec<(String, bool)>) {
    for (fb, table, paper_vals, paper_reversal, check_reversal) in [
        (&s.emd, "Table 13 (EMD)", paper::TABLE13, "White", true),
        (&s.exposure, "Table 14 (Exposure)", paper::TABLE14, "Black", false),
    ] {
        let u = fb.universe();
        let lm = u.query_id("Lawn Mowing").expect("query registered");
        let ed = u.query_id("Event Decorating").expect("query registered");
        let out = compare(
            fb.indices(),
            Entity::Query(lm),
            Entity::Query(ed),
            Dimension::Group,
            Some(&util::ethnicity_ids(u)),
            &Restriction::none(),
        )
        .expect("data present");
        let rows: Vec<(String, f64, f64, bool)> = out
            .rows
            .iter()
            .map(|r| (util::paper_group_name(u, GroupId(r.entity)), r.d1, r.d2, r.reversed))
            .collect();
        let ((p1, p2), _, _) = paper_vals;
        report.push_str(&comparison_table(
            &format!(
                "{table}: Lawn Mowing vs Event Decorating by ethnicity — paper overall ({p1:.3}, {p2:.3}), paper reversal: {paper_reversal}"
            ),
            "Lawn Mowing",
            "Event Decor.",
            (out.overall1, out.overall2),
            &rows,
        ));
        checks.push((
            format!("{table}: overall, Lawn Mowing is less fair than Event Decorating"),
            out.overall1 > out.overall2,
        ));
        if check_reversal {
            let reversed: Vec<&str> =
                rows.iter().filter(|(_, _, _, rev)| *rev).map(|(n, _, _, _)| n.as_str()).collect();
            checks.push((
                format!("{table}: exactly {{{paper_reversal}}} reverses"),
                reversed == [paper_reversal],
            ));
        } else {
            // Table 14's Black exposure reversal sits below this
            // simulator's exposure noise floor; report the row values
            // instead of asserting (see EXPERIMENTS.md).
            let black = rows.iter().find(|(n, _, _, _)| n == "Black");
            if let Some((_, d1, d2, rev)) = black {
                report.push_str(&format!(
                    "Black row: Lawn Mowing {d1:.3} vs Event Decorating {d2:.3} (reversed: {rev}; paper: reversed)\n"
                ));
            }
        }
        report.push('\n');
    }
}

/// Table 15: San Francisco Bay Area vs Chicago across General Cleaning
/// sub-queries, EMD.
fn table15(fb: &FBox, report: &mut String, checks: &mut Vec<(String, bool)>) {
    let u = fb.universe();
    let sf = u.location_id("San Francisco Bay Area, CA").expect("city registered");
    let chi = u.location_id("Chicago, IL").expect("city registered");
    let gc: Vec<u32> = u.queries_in_category("General Cleaning").iter().map(|q| q.0).collect();
    let out = compare(
        fb.indices(),
        Entity::Location(sf),
        Entity::Location(chi),
        Dimension::Query,
        Some(&gc),
        &Restriction::none(),
    )
    .expect("data present");
    let rows: Vec<(String, f64, f64, bool)> = out
        .rows
        .iter()
        .filter(|r| r.reversed)
        .map(|r| (u.query(QueryId(r.entity)).name.clone(), r.d1, r.d2, r.reversed))
        .collect();
    report.push_str(&comparison_table(
        &format!(
            "Table 15 (EMD): SF Bay Area vs Chicago over General Cleaning sub-queries — paper overall ({:.3}, {:.3})",
            paper::TABLE15_OVERALL.0,
            paper::TABLE15_OVERALL.1
        ),
        "SF Bay Area",
        "Chicago",
        (out.overall1, out.overall2),
        &rows,
    ));
    checks.push((
        "Table 15: overall, the Bay Area is fairer than Chicago for General Cleaning".into(),
        out.overall1 < out.overall2,
    ));
    let reversed_names: Vec<&str> = rows.iter().map(|(n, _, _, _)| n.as_str()).collect();
    checks.push((
        "Table 15: all three organizing sub-queries reverse".into(),
        paper::TABLE15_QUERIES.iter().all(|q| reversed_names.contains(q)),
    ));
    report.push('\n');
}
