//! Google job search fairness comparison (paper §5.3.2): Tables 16–21.

use super::taskrabbit_quant::ExperimentResult;
use crate::scenario::GoogleScenario;
use crate::tables::comparison_table;
use crate::{paper, util};
use fbox_core::algo::{compare, compare_sets, Entity, Restriction};
use fbox_core::index::Dimension;
use fbox_core::model::{GroupId, LocationId, QueryId};
use fbox_core::FBox;

/// Runs Tables 16–21.
pub fn run(s: &GoogleScenario) -> ExperimentResult {
    let mut report = String::new();
    let mut checks = Vec::new();

    // Tables 16–17: Males vs Females by location.
    gender_tables(
        &s.kendall,
        "Table 16 (Kendall Tau)",
        &paper::TABLE16_CITIES,
        &mut report,
        &mut checks,
    );
    gender_tables(
        &s.jaccard,
        "Table 17 (Jaccard)",
        &paper::TABLE17_CITIES,
        &mut report,
        &mut checks,
    );

    // Tables 18–19: run errand vs general cleaning by ethnicity.
    errands_tables(
        &s.kendall,
        "Table 18 (Kendall Tau)",
        &paper::TABLE18_GROUPS,
        &mut report,
        &mut checks,
    );
    errands_tables(
        &s.jaccard,
        "Table 19 (Jaccard)",
        &paper::TABLE19_GROUPS,
        &mut report,
        &mut checks,
    );

    // Tables 20–21: Boston vs Bristol over General Cleaning terms.
    cleaning_tables(
        &s.kendall,
        "Table 20 (Kendall Tau)",
        &paper::TABLE20_QUERIES,
        &mut report,
        &mut checks,
    );
    cleaning_tables(
        &s.jaccard,
        "Table 21 (Jaccard)",
        &paper::TABLE21_QUERIES,
        &mut report,
        &mut checks,
    );

    ExperimentResult { report, checks }.finish()
}

fn gender_tables(
    fb: &FBox,
    table: &str,
    paper_cities: &[&str],
    report: &mut String,
    checks: &mut Vec<(String, bool)>,
) {
    let u = fb.universe();
    let out = compare_sets(
        fb.indices(),
        Dimension::Group,
        &util::gender_full_ids(u, "Male"),
        &util::gender_full_ids(u, "Female"),
        Dimension::Location,
        None,
        &Restriction::none(),
    )
    .expect("data present");
    let rows: Vec<(String, f64, f64, bool)> = out
        .rows
        .iter()
        .filter(|r| r.reversed)
        .map(|r| (u.location(LocationId(r.entity)).name.clone(), r.d1, r.d2, true))
        .collect();
    report.push_str(&comparison_table(
        &format!("{table}: Males vs Females by location — paper reversal cities: {paper_cities:?}"),
        "Males",
        "Females",
        (out.overall1, out.overall2),
        &rows,
    ));
    checks.push((
        format!("{table}: overall, Females see more divergent results than Males"),
        out.overall2 > out.overall1,
    ));
    let names: Vec<&str> = rows.iter().map(|(n, _, _, _)| n.as_str()).collect();
    let hits = paper_cities.iter().filter(|c| names.contains(c)).count();
    report
        .push_str(&format!("Paper reversal cities reproduced: {hits}/{}\n\n", paper_cities.len()));
    // The paper's Tables 16 and 17 disagree with each other on both the
    // overall direction and the reversal set ("warrants further
    // investigation"); at this granularity the defensible check is
    // non-empty overlap.
    checks
        .push((format!("{table}: the paper's reversal set overlaps the measured one"), hits >= 1));
}

fn errands_tables(
    fb: &FBox,
    table: &str,
    paper_groups: &[&str],
    report: &mut String,
    checks: &mut Vec<(String, bool)>,
) {
    let u = fb.universe();
    let re = u.query_id("run errand").expect("query registered");
    let gc = u.query_id("general cleaning").expect("query registered");
    let out = compare(
        fb.indices(),
        Entity::Query(re),
        Entity::Query(gc),
        Dimension::Group,
        Some(&util::ethnicity_ids(u)),
        &Restriction::none(),
    )
    .expect("data present");
    let rows: Vec<(String, f64, f64, bool)> = out
        .rows
        .iter()
        .map(|r| (util::paper_group_name(u, GroupId(r.entity)), r.d1, r.d2, r.reversed))
        .collect();
    report.push_str(&comparison_table(
        &format!("{table}: Running Errands vs General Cleaning by ethnicity — paper reversals: {paper_groups:?}"),
        "Run Errands",
        "Gen. Cleaning",
        (out.overall1, out.overall2),
        &rows,
    ));
    checks.push((
        format!("{table}: overall, Running Errands is (slightly) less fair than General Cleaning"),
        out.overall1 > out.overall2,
    ));
    let reversed: Vec<&str> =
        rows.iter().filter(|(_, _, _, rev)| *rev).map(|(n, _, _, _)| n.as_str()).collect();
    checks.push((
        format!("{table}: every paper reversal ethnicity reproduces ({paper_groups:?})"),
        paper_groups.iter().all(|g| reversed.contains(g)),
    ));
    report.push('\n');
}

fn cleaning_tables(
    fb: &FBox,
    table: &str,
    paper_queries: &[&str],
    report: &mut String,
    checks: &mut Vec<(String, bool)>,
) {
    let u = fb.universe();
    let bos = u.location_id("Boston, MA").expect("city registered");
    let bri = u.location_id("Bristol, UK").expect("city registered");
    let gc: Vec<u32> = u.queries_in_category("General Cleaning").iter().map(|q| q.0).collect();
    let out = compare(
        fb.indices(),
        Entity::Location(bos),
        Entity::Location(bri),
        Dimension::Query,
        Some(&gc),
        &Restriction::none(),
    )
    .expect("data present");
    let rows: Vec<(String, f64, f64, bool)> = out
        .rows
        .iter()
        .map(|r| (u.query(QueryId(r.entity)).name.clone(), r.d1, r.d2, r.reversed))
        .collect();
    report.push_str(&comparison_table(
        &format!("{table}: Boston vs Bristol over General Cleaning terms — paper reversals: {paper_queries:?}"),
        "Boston",
        "Bristol",
        (out.overall1, out.overall2),
        &rows,
    ));
    checks.push((
        format!("{table}: overall, Bristol is less fair than Boston for General Cleaning"),
        out.overall2 > out.overall1,
    ));
    let reversed: Vec<&str> =
        rows.iter().filter(|(_, _, _, rev)| *rev).map(|(n, _, _, _)| n.as_str()).collect();
    let hits = paper_queries.iter().filter(|q| reversed.contains(q)).count();
    checks.push((
        format!(
            "{table}: at least one of the paper's reversal terms reproduces ({paper_queries:?})"
        ),
        hits >= 1,
    ));
    report.push('\n');
}
