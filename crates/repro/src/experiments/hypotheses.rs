//! Cross-platform hypothesis transfer (paper §5.2.1 and §6): "Our
//! framework can be used to generate hypotheses and verify them across
//! sites. That is what we did from TaskRabbit to Google job search."
//!
//! The workflow: run fairness quantification on the marketplace, turn its
//! extremes into [`Hypothesis`] values, then test each one against the
//! search-engine study. This is the "iterative scenario" the paper's
//! conclusion sketches, made executable.

use super::taskrabbit_quant::ExperimentResult;
use crate::scenario::{GoogleScenario, TaskRabbitScenario};
use crate::tables::verdict;
use crate::util;
use fbox_core::algo::RankOrder;
use fbox_core::FBox;

/// A transferable claim generated on one platform.
#[derive(Debug, Clone, PartialEq)]
pub enum Hypothesis {
    /// `group` is among the `k` most (or least) unfairly treated groups.
    GroupExtreme {
        /// Paper-form group name ("Asian Female", "Male", …).
        group: String,
        /// Tolerance: membership in the top/bottom `k`.
        k: usize,
        /// `MostUnfair` or `LeastUnfair`.
        order: RankOrder,
    },
    /// `category` is among the `k` most (or least) unfair job categories.
    CategoryExtreme {
        /// Category name shared by both platforms' taxonomies.
        category: String,
        /// Tolerance.
        k: usize,
        /// Direction.
        order: RankOrder,
    },
}

impl Hypothesis {
    /// Renders the claim as a sentence.
    pub fn describe(&self) -> String {
        match self {
            Hypothesis::GroupExtreme { group, k, order } => {
                let dir = match order {
                    RankOrder::MostUnfair => "most unfairly treated",
                    RankOrder::LeastUnfair => "most fairly treated",
                };
                format!("{group} is among the {k} {dir} groups")
            }
            Hypothesis::CategoryExtreme { category, k, order } => {
                let dir = match order {
                    RankOrder::MostUnfair => "most unfair",
                    RankOrder::LeastUnfair => "fairest",
                };
                format!("{category} is among the {k} {dir} job categories")
            }
        }
    }

    /// Tests the claim on a platform's F-Box.
    pub fn verify(&self, fb: &FBox, categories: &[&str]) -> bool {
        match self {
            Hypothesis::GroupExtreme { group, k, order } => {
                let ranking = ordered_groups(fb, *order);
                ranking.iter().take(*k).any(|(n, _)| n == group)
            }
            Hypothesis::CategoryExtreme { category, k, order } => {
                let mut ranking = util::category_ranking(fb, categories);
                if *order == RankOrder::LeastUnfair {
                    ranking.reverse();
                }
                ranking.iter().take(*k).any(|(n, _)| n == category)
            }
        }
    }
}

fn ordered_groups(fb: &FBox, order: RankOrder) -> Vec<(String, f64)> {
    let mut ranking = util::group_ranking(fb);
    if order == RankOrder::LeastUnfair {
        ranking.reverse();
    }
    ranking
}

/// Generates hypotheses from the TaskRabbit quantification extremes: the
/// two most/least unfair full groups and the two most/least unfair
/// categories shared with the Google study.
pub fn generate(s: &TaskRabbitScenario, shared_categories: &[&str]) -> Vec<Hypothesis> {
    let mut hypotheses = Vec::new();
    let groups = util::group_ranking(&s.emd);
    let fulls: Vec<&(String, f64)> = groups.iter().filter(|(n, _)| n.contains(' ')).collect();
    for (n, _) in fulls.iter().take(2) {
        hypotheses.push(Hypothesis::GroupExtreme {
            group: n.clone(),
            k: 3,
            order: RankOrder::MostUnfair,
        });
    }
    if let Some((n, _)) = fulls.last() {
        hypotheses.push(Hypothesis::GroupExtreme {
            group: n.clone(),
            k: 3,
            order: RankOrder::LeastUnfair,
        });
    }
    let cats = util::category_ranking(&s.emd, shared_categories);
    if let Some((n, _)) = cats.first() {
        hypotheses.push(Hypothesis::CategoryExtreme {
            category: n.clone(),
            k: 2,
            order: RankOrder::MostUnfair,
        });
    }
    if let Some((n, _)) = cats.last() {
        // The fair end is flatter than the unfair end on both platforms
        // (the paper's own Run Errands / Furniture Assembly / Delivery
        // cluster spans 0.04 EMD), so the transferable claim is
        // membership in the fair half.
        hypotheses.push(Hypothesis::CategoryExtreme {
            category: n.clone(),
            k: shared_categories.len() / 2,
            order: RankOrder::LeastUnfair,
        });
    }
    hypotheses
}

/// The job categories present in both studies (the Google study covers a
/// subset of the TaskRabbit taxonomy).
pub fn shared_categories() -> Vec<&'static str> {
    let google: std::collections::BTreeSet<&str> =
        fbox_search::QUERIES.iter().map(|&(_, c)| c).collect();
    fbox_marketplace::jobs::CATEGORIES
        .iter()
        .map(|c| c.name)
        .filter(|n| google.contains(n))
        .collect()
}

/// Runs the full transfer: generate on TaskRabbit (EMD), verify on Google
/// (both measures).
pub fn run(tr: &TaskRabbitScenario, gg: &GoogleScenario) -> ExperimentResult {
    let mut report = String::new();
    let mut checks = Vec::new();
    let shared = shared_categories();

    report.push_str("## §6: hypotheses generated on TaskRabbit, verified on Google\n");
    report.push_str(&format!("Shared job categories: {shared:?}\n\n"));

    let hypotheses = generate(tr, &shared);
    assert!(!hypotheses.is_empty(), "the calibrated scenario always yields extremes");
    let mut transfers = 0usize;
    for h in &hypotheses {
        let kendall = h.verify(&gg.kendall, &shared);
        let jaccard = h.verify(&gg.jaccard, &shared);
        report.push_str(&format!(
            "  {:<62} Kendall: {}  Jaccard: {}\n",
            h.describe(),
            if kendall { "holds" } else { "fails" },
            if jaccard { "holds" } else { "fails" },
        ));
        if kendall || jaccard {
            transfers += 1;
        }
    }
    report.push('\n');
    report.push_str(&verdict(
        &format!("{transfers}/{} TaskRabbit hypotheses transfer to Google", hypotheses.len()),
        true,
    ));
    // The paper's transferred findings are category-level (Yard Work
    // unfair, Furniture Assembly fair) — those two must carry over; the
    // group-level extremes differ across platforms in the paper too
    // (Asians on TaskRabbit vs White Females on Google), so they are
    // reported, not asserted.
    let category_transfer = hypotheses.iter().all(|h| match h {
        Hypothesis::CategoryExtreme { .. } => h.verify(&gg.kendall, &shared),
        Hypothesis::GroupExtreme { .. } => true,
    });
    checks.push((
        "§6: the category-level hypotheses (most/least unfair job) transfer from TaskRabbit to Google".into(),
        category_transfer,
    ));

    ExperimentResult { report, checks }.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_categories_cover_the_google_study() {
        let shared = shared_categories();
        assert!(shared.contains(&"Yard Work"));
        assert!(shared.contains(&"Furniture Assembly"));
        assert!(shared.contains(&"General Cleaning"));
        // Handyman and Delivery exist only on TaskRabbit.
        assert!(!shared.contains(&"Handyman"));
        assert!(!shared.contains(&"Delivery"));
    }

    #[test]
    fn describe_is_human_readable() {
        let h = Hypothesis::CategoryExtreme {
            category: "Yard Work".into(),
            k: 2,
            order: RankOrder::MostUnfair,
        };
        assert_eq!(h.describe(), "Yard Work is among the 2 most unfair job categories");
    }
}
