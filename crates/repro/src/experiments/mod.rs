//! One module per paper experiment; each returns an
//! [`ExperimentResult`](taskrabbit_quant::ExperimentResult) with a
//! rendered report and named shape checks.

pub mod figures;
pub mod google_compare;
pub mod google_quant;
pub mod hypotheses;
pub mod mitigate;
pub mod taskrabbit_compare;
pub mod taskrabbit_quant;

pub use taskrabbit_quant::ExperimentResult;
