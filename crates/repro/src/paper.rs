//! The paper's reported numbers, verbatim, for side-by-side display.
//!
//! Group names are rendered in this crate's canonical "Ethnicity Gender"
//! form (e.g. "Asian Female"), matching
//! [`Demographic::name`](fbox_marketplace::Demographic::name); single-
//! attribute groups keep their bare value name.

/// Table 8 (EMD column): all 11 groups, unfairest → fairest.
pub const TABLE8_EMD: [(&str, f64); 11] = [
    ("Asian Female", 0.876),
    ("Asian Male", 0.755),
    ("Black Female", 0.726),
    ("Asian", 0.694),
    ("Black Male", 0.578),
    ("White Female", 0.542),
    ("Black", 0.498),
    ("Male", 0.468),
    ("Female", 0.468),
    ("White", 0.448),
    ("White Male", 0.421),
];

/// Table 8 (Exposure column).
pub const TABLE8_EXPOSURE: [(&str, f64); 11] = [
    ("Asian Female", 0.821),
    ("Asian Male", 0.662),
    ("Black Female", 0.615),
    ("Asian", 0.594),
    ("Black Male", 0.413),
    ("White Female", 0.359),
    ("Black", 0.341),
    ("Female", 0.299),
    ("White Male", 0.154),
    ("Male", 0.117),
    ("White", 0.104),
];

/// Table 9 (EMD column): job categories, unfairest → fairest.
pub const TABLE9_EMD: [(&str, f64); 8] = [
    ("Handyman", 0.692),
    ("Yard Work", 0.672),
    ("Event Staffing", 0.639),
    ("General Cleaning", 0.611),
    ("Moving", 0.604),
    ("Furniture Assembly", 0.541),
    ("Run Errands", 0.519),
    ("Delivery", 0.499),
];

/// Table 9 (Exposure column).
pub const TABLE9_EXPOSURE: [(&str, f64); 8] = [
    ("Handyman", 0.515),
    ("Event Staffing", 0.504),
    ("Yard Work", 0.500),
    ("General Cleaning", 0.456),
    ("Moving", 0.418),
    ("Furniture Assembly", 0.383),
    ("Run Errands", 0.352),
    ("Delivery", 0.331),
];

/// Table 10 (EMD column): the ten unfairest cities.
pub const TABLE10_EMD: [(&str, f64); 10] = [
    ("Birmingham, UK", 1.000),
    ("Oklahoma City, OK", 0.998),
    ("Bristol, UK", 0.910),
    ("Manchester, UK", 0.851),
    ("New Haven, CT", 0.838),
    ("Milwaukee, WI", 0.824),
    ("Indianapolis, IN", 0.815),
    ("Nashville, TN", 0.808),
    ("Detroit, MI", 0.806),
    ("Memphis, TN", 0.800),
];

/// Table 11 (EMD column): the ten fairest cities.
pub const TABLE11_EMD: [(&str, f64); 10] = [
    ("Chicago, IL", 0.274),
    ("San Francisco, CA", 0.286),
    ("Washington, DC", 0.329),
    ("Los Angeles, CA", 0.330),
    ("Boston, MA", 0.353),
    ("Atlanta, GA", 0.400),
    ("Houston, TX", 0.417),
    ("Orlando, FL", 0.431),
    ("Philadelphia, PA", 0.450),
    ("San Diego, CA", 0.454),
];

/// Table 12: overall Male/Female exposure plus the reversal cities.
pub const TABLE12_OVERALL: (f64, f64) = (0.117, 0.299);

/// Table 12's reversal cities (females treated more fairly than males).
pub const TABLE12_CITIES: [&str; 7] = [
    "Charlotte, NC",
    "Chicago, IL",
    "Nashville, TN",
    "Norfolk, VA",
    "San Francisco Bay Area, CA",
    "St. Louis, MO",
    // The paper's narrative (§1/§6) also names San Francisco among the
    // cities where females fare better.
    "San Francisco, CA",
];

/// Table 13 (EMD): Lawn Mowing vs Event Decorating; White reverses.
pub const TABLE13: ((f64, f64), &str, (f64, f64)) = ((0.674, 0.613), "White", (0.552, 0.569));

/// Table 14 (Exposure): same comparison; Black reverses.
pub const TABLE14: ((f64, f64), &str, (f64, f64)) = ((0.500, 0.442), "Black", (0.445, 0.453));

/// Table 15 (EMD): SF Bay Area vs Chicago within General Cleaning;
/// organizing sub-queries reverse.
pub const TABLE15_OVERALL: (f64, f64) = (0.213, 0.233);

/// Table 15's reversal sub-queries.
pub const TABLE15_QUERIES: [&str; 3] =
    ["Back To Organized", "Organize & Declutter", "Organize Closet"];

/// Table 16 (Kendall Tau): Google Male vs Female; reversal locations.
pub const TABLE16_OVERALL: (f64, f64) = (0.537, 0.552);

/// Table 16's reversal locations.
pub const TABLE16_CITIES: [&str; 4] =
    ["Birmingham, UK", "Bristol, UK", "Detroit, MI", "New York City, NY"];

/// Table 17 (Jaccard): same comparison; different reversal set.
pub const TABLE17_OVERALL: (f64, f64) = (0.395, 0.393);

/// Table 17's reversal locations.
pub const TABLE17_CITIES: [&str; 6] = [
    "Boston, MA",
    "Charlotte, NC",
    "London, UK",
    "Los Angeles, CA",
    "Manchester, UK",
    "Pittsburgh, PA",
];

/// Table 18 (Kendall): Running Errands vs General Cleaning; Black and
/// Asian reverse.
pub const TABLE18_OVERALL: (f64, f64) = (0.927, 0.926);

/// Table 18's reversal ethnicities.
pub const TABLE18_GROUPS: [&str; 2] = ["Black", "Asian"];

/// Table 19 (Jaccard): same comparison; Black reverses.
pub const TABLE19_OVERALL: (f64, f64) = (0.902, 0.887);

/// Table 19's reversal ethnicities.
pub const TABLE19_GROUPS: [&str; 1] = ["Black"];

/// Table 20 (Kendall): Boston vs Bristol over General Cleaning terms.
pub const TABLE20_OVERALL: (f64, f64) = (0.641, 0.689);

/// Table 20's reversal terms.
pub const TABLE20_QUERIES: [&str; 2] = ["office cleaning jobs", "private cleaning jobs"];

/// Table 21 (Jaccard): same comparison.
pub const TABLE21_OVERALL: (f64, f64) = (0.447, 0.603);

/// Table 21's reversal terms.
pub const TABLE21_QUERIES: [&str; 1] = ["private cleaning jobs"];

/// §5.2.2 narrative: Google quantification extremes.
pub const GOOGLE_MOST_UNFAIR_GROUP: &str = "White Female";
/// Least unfair Google group.
pub const GOOGLE_LEAST_UNFAIR_GROUP: &str = "Black Male";
/// Fairest Google location.
pub const GOOGLE_FAIREST_LOCATION: &str = "Washington, DC";
/// Unfairest Google location.
pub const GOOGLE_UNFAIREST_LOCATION: &str = "London, UK";
/// Most unfair Google query category.
pub const GOOGLE_MOST_UNFAIR_CATEGORY: &str = "Yard Work";
/// Fairest Google query category.
pub const GOOGLE_FAIREST_CATEGORY: &str = "Furniture Assembly";

/// Figure 7: tasker gender breakdown (male share).
pub const FIG7_MALE_SHARE: f64 = 0.72;
/// Figure 8: tasker ethnic breakdown (white share).
pub const FIG8_WHITE_SHARE: f64 = 0.66;
/// §5.1.1: number of crawled queries.
pub const N_CRAWL_QUERIES: usize = 5361;
/// §5.1.1: number of unique taskers.
pub const N_TASKERS: usize = 3311;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rankings_are_sorted_descending() {
        for table in [TABLE8_EMD.as_slice(), TABLE8_EXPOSURE.as_slice()] {
            for w in table.windows(2) {
                assert!(w[0].1 >= w[1].1, "{} before {}", w[0].0, w[1].0);
            }
        }
        for table in [TABLE9_EMD.as_slice(), TABLE9_EXPOSURE.as_slice(), TABLE10_EMD.as_slice()] {
            for w in table.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
        // Table 11 is fairest-first (ascending).
        for w in TABLE11_EMD.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn emd_male_female_equality_in_table8() {
        // The structural check §3.3.1 implies: single-attribute gender
        // groups have identical EMD unfairness — and the paper's Table 8
        // indeed reports Male = Female = 0.468.
        let male = TABLE8_EMD.iter().find(|&&(n, _)| n == "Male").unwrap().1;
        let female = TABLE8_EMD.iter().find(|&&(n, _)| n == "Female").unwrap().1;
        assert_eq!(male, female);
    }
}
