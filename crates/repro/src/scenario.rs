//! Fully assembled study scenarios: simulator → crawl/study → F-Box,
//! under both measures of each platform.
//!
//! The `*_cached` variants add cube-snapshot caching behind the repro
//! binaries' `--cube <path>` flag: when the file exists the scenario is
//! loaded from it (skipping the simulators entirely); otherwise it is
//! built as usual and saved for the next run. Load/save status goes to
//! stderr so stdout stays byte-identical either way.

use crate::calibrate;
use fbox_core::unfairness::{MarketMeasure, SearchMeasure};
use fbox_core::FBox;
use fbox_marketplace::{crawl, BiasProfile, CrawlStats, Marketplace, Population, ScoringModel};
use fbox_search::{
    run_study, ExtensionRunner, NoiseModel, PersonalizationProfile, SearchEngine, StudyDesign,
    StudyStats,
};
use fbox_store::CubeSnapshot;
use std::io;
use std::path::Path;

/// The assembled TaskRabbit study.
pub struct TaskRabbitScenario {
    /// F-Box under the EMD measure.
    pub emd: FBox,
    /// F-Box under the exposure measure.
    pub exposure: FBox,
    /// Crawl statistics (Figures 7–8, §5.1.1 counts).
    pub stats: CrawlStats,
}

/// Builds the calibrated TaskRabbit scenario with the shared repro seed.
pub fn taskrabbit() -> TaskRabbitScenario {
    taskrabbit_with(calibrate::taskrabbit_bias(), calibrate::SEED)
}

/// Builds a TaskRabbit scenario with an explicit bias profile and seed
/// (used by ablations and tests).
pub fn taskrabbit_with(bias: BiasProfile, seed: u64) -> TaskRabbitScenario {
    let population = Population::paper(seed);
    let marketplace = Marketplace::new(population, ScoringModel::default(), bias, seed);
    let (universe, observations, stats) = crawl(&marketplace);
    let emd = FBox::from_market(universe.clone(), &observations, MarketMeasure::emd());
    let exposure = FBox::from_market(universe, &observations, MarketMeasure::exposure());
    TaskRabbitScenario { emd, exposure, stats }
}

/// Derives a per-platform sidecar path from one `--cube` argument, for
/// binaries that assemble both scenarios: `--cube out.fbxs` caches the
/// TaskRabbit study at `out.fbxs.taskrabbit` and the Google study at
/// `out.fbxs.google`.
#[must_use]
pub fn cube_variant(path: Option<&Path>, tag: &str) -> Option<std::path::PathBuf> {
    path.map(|p| {
        let mut name = p.as_os_str().to_os_string();
        name.push(".");
        name.push(tag);
        name.into()
    })
}

/// [`taskrabbit`] with cube-snapshot caching: loads the scenario from
/// `path` when given and present, else builds it and (when a path is
/// given) saves the snapshot there.
pub fn taskrabbit_cached(path: Option<&Path>) -> TaskRabbitScenario {
    let Some(path) = path else { return taskrabbit() };
    if path.exists() {
        match load_taskrabbit(path) {
            Ok(s) => {
                eprintln!("cube: loaded taskrabbit scenario from {}", path.display());
                return s;
            }
            Err(e) => eprintln!("cube: failed to load {}: {e}; rebuilding", path.display()),
        }
    }
    let s = taskrabbit();
    match save_taskrabbit(&s, path) {
        Ok(()) => eprintln!("cube: saved taskrabbit scenario to {}", path.display()),
        Err(e) => eprintln!("cube: failed to save {}: {e}", path.display()),
    }
    s
}

fn save_taskrabbit(s: &TaskRabbitScenario, path: &Path) -> io::Result<()> {
    let mut snap = CubeSnapshot::new(s.emd.universe().clone());
    snap.insert_cube("market:emd", s.emd.cube().clone());
    snap.insert_cube("market:exposure", s.exposure.cube().clone());
    snap.set_meta("platform", "taskrabbit");
    snap.set_meta("stats", serde::json::to_string(&s.stats));
    snap.save(path)
}

fn load_taskrabbit(path: &Path) -> io::Result<TaskRabbitScenario> {
    let snap = CubeSnapshot::load(path)?;
    if snap.meta("platform") != Some("taskrabbit") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot is not a taskrabbit scenario",
        ));
    }
    let expect = |name: &str| {
        snap.cube(name).cloned().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("snapshot lacks cube {name}"))
        })
    };
    let stats: CrawlStats = snap
        .meta("stats")
        .and_then(|s| serde::json::from_str(s).ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "snapshot lacks crawl stats"))?;
    let emd = expect("market:emd")?;
    let exposure = expect("market:exposure")?;
    let universe = snap.universe().clone();
    Ok(TaskRabbitScenario {
        emd: FBox::from_cube(universe.clone(), emd),
        exposure: FBox::from_cube(universe, exposure),
        stats,
    })
}

/// The assembled Google job search study.
pub struct GoogleScenario {
    /// F-Box under the Kendall-Tau measure.
    pub kendall: FBox,
    /// F-Box under the Jaccard measure.
    pub jaccard: FBox,
    /// Study statistics (§5.1.2 counts).
    pub stats: StudyStats,
}

/// Builds the calibrated Google scenario with the shared repro seed.
pub fn google() -> GoogleScenario {
    google_with(calibrate::google_personalization(), calibrate::SEED)
}

/// Builds a Google scenario with an explicit personalization profile and
/// seed.
pub fn google_with(personalization: PersonalizationProfile, seed: u64) -> GoogleScenario {
    let engine = SearchEngine::new(personalization, NoiseModel::default(), seed);
    let design = StudyDesign { participants_per_group: 3, seed };
    let runner = ExtensionRunner::default();
    let (universe, observations, stats) = run_study(&design, &engine, &runner);
    let kendall = FBox::from_search(universe.clone(), &observations, SearchMeasure::kendall());
    let jaccard = FBox::from_search(universe, &observations, SearchMeasure::JaccardDistance);
    GoogleScenario { kendall, jaccard, stats }
}

/// [`google`] with cube-snapshot caching, mirroring
/// [`taskrabbit_cached`].
pub fn google_cached(path: Option<&Path>) -> GoogleScenario {
    let Some(path) = path else { return google() };
    if path.exists() {
        match load_google(path) {
            Ok(s) => {
                eprintln!("cube: loaded google scenario from {}", path.display());
                return s;
            }
            Err(e) => eprintln!("cube: failed to load {}: {e}; rebuilding", path.display()),
        }
    }
    let s = google();
    match save_google(&s, path) {
        Ok(()) => eprintln!("cube: saved google scenario to {}", path.display()),
        Err(e) => eprintln!("cube: failed to save {}: {e}", path.display()),
    }
    s
}

fn save_google(s: &GoogleScenario, path: &Path) -> io::Result<()> {
    let mut snap = CubeSnapshot::new(s.kendall.universe().clone());
    snap.insert_cube("search:kendall", s.kendall.cube().clone());
    snap.insert_cube("search:jaccard", s.jaccard.cube().clone());
    snap.set_meta("platform", "google");
    snap.set_meta("stats", serde::json::to_string(&s.stats));
    snap.save(path)
}

fn load_google(path: &Path) -> io::Result<GoogleScenario> {
    let snap = CubeSnapshot::load(path)?;
    if snap.meta("platform") != Some("google") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot is not a google scenario",
        ));
    }
    let expect = |name: &str| {
        snap.cube(name).cloned().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("snapshot lacks cube {name}"))
        })
    };
    let stats: StudyStats = snap
        .meta("stats")
        .and_then(|s| serde::json::from_str(s).ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "snapshot lacks study stats"))?;
    let kendall = expect("search:kendall")?;
    let jaccard = expect("search:jaccard")?;
    let universe = snap.universe().clone();
    Ok(GoogleScenario {
        kendall: FBox::from_cube(universe.clone(), kendall),
        jaccard: FBox::from_cube(universe, jaccard),
        stats,
    })
}
