//! Fully assembled study scenarios: simulator → crawl/study → F-Box,
//! under both measures of each platform.

use crate::calibrate;
use fbox_core::unfairness::{MarketMeasure, SearchMeasure};
use fbox_core::FBox;
use fbox_marketplace::{crawl, BiasProfile, CrawlStats, Marketplace, Population, ScoringModel};
use fbox_search::{
    run_study, ExtensionRunner, NoiseModel, PersonalizationProfile, SearchEngine, StudyDesign,
    StudyStats,
};

/// The assembled TaskRabbit study.
pub struct TaskRabbitScenario {
    /// F-Box under the EMD measure.
    pub emd: FBox,
    /// F-Box under the exposure measure.
    pub exposure: FBox,
    /// Crawl statistics (Figures 7–8, §5.1.1 counts).
    pub stats: CrawlStats,
}

/// Builds the calibrated TaskRabbit scenario with the shared repro seed.
pub fn taskrabbit() -> TaskRabbitScenario {
    taskrabbit_with(calibrate::taskrabbit_bias(), calibrate::SEED)
}

/// Builds a TaskRabbit scenario with an explicit bias profile and seed
/// (used by ablations and tests).
pub fn taskrabbit_with(bias: BiasProfile, seed: u64) -> TaskRabbitScenario {
    let population = Population::paper(seed);
    let marketplace = Marketplace::new(population, ScoringModel::default(), bias, seed);
    let (universe, observations, stats) = crawl(&marketplace);
    let emd = FBox::from_market(universe.clone(), &observations, MarketMeasure::emd());
    let exposure = FBox::from_market(universe, &observations, MarketMeasure::exposure());
    TaskRabbitScenario { emd, exposure, stats }
}

/// The assembled Google job search study.
pub struct GoogleScenario {
    /// F-Box under the Kendall-Tau measure.
    pub kendall: FBox,
    /// F-Box under the Jaccard measure.
    pub jaccard: FBox,
    /// Study statistics (§5.1.2 counts).
    pub stats: StudyStats,
}

/// Builds the calibrated Google scenario with the shared repro seed.
pub fn google() -> GoogleScenario {
    google_with(calibrate::google_personalization(), calibrate::SEED)
}

/// Builds a Google scenario with an explicit personalization profile and
/// seed.
pub fn google_with(personalization: PersonalizationProfile, seed: u64) -> GoogleScenario {
    let engine = SearchEngine::new(personalization, NoiseModel::default(), seed);
    let design = StudyDesign { participants_per_group: 3, seed };
    let runner = ExtensionRunner::default();
    let (universe, observations, stats) = run_study(&design, &engine, &runner);
    let kendall = FBox::from_search(universe.clone(), &observations, SearchMeasure::kendall());
    let jaccard = FBox::from_search(universe, &observations, SearchMeasure::JaccardDistance);
    GoogleScenario { kendall, jaccard, stats }
}
