//! Shared helpers for the experiment runners.

use fbox_core::algo::{RankOrder, Restriction};
use fbox_core::index::Dimension;
use fbox_core::model::{GroupId, Universe};
use fbox_core::FBox;

/// Renders a group id in the paper's narrative form: "Black Female"
/// (ethnicity first) for full groups, the bare value name for
/// single-attribute groups.
pub fn paper_group_name(universe: &Universe, g: GroupId) -> String {
    let schema = universe.schema();
    let label = universe.group(g);
    let mut gender = None;
    let mut ethnicity = None;
    for &(a, v) in label.predicates() {
        let attr = schema.attribute(a);
        match attr.name() {
            "gender" => gender = Some(attr.value_name(v).to_string()),
            "ethnicity" => ethnicity = Some(attr.value_name(v).to_string()),
            other => return format!("{other}={}", attr.value_name(v)),
        }
    }
    match (ethnicity, gender) {
        (Some(e), Some(g)) => format!("{e} {g}"),
        (Some(e), None) => e,
        (None, Some(g)) => g,
        (None, None) => unreachable!("labels are non-empty"),
    }
}

/// All groups ranked by descending unfairness, in paper naming.
pub fn group_ranking(fb: &FBox) -> Vec<(String, f64)> {
    fb.top_k(
        Dimension::Group,
        fb.universe().n_groups(),
        RankOrder::MostUnfair,
        &Restriction::none(),
    )
    .entries
    .into_iter()
    .map(|(id, v)| (paper_group_name(fb.universe(), GroupId(id)), v))
    .collect()
}

/// Job categories ranked by descending average unfairness (mean over each
/// category's queries, all groups, all locations).
pub fn category_ranking(fb: &FBox, categories: &[&str]) -> Vec<(String, f64)> {
    let u = fb.universe();
    let mut out: Vec<(String, f64)> = categories
        .iter()
        .map(|&c| {
            let qs: Vec<u32> = u.queries_in_category(c).iter().map(|q| q.0).collect();
            assert!(!qs.is_empty(), "unknown category {c:?}");
            let r = fb.top_k(
                Dimension::Query,
                qs.len(),
                RankOrder::MostUnfair,
                &Restriction { queries: Some(qs), ..Default::default() },
            );
            let avg = r.entries.iter().map(|e| e.1).sum::<f64>() / r.entries.len() as f64;
            (c.to_string(), avg)
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Raw ids of the full (gender × ethnicity) groups of one gender — the
/// comparison sets behind "Males vs Females" on search measures.
pub fn gender_full_ids(universe: &Universe, gender: &str) -> Vec<u32> {
    ["Asian", "Black", "White"]
        .iter()
        .map(|e| {
            universe
                .group_id_by_text(&format!("gender={gender} & ethnicity={e}"))
                .expect("full group registered")
                .0
        })
        .collect()
}

/// Raw ids of the single-attribute ethnicity groups, in Asian/Black/White
/// order (the breakdown sets of Tables 13–14 and 18–19).
pub fn ethnicity_ids(universe: &Universe) -> Vec<u32> {
    ["Asian", "Black", "White"]
        .iter()
        .map(|e| {
            universe
                .group_id_by_text(&format!("ethnicity={e}"))
                .expect("ethnicity group registered")
                .0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbox_core::model::Schema;

    #[test]
    fn paper_group_names() {
        let u = Universe::with_all_groups(Schema::gender_ethnicity());
        let bf = u.group_id_by_text("gender=Female & ethnicity=Black").unwrap();
        assert_eq!(paper_group_name(&u, bf), "Black Female");
        let male = u.group_id_by_text("gender=Male").unwrap();
        assert_eq!(paper_group_name(&u, male), "Male");
        let asian = u.group_id_by_text("ethnicity=Asian").unwrap();
        assert_eq!(paper_group_name(&u, asian), "Asian");
    }

    #[test]
    fn id_helpers_resolve() {
        let u = Universe::with_all_groups(Schema::gender_ethnicity());
        assert_eq!(gender_full_ids(&u, "Male").len(), 3);
        assert_eq!(gender_full_ids(&u, "Female").len(), 3);
        assert_eq!(ethnicity_ids(&u).len(), 3);
        // Disjoint male/female sets.
        let m = gender_full_ids(&u, "Male");
        let f = gender_full_ids(&u, "Female");
        assert!(m.iter().all(|x| !f.contains(x)));
    }
}
