//! `--trace` must be a pure side-channel: the traced run's stdout is
//! byte-identical to the untraced run's, and the trace file itself is a
//! well-formed Chrome trace-event JSON array with a folded sibling.

use std::process::Command;

#[test]
fn trace_flag_leaves_stdout_byte_identical() {
    let bin = env!("CARGO_BIN_EXE_repro-taskrabbit-quant");
    let dir = std::env::temp_dir().join(format!("fbox-trace-off-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace_path = dir.join("run.json");

    let plain = Command::new(bin)
        .env_remove("FBOX_TRACE")
        .env_remove("FBOX_TELEMETRY")
        .output()
        .expect("run untraced");
    let traced = Command::new(bin)
        .arg("--trace")
        .arg(&trace_path)
        .env_remove("FBOX_TRACE")
        .env_remove("FBOX_TELEMETRY")
        .output()
        .expect("run traced");

    assert!(plain.status.success(), "untraced run failed");
    assert!(traced.status.success(), "traced run failed");
    assert_eq!(plain.stdout, traced.stdout, "--trace must not change report bytes on stdout");

    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(!json.is_empty(), "trace file must not be empty");
    assert!(json.starts_with('['), "Chrome trace-event format is a JSON array");
    assert!(json.contains("\"marketplace.crawl\""), "crawl span recorded");

    let folded = std::fs::read_to_string(dir.join("run.json.folded")).expect("folded sibling");
    assert!(folded.contains("marketplace.crawl;"), "folded stacks use ';' paths");

    std::fs::remove_dir_all(&dir).ok();
}
