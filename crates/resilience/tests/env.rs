//! `FBOX_FAULTS` environment parsing, isolated in its own test binary so
//! the env mutation cannot race any other test.

use fbox_resilience::{FaultProfile, Resilience, FAULTS_ENV};

#[test]
fn from_env_round_trips_and_tolerates_garbage() {
    // SAFETY/caveat: this is the only test in this binary, so nothing else
    // reads the variable concurrently.
    std::env::remove_var(FAULTS_ENV);
    assert!(!Resilience::from_env().enabled(), "unset env must be inert");

    std::env::set_var(FAULTS_ENV, "42:heavy");
    let r = Resilience::from_env();
    assert!(r.enabled());
    assert_eq!(r.plan.seed(), 42);
    assert_eq!(*r.plan.profile(), FaultProfile::heavy());

    // A malformed flag must never change pipeline output: fall back to inert.
    std::env::set_var(FAULTS_ENV, "not-a-spec");
    assert!(!Resilience::from_env().enabled());

    std::env::remove_var(FAULTS_ENV);
}
