//! Seeded, schedule-independent *storage* fault injection.
//!
//! The transport faults in [`crate::fault`] model a misbehaving platform;
//! this module models a misbehaving disk underneath the `fbox-store`
//! segment log. A [`StoragePlan`] answers: *what goes wrong when record
//! `index` is written during log generation `generation`?* The answer is a
//! pure function of `(seed, generation, index)` — never of wall clock,
//! thread schedule, or actual I/O — so a crash-and-recover sequence is as
//! reproducible as the crawl it interrupts.
//!
//! `generation` is the number of times the log has been opened. Keying the
//! draw on it is what makes recovery *converge*: a plan keyed on `index`
//! alone would tear the same record on every reopen, forever; keyed on the
//! generation too, each recovery attempt draws a fresh stream and the
//! write eventually lands. Since reopen count is itself deterministic, the
//! whole crash/recover trajectory still replays bit-identically.
//!
//! The three fault kinds mirror how real storage fails underneath an
//! append-only log:
//!
//! - [`StorageFaultKind::TornWrite`]: the process dies mid-`write(2)`; a
//!   prefix of the record reaches the disk and everything after it in this
//!   generation is lost. Replay must truncate the torn tail.
//! - [`StorageFaultKind::BitFlip`]: the record lands whole but one payload
//!   byte is flipped (media decay, cosmic ray). Replay must detect the
//!   checksum mismatch and quarantine exactly that record.
//! - [`StorageFaultKind::ShortRead`]: the *read back* comes up short once
//!   (interrupted syscall); nothing on disk is damaged and a single retry
//!   sees the full record. Distinguishes transient read glitches from a
//!   genuinely torn tail.

use crate::hash::mix;
use crate::FAULTS_ENV;

/// What the injected storage failure looks like to the segment log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// The write crashes partway through: a prefix of the record persists
    /// and the log is dead for the rest of this generation.
    TornWrite,
    /// One payload byte is flipped on the way to disk; the damage is
    /// permanent and must be caught by the record checksum on replay.
    BitFlip,
    /// The first read of this record comes up short; a retry succeeds.
    ShortRead,
}

impl StorageFaultKind {
    /// Stable lowercase label (used in telemetry and test diagnostics).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StorageFaultKind::TornWrite => "torn_write",
            StorageFaultKind::BitFlip => "bit_flip",
            StorageFaultKind::ShortRead => "short_read",
        }
    }
}

/// Per-mille probabilities of each storage fault kind per record. The
/// remainder up to 1000 is a clean write/read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageProfile {
    /// Probability (per mille) of a torn (crashing) write.
    pub torn_write_pm: u32,
    /// Probability (per mille) of a single flipped payload byte.
    pub bit_flip_pm: u32,
    /// Probability (per mille) of a transient short read on replay.
    pub short_read_pm: u32,
}

impl StorageProfile {
    /// No storage faults — the log behaves like a perfect disk.
    #[must_use]
    pub const fn none() -> Self {
        Self { torn_write_pm: 0, bit_flip_pm: 0, short_read_pm: 0 }
    }

    /// Occasional trouble: rare crashes and read glitches, very rare
    /// silent corruption.
    #[must_use]
    pub const fn mild() -> Self {
        Self { torn_write_pm: 20, bit_flip_pm: 5, short_read_pm: 15 }
    }

    /// A failing disk: frequent crashes mid-write and visible corruption.
    #[must_use]
    pub const fn heavy() -> Self {
        Self { torn_write_pm: 60, bit_flip_pm: 25, short_read_pm: 40 }
    }

    /// Glitch-dominated: reads stutter far more often than writes fail,
    /// the signature of a saturated or flaky I/O path.
    #[must_use]
    pub const fn bursty() -> Self {
        Self { torn_write_pm: 10, bit_flip_pm: 5, short_read_pm: 120 }
    }

    /// Resolves a profile by name (`none`, `mild`, `heavy`, `bursty`) —
    /// the same vocabulary as [`crate::FaultProfile`], so one
    /// `FBOX_FAULTS` spec drives both layers.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "mild" => Some(Self::mild()),
            "heavy" => Some(Self::heavy()),
            "bursty" => Some(Self::bursty()),
            _ => None,
        }
    }

    /// Total per-mille probability of *any* storage fault per record.
    #[must_use]
    pub fn total_pm(&self) -> u32 {
        self.torn_write_pm + self.bit_flip_pm + self.short_read_pm
    }

    /// Whether this profile can ever inject a fault.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.total_pm() == 0
    }
}

/// A seeded storage fault plan: the deterministic source of everything
/// that goes wrong underneath one segment log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoragePlan {
    seed: u64,
    profile: StorageProfile,
}

impl StoragePlan {
    /// A plan injecting faults per `profile`, streamed from `seed`.
    #[must_use]
    pub fn new(seed: u64, profile: StorageProfile) -> Self {
        assert!(profile.total_pm() <= 1000, "storage fault probabilities exceed 1000 per mille");
        Self { seed, profile }
    }

    /// The inert plan: a perfect disk.
    #[must_use]
    pub fn none() -> Self {
        Self::new(0, StorageProfile::none())
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's fault profile.
    #[must_use]
    pub fn profile(&self) -> &StorageProfile {
        &self.profile
    }

    /// Whether the plan can ever inject a fault.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.profile.is_inert()
    }

    /// Reads [`FAULTS_ENV`] (`FBOX_FAULTS=<seed>:<profile>`, same spec the
    /// transport layer reads). Unset or unparseable values yield the inert
    /// plan — a malformed flag must never change pipeline output.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) => Self::parse_spec(&spec).unwrap_or_else(Self::none),
            Err(_) => Self::none(),
        }
    }

    /// Parses a `<seed>:<profile>` spec (or a bare `<seed>`, implying
    /// `mild`). Returns `None` on any syntax error.
    #[must_use]
    pub fn parse_spec(spec: &str) -> Option<Self> {
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        let (seed_str, profile) = match spec.split_once(':') {
            Some((s, p)) => (s, StorageProfile::by_name(p.trim())?),
            None => (spec, StorageProfile::mild()),
        };
        let seed: u64 = seed_str.trim().parse().ok()?;
        Some(Self::new(seed, profile))
    }

    /// The fault injected on record `index` of log generation
    /// `generation`, or `None` for a clean write/read. Pure in
    /// `(seed, generation, index)`.
    #[must_use]
    pub fn fault(&self, generation: u64, index: u64) -> Option<StorageFaultKind> {
        if self.profile.is_inert() {
            return None;
        }
        let draw = (mix(mix(self.seed, generation ^ 0x5709_4A6E), index) % 1000) as u32;
        let p = &self.profile;
        let mut bound = p.torn_write_pm;
        if draw < bound {
            return Some(StorageFaultKind::TornWrite);
        }
        bound += p.bit_flip_pm;
        if draw < bound {
            return Some(StorageFaultKind::BitFlip);
        }
        bound += p.short_read_pm;
        if draw < bound {
            return Some(StorageFaultKind::ShortRead);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_faults() {
        let plan = StoragePlan::none();
        for generation in 0..4u64 {
            for index in 0..100u64 {
                assert_eq!(plan.fault(generation, index), None);
            }
        }
        assert!(plan.is_inert());
    }

    #[test]
    fn faults_are_deterministic_and_generation_sensitive() {
        let plan = StoragePlan::new(42, StorageProfile::heavy());
        for generation in 0..3u64 {
            for index in 0..50u64 {
                assert_eq!(plan.fault(generation, index), plan.fault(generation, index));
            }
        }
        // The same index must be able to draw differently across
        // generations — that is what lets recovery converge.
        let differs =
            (0..500u64).any(|i| plan.fault(0, i).is_some() && plan.fault(0, i) != plan.fault(1, i));
        assert!(differs, "generation must matter");
    }

    #[test]
    fn empirical_rates_match_profile() {
        let profile = StorageProfile::heavy();
        let plan = StoragePlan::new(7, profile);
        let n = 20_000u64;
        let mut counts = [0u32; 3];
        for index in 0..n {
            match plan.fault(0, index) {
                Some(StorageFaultKind::TornWrite) => counts[0] += 1,
                Some(StorageFaultKind::BitFlip) => counts[1] += 1,
                Some(StorageFaultKind::ShortRead) => counts[2] += 1,
                None => {}
            }
        }
        let expect = [profile.torn_write_pm, profile.bit_flip_pm, profile.short_read_pm];
        for (got, pm) in counts.iter().zip(expect) {
            let expected = n as u32 * pm / 1000;
            let slack = expected / 5 + 50;
            assert!(
                got.abs_diff(expected) < slack,
                "kind rate off: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn profiles_resolve_by_name() {
        assert_eq!(StorageProfile::by_name("none"), Some(StorageProfile::none()));
        assert_eq!(StorageProfile::by_name("mild"), Some(StorageProfile::mild()));
        assert_eq!(StorageProfile::by_name("heavy"), Some(StorageProfile::heavy()));
        assert_eq!(StorageProfile::by_name("bursty"), Some(StorageProfile::bursty()));
        assert_eq!(StorageProfile::by_name("raid0"), None);
    }

    #[test]
    fn spec_parsing_mirrors_transport_layer() {
        let p = StoragePlan::parse_spec("42:heavy").unwrap();
        assert_eq!(p.seed(), 42);
        assert_eq!(*p.profile(), StorageProfile::heavy());

        // Bare seed implies mild, like Resilience::parse_spec.
        let p = StoragePlan::parse_spec("13").unwrap();
        assert_eq!(p.seed(), 13);
        assert_eq!(*p.profile(), StorageProfile::mild());

        assert!(StoragePlan::parse_spec("").is_none());
        assert!(StoragePlan::parse_spec("x:mild").is_none());
        assert!(StoragePlan::parse_spec("42:chaotic").is_none());
    }

    #[test]
    #[should_panic(expected = "per mille")]
    fn overfull_profile_rejected() {
        let p = StorageProfile { torn_write_pm: 800, bit_flip_pm: 300, short_read_pm: 0 };
        let _ = StoragePlan::new(0, p);
    }
}
