//! Capped exponential backoff with deterministic jitter.
//!
//! Real retry loops jitter their backoff to avoid thundering herds; a
//! reproduction needs the jitter without the nondeterminism. Here the
//! jitter is a pure function of `(key, attempt)` — the classic
//! "equal jitter" scheme (half fixed, half hashed) over a capped
//! exponential base — so two runs of the same plan back off identically,
//! and the accumulated delay is virtual time (see
//! [`VirtualClock`](crate::VirtualClock)), not wall-clock sleeps.

use crate::hash::mix;

/// Retry budget and backoff shape for one ingestion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per cell (first try included). At least 1.
    pub max_attempts: u32,
    /// Base backoff before the first retry, in virtual milliseconds.
    pub base_ms: u64,
    /// Cap on a single backoff step, in virtual milliseconds.
    pub cap_ms: u64,
    /// Extra penalty added when the failure was a rate-limit rejection.
    pub rate_limit_penalty_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_ms: 100, cap_ms: 5_000, rate_limit_penalty_ms: 1_000 }
    }
}

impl RetryPolicy {
    /// The backoff before retrying attempt `attempt` (0-based: the value
    /// for `attempt = 0` is the delay after the *first* failure), in
    /// virtual milliseconds: `min(cap, base · 2^attempt)`, equal-jittered
    /// deterministically by `key`.
    #[must_use]
    pub fn backoff_ms(&self, key: u64, attempt: u32) -> u64 {
        let exp = self.base_ms.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let full = exp.min(self.cap_ms);
        let half = full / 2;
        // Equal jitter: half fixed + a hashed draw from [0, half].
        half + if half == 0 { 0 } else { mix(key, 0xBAC0_FF00 ^ u64::from(attempt)) % (half + 1) }
    }

    /// Retries available after the first attempt.
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        self.max_attempts.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy::default();
        for attempt in 0..10 {
            let a = p.backoff_ms(99, attempt);
            let b = p.backoff_ms(99, attempt);
            assert_eq!(a, b);
            assert!(a <= p.cap_ms, "attempt {attempt}: {a} > cap");
        }
    }

    #[test]
    fn backoff_grows_then_saturates() {
        let p =
            RetryPolicy { max_attempts: 8, base_ms: 100, cap_ms: 1_000, rate_limit_penalty_ms: 0 };
        // The jittered value lives in [full/2, full]; the deterministic
        // lower bound therefore doubles until the cap kicks in.
        assert!(p.backoff_ms(1, 0) >= 50 && p.backoff_ms(1, 0) <= 100);
        assert!(p.backoff_ms(1, 2) >= 200 && p.backoff_ms(1, 2) <= 400);
        assert!(p.backoff_ms(1, 9) >= 500 && p.backoff_ms(1, 9) <= 1_000);
    }

    #[test]
    fn jitter_varies_by_key() {
        let p = RetryPolicy::default();
        let distinct: std::collections::HashSet<u64> =
            (0..32u64).map(|k| p.backoff_ms(k, 3)).collect();
        assert!(distinct.len() > 1, "jitter must depend on the key");
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_ms: 1 << 40,
            cap_ms: u64::MAX,
            rate_limit_penalty_ms: 0,
        };
        let v = p.backoff_ms(5, 63);
        assert!(v >= (u64::MAX / 2) - 1);
    }

    #[test]
    fn zero_base_backs_off_zero() {
        let p = RetryPolicy { max_attempts: 4, base_ms: 0, cap_ms: 100, rate_limit_penalty_ms: 0 };
        assert_eq!(p.backoff_ms(1, 0), 0);
    }
}
