//! Seeded, schedule-independent fault injection.
//!
//! A [`FaultPlan`] answers one question: *what goes wrong on attempt `n`
//! of cell `key`?* The answer is a pure function of `(seed, key, attempt)`
//! — nothing else — so the same plan produces the same fault stream
//! whether the crawl runs on one thread or eight, in one process or
//! resumed across two. Probabilities are expressed in integer per-mille to
//! keep the decision path free of floating point.
//!
//! The four fault kinds mirror what live-platform audits actually see
//! (flaky transports, 429 bursts, half-rendered result pages, rank
//! sequences mangled by scraping):
//!
//! - [`FaultKind::Transient`]: the request fails; retryable.
//! - [`FaultKind::RateLimited`]: the platform throttles; retryable with a
//!   stiffer backoff penalty.
//! - [`FaultKind::Truncated`]: the page arrives but only the top half of
//!   the results rendered; the (still contiguous) prefix is usable.
//! - [`FaultKind::Corrupted`]: the page arrives with a mangled rank
//!   sequence; the parser must reject it and quarantine the cell.

use crate::hash::mix;

/// What the injected failure looks like to the ingestion layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Request-level failure (timeout, reset); nothing arrives.
    Transient,
    /// Throttled by the platform; nothing arrives, back off harder.
    RateLimited,
    /// The page arrives truncated to its top half.
    Truncated,
    /// The page arrives with a corrupted (duplicate/gapped) rank sequence.
    Corrupted,
}

impl FaultKind {
    /// Stable lowercase label (used as the `kind` arg of
    /// `resilience.fault` trace instants).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::RateLimited => "rate_limited",
            FaultKind::Truncated => "truncated",
            FaultKind::Corrupted => "corrupted",
        }
    }
}

/// Per-mille probabilities of each fault kind per attempt. The remainder
/// up to 1000 is a clean response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProfile {
    /// Probability (per mille) of a transient failure.
    pub transient_pm: u32,
    /// Probability (per mille) of a rate-limit rejection.
    pub rate_limited_pm: u32,
    /// Probability (per mille) of a truncated page.
    pub truncated_pm: u32,
    /// Probability (per mille) of a corrupted rank sequence.
    pub corrupted_pm: u32,
}

impl FaultProfile {
    /// No faults at all — the plan is inert and the pipeline behaves
    /// exactly as if no resilience layer existed.
    #[must_use]
    pub const fn none() -> Self {
        Self { transient_pm: 0, rate_limited_pm: 0, truncated_pm: 0, corrupted_pm: 0 }
    }

    /// Occasional hiccups: the crawl recovers almost everything through
    /// retries; a few cells degrade.
    #[must_use]
    pub const fn mild() -> Self {
        Self { transient_pm: 80, rate_limited_pm: 30, truncated_pm: 20, corrupted_pm: 10 }
    }

    /// A bad day: heavy transient failure and visible data loss. Retry
    /// budgets run out, pages truncate and corrupt, breakers may trip.
    #[must_use]
    pub const fn heavy() -> Self {
        Self { transient_pm: 250, rate_limited_pm: 100, truncated_pm: 60, corrupted_pm: 40 }
    }

    /// Rate-limit dominated: consecutive attempts keep drawing 429s, which
    /// is how throttling bursts present in practice.
    #[must_use]
    pub const fn bursty() -> Self {
        Self { transient_pm: 50, rate_limited_pm: 300, truncated_pm: 10, corrupted_pm: 10 }
    }

    /// Resolves a profile by name (`none`, `mild`, `heavy`, `bursty`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "mild" => Some(Self::mild()),
            "heavy" => Some(Self::heavy()),
            "bursty" => Some(Self::bursty()),
            _ => None,
        }
    }

    /// Total per-mille probability of *any* fault per attempt.
    #[must_use]
    pub fn total_pm(&self) -> u32 {
        self.transient_pm + self.rate_limited_pm + self.truncated_pm + self.corrupted_pm
    }

    /// Whether this profile can ever inject a fault.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.total_pm() == 0
    }
}

/// A seeded fault plan: the deterministic source of everything that goes
/// wrong during one ingestion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
}

impl FaultPlan {
    /// A plan injecting faults per `profile`, streamed from `seed`.
    #[must_use]
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        assert!(profile.total_pm() <= 1000, "fault probabilities exceed 1000 per mille");
        Self { seed, profile }
    }

    /// The inert plan: never injects anything.
    #[must_use]
    pub fn none() -> Self {
        Self::new(0, FaultProfile::none())
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's fault profile.
    #[must_use]
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Whether the plan can ever inject a fault.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.profile.is_inert()
    }

    /// The fault injected on attempt `attempt` (0-based) of cell `key`, or
    /// `None` for a clean response. Pure in `(seed, key, attempt)`.
    #[must_use]
    pub fn fault(&self, key: u64, attempt: u32) -> Option<FaultKind> {
        if self.profile.is_inert() {
            return None;
        }
        let draw = (mix(mix(self.seed, key), u64::from(attempt) ^ 0xA77E_0000) % 1000) as u32;
        let p = &self.profile;
        let mut bound = p.transient_pm;
        if draw < bound {
            return Some(FaultKind::Transient);
        }
        bound += p.rate_limited_pm;
        if draw < bound {
            return Some(FaultKind::RateLimited);
        }
        bound += p.truncated_pm;
        if draw < bound {
            return Some(FaultKind::Truncated);
        }
        bound += p.corrupted_pm;
        if draw < bound {
            return Some(FaultKind::Corrupted);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_faults() {
        let plan = FaultPlan::none();
        for key in 0..100u64 {
            for attempt in 0..8 {
                assert_eq!(plan.fault(key, attempt), None);
            }
        }
    }

    #[test]
    fn faults_are_deterministic_and_key_local() {
        let plan = FaultPlan::new(42, FaultProfile::heavy());
        for key in 0..50u64 {
            for attempt in 0..4 {
                assert_eq!(plan.fault(key, attempt), plan.fault(key, attempt));
            }
        }
        // Different seeds give different streams somewhere.
        let other = FaultPlan::new(43, FaultProfile::heavy());
        let differs = (0..200u64).any(|k| plan.fault(k, 0) != other.fault(k, 0));
        assert!(differs, "seed must matter");
    }

    #[test]
    fn empirical_rates_match_profile() {
        let profile = FaultProfile::heavy();
        let plan = FaultPlan::new(7, profile);
        let n = 20_000u64;
        let mut counts = [0u32; 4];
        let mut clean = 0u32;
        for key in 0..n {
            match plan.fault(key, 0) {
                Some(FaultKind::Transient) => counts[0] += 1,
                Some(FaultKind::RateLimited) => counts[1] += 1,
                Some(FaultKind::Truncated) => counts[2] += 1,
                Some(FaultKind::Corrupted) => counts[3] += 1,
                None => clean += 1,
            }
        }
        let expect = [
            profile.transient_pm,
            profile.rate_limited_pm,
            profile.truncated_pm,
            profile.corrupted_pm,
        ];
        for (got, pm) in counts.iter().zip(expect) {
            let expected = n as u32 * pm / 1000;
            let slack = expected / 5 + 50;
            assert!(
                got.abs_diff(expected) < slack,
                "kind rate off: got {got}, expected ~{expected}"
            );
        }
        assert!(clean > 0);
    }

    #[test]
    fn profiles_resolve_by_name() {
        assert_eq!(FaultProfile::by_name("none"), Some(FaultProfile::none()));
        assert_eq!(FaultProfile::by_name("mild"), Some(FaultProfile::mild()));
        assert_eq!(FaultProfile::by_name("heavy"), Some(FaultProfile::heavy()));
        assert_eq!(FaultProfile::by_name("bursty"), Some(FaultProfile::bursty()));
        assert_eq!(FaultProfile::by_name("chaotic-evil"), None);
    }

    #[test]
    #[should_panic(expected = "per mille")]
    fn overfull_profile_rejected() {
        let p = FaultProfile {
            transient_pm: 800,
            rate_limited_pm: 300,
            truncated_pm: 0,
            corrupted_pm: 0,
        };
        let _ = FaultPlan::new(0, p);
    }
}
