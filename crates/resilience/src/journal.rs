//! An in-memory write-ahead journal for interruptible ingestion.
//!
//! A months-long crawl dies mid-flight — the process is killed, the
//! machine reboots — and the expensive part is the cells already
//! retrieved. The journal records each cell's *final disposition* as it
//! completes; a resumed run replays journaled cells instead of re-running
//! them and only executes the remainder. Because every cell's outcome is
//! deterministic, a crawl interrupted at any point and resumed from its
//! journal reconstructs byte-identical observations, statistics, and
//! cubes (see `tests/chaos.rs` at the workspace root).
//!
//! The journal is deliberately storage-agnostic: an ordered map from a
//! stable `u64` cell key to an arbitrary payload. Persistence (serializing
//! entries to disk between runs) layers on top without touching consumers.

use std::collections::HashMap;

/// Append-only journal of completed work, keyed by stable cell key.
#[derive(Debug, Clone, Default)]
pub struct Journal<T> {
    entries: Vec<(u64, T)>,
    index: HashMap<u64, usize>,
}

impl<T> Journal<T> {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        Self { entries: Vec::new(), index: HashMap::new() }
    }

    /// Records the final disposition of cell `key`. Keys must be unique:
    /// the journal keeps the first record (the write-ahead rule: what was
    /// journaled happened) and hands a duplicate back as `Some(rejected)`.
    /// A rejected value means the run executed a cell it should have
    /// replayed — callers must decide whether that is fatal, not drop it
    /// on the floor.
    #[must_use = "a rejected value means a completed cell was re-run; callers must audit it"]
    pub fn append(&mut self, key: u64, value: T) -> Option<T> {
        if self.index.contains_key(&key) {
            return Some(value);
        }
        self.index.insert(key, self.entries.len());
        self.entries.push((key, value));
        None
    }

    /// The journaled disposition of `key`, if completed.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&T> {
        self.index.get(&key).map(|&i| &self.entries[i].1)
    }

    /// Whether `key` has completed.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Number of completed cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in append (completion) order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_replays() {
        let mut j: Journal<&str> = Journal::new();
        assert!(j.is_empty());
        assert_eq!(j.append(1, "one"), None);
        assert_eq!(j.append(2, "two"), None);
        assert_eq!(j.len(), 2);
        assert!(j.contains(1));
        assert_eq!(j.get(2), Some(&"two"));
        assert_eq!(j.get(3), None);
        let order: Vec<u64> = j.iter().map(|(k, _)| k).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn double_append_keeps_first_and_returns_rejected() {
        let mut j: Journal<u8> = Journal::new();
        assert_eq!(j.append(7, 1), None);
        assert_eq!(j.append(7, 2), Some(2), "duplicate must come back to the caller");
        assert_eq!(j.len(), 1);
        assert_eq!(j.get(7), Some(&1), "write-ahead rule: the first record wins");
    }
}
