//! Stable, zero-dependency hashing for fault keys.
//!
//! Fault injection must be *byte-deterministic at any thread count*, so a
//! cell's fault stream may only depend on stable identity — query and city
//! names, participant coordinates — never on `HashMap` iteration order,
//! scheduling, or `std::hash::RandomState`. These are the same splitmix64
//! finalizer and FNV-1a string fold the simulators use for their own seed
//! derivation, reimplemented here so the crate stays dependency-free.

/// splitmix64 finalizer: mixes two words into one well-distributed word.
#[must_use]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice. This is the checksum the segment log and
/// cube snapshots in `fbox-store` stamp on every record, so its constants
/// are part of the on-disk format and must never change.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Folds a string into a seed: FNV-1a over the bytes, then a final mix so
/// similar strings land far apart.
#[must_use]
pub fn mix_str(seed: u64, s: &str) -> u64 {
    mix(seed, fnv1a(s.as_bytes()))
}

/// A stable cell key from a namespace and two identifying names — the
/// `(query, city)` key of a marketplace cell, for instance. Order matters:
/// `cell_key(ns, a, b) != cell_key(ns, b, a)`.
#[must_use]
pub fn cell_key(namespace: &str, a: &str, b: &str) -> u64 {
    mix_str(mix_str(mix_str(0xFB0C_5EED, namespace), a), b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_stable_and_sensitive() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix(1, 2), mix(1, 3));
    }

    #[test]
    fn mix_str_distinguishes_similar_names() {
        let a = mix_str(7, "Lawn Mowing");
        let b = mix_str(7, "Lawn Mowing ");
        let c = mix_str(8, "Lawn Mowing");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Offset basis for the empty input, and the classic "a" vector —
        // these pin the on-disk checksum constants.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn cell_key_is_order_sensitive() {
        assert_ne!(cell_key("crawl", "a", "b"), cell_key("crawl", "b", "a"));
        assert_ne!(cell_key("crawl", "a", "b"), cell_key("study", "a", "b"));
        assert_eq!(cell_key("crawl", "a", "b"), cell_key("crawl", "a", "b"));
    }
}
