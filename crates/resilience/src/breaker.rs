//! A deterministic circuit breaker.
//!
//! When a platform starts failing a whole region (an IP ban, a city-level
//! outage), hammering every remaining cell with full retry budgets wastes
//! the crawl's time budget and invites harder bans. The classic answer is
//! a circuit breaker: after `threshold` *consecutive* failures the circuit
//! **opens** and subsequent cells are skipped outright; after `cooldown`
//! skipped cells it goes **half-open** and lets one probe through — a
//! success closes the circuit, a failure re-opens it.
//!
//! Determinism: the breaker is a sequential state machine, so its verdicts
//! depend on the *order* it is driven in. Consumers must drive it in
//! canonical cell order (the crawl grid order), never in thread-completion
//! order. That works because every failure here is plan-injected: whether
//! a cell would fail is known from the [`FaultPlan`](crate::FaultPlan)
//! without executing the expensive query, so the crawl evaluates breaker
//! admission in its deterministic planning pass and only then fans the
//! admitted cells out to the worker pool.

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the circuit.
    pub threshold: u32,
    /// Cells skipped while open before a half-open probe is allowed.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { threshold: 3, cooldown: 5 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { remaining: u32 },
    HalfOpen,
}

/// One circuit (the crawl keeps one per city).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: State,
    trips: u32,
    /// Region label attached to trace instants (`breaker.open` /
    /// `breaker.half_open` / `breaker.close`).
    label: Option<&'static str>,
}

impl CircuitBreaker {
    /// A closed breaker.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        assert!(config.threshold >= 1, "threshold must be at least 1");
        Self { config, state: State::Closed { consecutive_failures: 0 }, trips: 0, label: None }
    }

    /// A closed breaker whose trace instants carry `label` as their
    /// `region` arg — the crawl labels each breaker with its city.
    #[must_use]
    pub fn with_label(config: BreakerConfig, label: &'static str) -> Self {
        Self { label: Some(label), ..Self::new(config) }
    }

    /// Emits a state-transition instant when a trace session is live.
    /// Always driven in canonical grid order (see the module docs), so
    /// the emitted sequence is deterministic.
    fn note(&self, transition: &'static str) {
        if fbox_trace::enabled() {
            fbox_trace::instant_args(transition, |a| {
                if let Some(region) = self.label {
                    a.str("region", region);
                }
                a.u64("trips", u64::from(self.trips));
            });
        }
    }

    /// Asks whether the next cell may run. While open this *consumes* one
    /// cooldown step and returns `false`; when the cooldown is spent the
    /// breaker turns half-open and admits a probe.
    pub fn admit(&mut self) -> bool {
        match self.state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { remaining } => {
                if remaining <= 1 {
                    self.state = State::HalfOpen;
                    self.note("breaker.half_open");
                } else {
                    self.state = State::Open { remaining: remaining - 1 };
                }
                false
            }
        }
    }

    /// Reports the outcome of an admitted cell.
    pub fn record(&mut self, ok: bool) {
        match (self.state, ok) {
            (State::Closed { .. }, true) => {
                self.state = State::Closed { consecutive_failures: 0 };
            }
            (State::Closed { consecutive_failures }, false) => {
                let failures = consecutive_failures + 1;
                if failures >= self.config.threshold {
                    self.trip();
                } else {
                    self.state = State::Closed { consecutive_failures: failures };
                }
            }
            (State::HalfOpen, true) => {
                self.state = State::Closed { consecutive_failures: 0 };
                self.note("breaker.close");
            }
            (State::HalfOpen, false) => self.trip(),
            // `record` without a preceding successful `admit` is a driver
            // bug, but a breaker should never panic a crawl: treat it as
            // a no-op observation.
            (State::Open { .. }, _) => {}
        }
    }

    fn trip(&mut self) {
        self.trips += 1;
        self.state = State::Open { remaining: self.config.cooldown.max(1) };
        self.note("breaker.open");
    }

    /// Whether the circuit is currently open (skipping cells).
    #[must_use]
    pub fn is_open(&self) -> bool {
        matches!(self.state, State::Open { .. })
    }

    /// How many times this circuit tripped open.
    #[must_use]
    pub fn trips(&self) -> u32 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig { threshold: 3, cooldown: 2 })
    }

    #[test]
    fn stays_closed_on_success() {
        let mut b = breaker();
        for _ in 0..10 {
            assert!(b.admit());
            b.record(true);
        }
        assert_eq!(b.trips(), 0);
        assert!(!b.is_open());
    }

    #[test]
    fn interleaved_failures_do_not_trip() {
        let mut b = breaker();
        for _ in 0..10 {
            assert!(b.admit());
            b.record(false);
            assert!(b.admit());
            b.record(true);
        }
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn consecutive_failures_trip_then_cooldown_then_probe() {
        let mut b = breaker();
        for _ in 0..3 {
            assert!(b.admit());
            b.record(false);
        }
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
        // Two cells skipped during cooldown.
        assert!(!b.admit());
        assert!(!b.admit());
        // Half-open probe succeeds → closed again.
        assert!(b.admit());
        b.record(true);
        assert!(!b.is_open());
        // …and the failure streak was reset by the probe.
        assert!(b.admit());
        b.record(false);
        assert!(!b.is_open());
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = breaker();
        for _ in 0..3 {
            b.admit();
            b.record(false);
        }
        assert!(!b.admit());
        assert!(!b.admit());
        assert!(b.admit()); // half-open probe
        b.record(false);
        assert!(b.is_open());
        assert_eq!(b.trips(), 2);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        let _ = CircuitBreaker::new(BreakerConfig { threshold: 0, cooldown: 1 });
    }
}
