//! A virtual clock for retry backoff.
//!
//! The ingestion pipeline is *simulated*: there is no real network to wait
//! on, and real sleeps would (a) make test runtime proportional to the
//! injected fault rate and (b) reintroduce wall-clock reads that the
//! `instant-outside-telemetry` lint bans and that determinism forbids —
//! a backoff measured with `Instant::now()` varies run to run, so any
//! decision derived from it would too. Backoff therefore advances a
//! per-cell [`VirtualClock`]: a plain millisecond counter that the retry
//! loop bumps by each computed backoff. The accumulated simulated time is
//! what lands in telemetry and in the crawl statistics.

/// Simulated time, advanced by retry backoff instead of real sleeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms` simulated milliseconds.
    pub fn advance_ms(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }

    /// Current simulated time in milliseconds since the clock started.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_saturates() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(250);
        c.advance_ms(750);
        assert_eq!(c.now_ms(), 1000);
        c.advance_ms(u64::MAX);
        assert_eq!(c.now_ms(), u64::MAX);
    }
}
