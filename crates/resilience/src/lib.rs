//! # fbox-resilience — deterministic fault injection and graceful degradation
//!
//! The F-Box pipeline reproduces a live-platform audit (EDBT 2020,
//! "Fairness in Online Jobs"), and live audits do not get clean data:
//! requests time out, platforms throttle, result pages arrive half
//! rendered or with mangled rank sequences. This crate gives the
//! ingestion layer ([`fbox-marketplace`]'s crawl and [`fbox-search`]'s
//! study runner) a way to *rehearse* those failures without sacrificing
//! the repository's core contract — byte-identical output at any
//! `FBOX_THREADS`, on any machine, at any interrupt/resume point.
//!
//! The trick that makes resilience and determinism compatible: every
//! failure is **plan-injected**, never observed. A [`FaultPlan`] is a pure
//! function of `(seed, cell key, attempt)`, so each cell's complete
//! retry/backoff/outcome trajectory — its [`CellPlan`] — is computable
//! *before* the expensive query runs. Order-sensitive machinery (the
//! per-city [`CircuitBreaker`]) is driven in canonical grid order during a
//! cheap planning pass; only admitted cells fan out to the worker pool,
//! whose completion order therefore cannot influence any decision.
//! Backoff advances a [`VirtualClock`] rather than sleeping, which keeps
//! tests fast, keeps `Instant::now()` out of library code (the
//! `instant-outside-telemetry` lint stays clean), and makes the
//! accumulated delay itself reproducible.
//!
//! Module map:
//!
//! - [`fault`]: [`FaultPlan`], [`FaultProfile`], [`FaultKind`] — what goes
//!   wrong, when, deterministically.
//! - [`retry`]: [`RetryPolicy`] — capped exponential backoff with
//!   deterministic equal jitter.
//! - [`breaker`]: [`CircuitBreaker`] — per-region trip/cooldown/probe.
//! - [`clock`]: [`VirtualClock`] — simulated backoff time.
//! - [`journal`]: [`Journal`] — append-only completion log enabling
//!   interrupt/resume with byte-identical results.
//! - [`storage`]: [`StoragePlan`], [`StorageProfile`],
//!   [`StorageFaultKind`] — the same discipline applied to the disk under
//!   the `fbox-store` segment log (torn writes, bit flips, short reads).
//! - [`hash`]: stable key derivation (FNV-1a + splitmix64), shared by the
//!   plan and the jitter.
//!
//! The whole bundle is configured by [`Resilience`], constructed either
//! explicitly or from the `FBOX_FAULTS=<seed>:<profile>` environment
//! variable (see [`Resilience::from_env`]). Unset, the layer is inert and
//! the pipeline behaves exactly as it did before this crate existed.

pub mod breaker;
pub mod clock;
pub mod fault;
pub mod hash;
pub mod journal;
pub mod retry;
pub mod storage;

pub use breaker::{BreakerConfig, CircuitBreaker};
pub use clock::VirtualClock;
pub use fault::{FaultKind, FaultPlan, FaultProfile};
pub use journal::Journal;
pub use retry::RetryPolicy;
pub use storage::{StorageFaultKind, StoragePlan, StorageProfile};

/// Environment variable selecting a fault plan: `FBOX_FAULTS=<seed>:<profile>`
/// where `<profile>` is one of `none`, `mild`, `heavy`, `bursty` (e.g.
/// `FBOX_FAULTS=42:mild`). A bare `<seed>` implies the `mild` profile.
pub const FAULTS_ENV: &str = "FBOX_FAULTS";

/// A payload-level fault: the page arrived, but damaged. Unlike
/// [`FaultKind::Transient`]/[`FaultKind::RateLimited`] (which the retry
/// loop consumes), payload faults survive to the ingestion layer, which
/// must degrade gracefully: truncate keeps the valid prefix, corrupt must
/// be detected by validation and quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadFault {
    /// Only the top half of the results rendered.
    Truncate,
    /// The rank sequence is mangled; validation must reject the page.
    Corrupt,
}

/// How a planned cell resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The cell's query runs (on its final attempt), optionally with a
    /// payload fault applied to the fetched page.
    Run(Option<PayloadFault>),
    /// Every attempt failed at the transport level; the retry budget is
    /// spent and the cell becomes a missing observation.
    Exhausted,
}

/// The precomputed trajectory of one cell: how many attempts it takes,
/// how much virtual time it backs off, and how it ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPlan {
    /// Attempts consumed (1 for a clean first try).
    pub attempts: u32,
    /// Retries consumed (`attempts - 1`).
    pub retries: u32,
    /// Total virtual backoff accumulated across retries, in milliseconds.
    pub backoff_ms: u64,
    /// How the cell resolves.
    pub disposition: Disposition,
}

impl CellPlan {
    /// Whether the plan counts as a failure for circuit-breaker purposes.
    /// Exhausted budgets and corrupted payloads are failures (the region
    /// is misbehaving); clean, truncated, and not-offered responses are
    /// not.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(
            self.disposition,
            Disposition::Exhausted | Disposition::Run(Some(PayloadFault::Corrupt))
        )
    }
}

/// The full resilience configuration for one ingestion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    /// What goes wrong, and when.
    pub plan: FaultPlan,
    /// Retry budget and backoff shape.
    pub policy: RetryPolicy,
    /// Per-region circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Stop executing new cells after this many (replayed journal entries
    /// do not count). Used by tests to interrupt a crawl at a
    /// deterministic point; `None` runs to completion.
    pub interrupt_after: Option<usize>,
}

impl Default for Resilience {
    fn default() -> Self {
        Self::none()
    }
}

impl Resilience {
    /// The inert configuration: no faults, so no retries, no backoff, no
    /// breaker activity. The pipeline behaves exactly as if the
    /// resilience layer did not exist.
    #[must_use]
    pub fn none() -> Self {
        Self {
            plan: FaultPlan::none(),
            policy: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            interrupt_after: None,
        }
    }

    /// A configuration injecting faults per `plan`, with default retry and
    /// breaker tuning.
    #[must_use]
    pub fn with_plan(plan: FaultPlan) -> Self {
        Self { plan, ..Self::none() }
    }

    /// Reads [`FAULTS_ENV`] (`FBOX_FAULTS=<seed>:<profile>`). Unset or
    /// unparseable values yield the inert configuration — a malformed
    /// flag must never change pipeline output.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) => Self::parse_spec(&spec).unwrap_or_else(Self::none),
            Err(_) => Self::none(),
        }
    }

    /// Parses a `<seed>:<profile>` spec (or a bare `<seed>`, implying
    /// `mild`). Returns `None` on any syntax error.
    #[must_use]
    pub fn parse_spec(spec: &str) -> Option<Self> {
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        let (seed_str, profile) = match spec.split_once(':') {
            Some((s, p)) => (s, FaultProfile::by_name(p.trim())?),
            None => (spec, FaultProfile::mild()),
        };
        let seed: u64 = seed_str.trim().parse().ok()?;
        Some(Self::with_plan(FaultPlan::new(seed, profile)))
    }

    /// Whether this configuration can ever perturb the pipeline.
    #[must_use]
    pub fn enabled(&self) -> bool {
        !self.plan.is_inert() || self.interrupt_after.is_some()
    }

    /// Plays out the retry loop for cell `key` without running anything:
    /// transient and rate-limit faults consume attempts and accumulate
    /// virtual backoff; the first non-retryable outcome (clean page,
    /// payload fault) resolves the cell; spending the whole budget on
    /// retryable faults exhausts it. Pure in `(self, key)` — this is what
    /// lets the breaker run in a planning pass before any query executes.
    #[must_use]
    pub fn plan_cell(&self, key: u64) -> CellPlan {
        let mut clock = VirtualClock::new();
        let mut attempts = 0u32;
        loop {
            let attempt = attempts;
            attempts += 1;
            match self.plan.fault(key, attempt) {
                None => {
                    return CellPlan {
                        attempts,
                        retries: attempts - 1,
                        backoff_ms: clock.now_ms(),
                        disposition: Disposition::Run(None),
                    };
                }
                Some(FaultKind::Truncated) => {
                    return CellPlan {
                        attempts,
                        retries: attempts - 1,
                        backoff_ms: clock.now_ms(),
                        disposition: Disposition::Run(Some(PayloadFault::Truncate)),
                    };
                }
                Some(FaultKind::Corrupted) => {
                    return CellPlan {
                        attempts,
                        retries: attempts - 1,
                        backoff_ms: clock.now_ms(),
                        disposition: Disposition::Run(Some(PayloadFault::Corrupt)),
                    };
                }
                Some(kind @ (FaultKind::Transient | FaultKind::RateLimited)) => {
                    if attempts >= self.policy.max_attempts {
                        return CellPlan {
                            attempts,
                            retries: attempts - 1,
                            backoff_ms: clock.now_ms(),
                            disposition: Disposition::Exhausted,
                        };
                    }
                    clock.advance_ms(self.policy.backoff_ms(key, attempt));
                    if kind == FaultKind::RateLimited {
                        clock.advance_ms(self.policy.rate_limit_penalty_ms);
                    }
                }
            }
        }
    }

    /// [`Self::plan_cell`], additionally narrating the planned fault
    /// episode as trace instants under the caller's current span:
    /// `resilience.fault` per injected fault, `resilience.retry` per
    /// scheduled backoff (with its virtual delay), and
    /// `resilience.exhausted` when the budget is spent. A no-op without
    /// an active trace session; the returned plan is identical either
    /// way. Called from worker closures, so it must never panic.
    #[must_use]
    pub fn plan_cell_traced(&self, key: u64) -> CellPlan {
        let cell = self.plan_cell(key);
        if !fbox_trace::enabled() {
            return cell;
        }
        for attempt in 0..cell.attempts {
            let Some(kind) = self.plan.fault(key, attempt) else { continue };
            fbox_trace::instant_args("resilience.fault", |a| {
                a.u64("attempt", u64::from(attempt));
                a.str("kind", kind.label());
            });
            // A retryable fault schedules a backoff unless it was the
            // budget-spending final attempt.
            if matches!(kind, FaultKind::Transient | FaultKind::RateLimited)
                && attempt + 1 < cell.attempts
            {
                let mut backoff_ms = self.policy.backoff_ms(key, attempt);
                if kind == FaultKind::RateLimited {
                    backoff_ms += self.policy.rate_limit_penalty_ms;
                }
                fbox_trace::instant_args("resilience.retry", |a| {
                    a.u64("attempt", u64::from(attempt));
                    a.u64("backoff_ms", backoff_ms);
                });
            }
        }
        if cell.disposition == Disposition::Exhausted {
            fbox_trace::instant_args("resilience.exhausted", |a| {
                a.u64("attempts", u64::from(cell.attempts));
            });
        }
        cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_runs_every_cell_cleanly() {
        let r = Resilience::none();
        for key in 0..64u64 {
            let cell = r.plan_cell(key);
            assert_eq!(
                cell,
                CellPlan {
                    attempts: 1,
                    retries: 0,
                    backoff_ms: 0,
                    disposition: Disposition::Run(None)
                }
            );
        }
        assert!(!r.enabled());
    }

    #[test]
    fn plans_are_deterministic() {
        let r = Resilience::with_plan(FaultPlan::new(9, FaultProfile::heavy()));
        for key in 0..512u64 {
            assert_eq!(r.plan_cell(key), r.plan_cell(key));
        }
    }

    #[test]
    fn heavy_profile_produces_every_disposition() {
        let r = Resilience::with_plan(FaultPlan::new(1, FaultProfile::heavy()));
        let mut clean = 0u32;
        let mut truncated = 0u32;
        let mut corrupted = 0u32;
        let mut exhausted = 0u32;
        let mut retried = 0u32;
        for key in 0..4096u64 {
            let cell = r.plan_cell(key);
            assert!(cell.attempts >= 1 && cell.attempts <= r.policy.max_attempts);
            assert_eq!(cell.retries, cell.attempts - 1);
            if cell.retries > 0 {
                retried += 1;
                assert!(cell.backoff_ms > 0, "retries must cost virtual time");
            } else {
                assert_eq!(cell.backoff_ms, 0);
            }
            match cell.disposition {
                Disposition::Run(None) => clean += 1,
                Disposition::Run(Some(PayloadFault::Truncate)) => truncated += 1,
                Disposition::Run(Some(PayloadFault::Corrupt)) => corrupted += 1,
                Disposition::Exhausted => exhausted += 1,
            }
        }
        assert!(clean > 0, "heavy profile still mostly succeeds");
        assert!(truncated > 0);
        assert!(corrupted > 0);
        assert!(exhausted > 0, "budget of {} must exhaust sometimes", r.policy.max_attempts);
        assert!(retried > 0);
    }

    #[test]
    fn exhausted_cell_spends_the_whole_budget() {
        // All faults transient → every cell exhausts after max_attempts.
        let profile = FaultProfile {
            transient_pm: 1000,
            rate_limited_pm: 0,
            truncated_pm: 0,
            corrupted_pm: 0,
        };
        let r = Resilience::with_plan(FaultPlan::new(3, profile));
        let cell = r.plan_cell(17);
        assert_eq!(cell.disposition, Disposition::Exhausted);
        assert_eq!(cell.attempts, r.policy.max_attempts);
        assert!(cell.is_failure());
    }

    #[test]
    fn rate_limits_back_off_harder_than_transients() {
        let transient = FaultProfile {
            transient_pm: 1000,
            rate_limited_pm: 0,
            truncated_pm: 0,
            corrupted_pm: 0,
        };
        let limited = FaultProfile {
            transient_pm: 0,
            rate_limited_pm: 1000,
            truncated_pm: 0,
            corrupted_pm: 0,
        };
        let key = 11;
        let a = Resilience::with_plan(FaultPlan::new(5, transient)).plan_cell(key);
        let b = Resilience::with_plan(FaultPlan::new(5, limited)).plan_cell(key);
        assert_eq!(a.retries, b.retries);
        let penalty = RetryPolicy::default().rate_limit_penalty_ms;
        assert_eq!(b.backoff_ms, a.backoff_ms + u64::from(a.retries) * penalty);
    }

    #[test]
    fn failure_classification() {
        let run = |d| CellPlan { attempts: 1, retries: 0, backoff_ms: 0, disposition: d };
        assert!(run(Disposition::Exhausted).is_failure());
        assert!(run(Disposition::Run(Some(PayloadFault::Corrupt))).is_failure());
        assert!(!run(Disposition::Run(Some(PayloadFault::Truncate))).is_failure());
        assert!(!run(Disposition::Run(None)).is_failure());
    }

    #[test]
    fn spec_parsing() {
        let r = Resilience::parse_spec("42:mild").unwrap();
        assert_eq!(r.plan.seed(), 42);
        assert_eq!(*r.plan.profile(), FaultProfile::mild());

        let r = Resilience::parse_spec(" 7 : heavy ").unwrap();
        assert_eq!(r.plan.seed(), 7);
        assert_eq!(*r.plan.profile(), FaultProfile::heavy());

        // Bare seed implies mild.
        let r = Resilience::parse_spec("13").unwrap();
        assert_eq!(r.plan.seed(), 13);
        assert_eq!(*r.plan.profile(), FaultProfile::mild());

        assert!(Resilience::parse_spec("").is_none());
        assert!(Resilience::parse_spec("x:mild").is_none());
        assert!(Resilience::parse_spec("42:chaotic").is_none());
        assert!(Resilience::parse_spec("42:").is_none());
    }
}
