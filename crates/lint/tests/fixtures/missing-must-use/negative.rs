// Fixture: constructors and functions that must NOT be flagged.

pub struct Measure {
    scale: f64,
}

impl Measure {
    #[must_use]
    pub fn new(scale: f64) -> Self {
        Measure { scale }
    }

    /// Doc comments between the attribute and the fn are fine.
    #[must_use]
    pub fn from_scale(scale: f64) -> Self {
        Measure { scale }
    }

    /// Not a constructor name.
    pub fn compute(&self) -> f64 {
        self.scale * 2.0
    }

    /// Constructor-shaped name but no return value.
    pub fn with_side_effects(&mut self, scale: f64) {
        self.scale = scale;
    }

    /// Private constructors are the implementation's own business.
    fn new_inner(scale: f64) -> Self {
        Measure { scale }
    }
}
