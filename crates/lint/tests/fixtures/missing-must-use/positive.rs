// Fixture: pure measure constructors without `#[must_use]`.

pub struct Histogram {
    counts: Vec<f64>,
}

impl Histogram {
    pub fn new(bins: usize) -> Self { //~ missing-must-use
        Histogram { counts: vec![0.0; bins] }
    }

    pub fn from_values(values: &[f64]) -> Self { //~ missing-must-use
        Histogram { counts: values.to_vec() }
    }

    #[derive_stand_in]
    pub fn with_bins(self, bins: usize) -> Self { //~ missing-must-use
        Histogram { counts: vec![0.0; bins] }
    }

    pub(crate) fn from_counts(counts: Vec<f64>) -> Self { //~ missing-must-use
        Histogram { counts }
    }
}
