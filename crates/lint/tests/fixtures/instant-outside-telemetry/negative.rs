// Fixture: clock reads that must NOT be flagged — telemetry-mediated
// timing and test code.

pub fn timed_with_telemetry(registry: &fbox_telemetry::Registry) {
    // spans read the clock inside crates/telemetry, behind the registry
    let _span = fbox_telemetry::SpanGuard::enter(registry, "cube.build");
    let timer = registry.histogram("measure.emd").timer();
    timer.observe();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_themselves() {
        let start = std::time::Instant::now();
        assert!(start.elapsed().as_nanos() < u128::MAX);
    }
}
