// Fixture: ad-hoc clock reads (this fixture stands in for any file
// outside crates/telemetry; the telemetry allowance is path scoping in
// Lint.toml, which the engine applies, not the rule).

use std::time::Instant;

pub fn timed_build() -> u128 {
    let start = Instant::now(); //~ instant-outside-telemetry
    start.elapsed().as_nanos()
}

pub fn fully_qualified() -> std::time::Instant {
    std::time::Instant::now() //~ instant-outside-telemetry
}
