// Fixture: comparisons that must NOT be flagged — integer literals,
// identifier-vs-identifier, epsilon helpers, strings/comments, tests.

pub fn approx_zero(x: f64) -> bool {
    // the sanctioned form: x == 0.0 becomes an epsilon band
    x.abs() <= 1e-12
}

pub fn ints_are_exact(n: usize, k: u64) -> bool {
    n == 0 && k != 10
}

pub fn idents_not_flagged(a: f64, b: f64) -> bool {
    // needs type knowledge, deliberately out of lexical scope
    a == b
}

pub fn strings_not_flagged() -> &'static str {
    "total == 0.0"
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_comparison_is_deliberate_in_tests() {
        assert!(super::approx_zero(0.0) == (0.0 == 0.0));
    }
}
