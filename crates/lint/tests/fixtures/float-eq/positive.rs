// Fixture: raw float-literal equality in runtime code.

pub fn is_empty(total: f64) -> bool {
    total == 0.0 //~ float-eq
}

pub fn check(mass: f64, share: f32) -> bool {
    if mass != 1.0 { //~ float-eq
        return false;
    }
    0.5f32 == share //~ float-eq
}

pub fn exponent_form(x: f64) -> bool {
    x == 1e-9 //~ float-eq
}
