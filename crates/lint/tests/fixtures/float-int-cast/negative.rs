// Fixture: casts that must NOT be flagged — int→float widening, plain
// identifier casts (type unknowable lexically), float→float rounding,
// non-rounding calls, and audited helpers under an inline allow.

pub fn int_to_float(n: usize) -> f64 {
    n as f64
}

pub fn ident_cast(n: u64) -> u32 {
    n as u32
}

pub fn float_to_float(x: f64) -> f64 {
    x.round() as f64
}

pub fn plain_call(v: &[f64]) -> usize {
    v.len() as usize
}

/// The audited single conversion point carries a justified suppression.
pub fn floor_index(x: f64) -> usize {
    debug_assert!(x.is_finite() && x >= 0.0);
    x.floor() as usize // fbox-lint: allow(float-int-cast) audited helper
}
