// Fixture: silent float→int truncation in rank arithmetic.

pub fn literal_cast() -> usize {
    0.75 as usize //~ float-int-cast
}

pub fn quota_floor(quotas: &[f64]) -> Vec<usize> {
    quotas.iter().map(|q| q.floor() as usize).collect() //~ float-int-cast
}

pub fn scaled_mass(x: f64, total: f64, scale: u64) -> u64 {
    ((x / total) * scale as f64).round() as u64 //~ float-int-cast
}

pub fn bucket(time_min: f64) -> u64 {
    time_min.ceil() as u64 //~ float-int-cast
}
