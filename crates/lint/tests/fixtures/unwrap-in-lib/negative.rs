// Fixture: unwraps that must NOT be flagged — test-gated code, fn
// definitions, path references, and comment/string mentions.

pub fn shipped(x: Option<f64>) -> f64 {
    // a comment saying .unwrap() is fine
    let msg = "calling .unwrap() here would panic";
    x.unwrap_or(0.0) + msg.len() as f64
}

pub struct Wrapper(f64);

impl Wrapper {
    /// A method *named* unwrap is a definition, not a call.
    pub fn unwrap(self) -> f64 {
        self.0
    }
}

pub fn by_path(values: Vec<Option<f64>>) -> Vec<f64> {
    values.into_iter().map(Option::unwrap_or_default).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
