// Fixture: `.unwrap()` in library code. Lines tagged `//~ <rule>` must
// be flagged, nothing else.

pub fn cell_value(cells: &[f64], idx: usize) -> f64 {
    let first = cells.first().unwrap(); //~ unwrap-in-lib
    let last = cells.get(idx).copied().unwrap(); //~ unwrap-in-lib
    first + last
}

pub fn parse_rank(text: &str) -> usize {
    text.trim().parse().unwrap() //~ unwrap-in-lib
}
