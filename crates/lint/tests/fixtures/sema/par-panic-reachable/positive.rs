//! Positive: a panic two call-graph hops below a parallel closure
//! (`par_map` closure → `normalize` → `checked_double`).

pub fn shard(pool: &Pool, xs: &[u64]) -> Vec<u64> {
    pool.par_map(xs, |x| normalize(*x))
}

fn normalize(x: u64) -> u64 {
    checked_double(x)
}

fn checked_double(x: u64) -> u64 {
    x.checked_mul(2).unwrap() //~ par-panic-reachable
}
