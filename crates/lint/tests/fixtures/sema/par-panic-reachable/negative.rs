//! Negative: the parallel cone panics only through the sanctioned
//! `expect("invariant")` form; the bare `unwrap` sits in a serial
//! iterator closure that is not a parallel root.

pub fn shard(pool: &Pool, xs: &[u64]) -> Vec<u64> {
    pool.par_map(xs, |x| normalize(*x))
}

fn normalize(x: u64) -> u64 {
    x.checked_mul(2).expect("shards are bounded well below u64::MAX")
}

/// Serial helper: its closure is not a parallel root.
pub fn serial_sum(xs: &[u64]) -> u64 {
    xs.iter().map(|x| x.checked_add(1).unwrap()).sum()
}
