//! Negative: clock reads exist but no determinism root reaches them.

pub fn run_study() -> u64 {
    42
}

/// Telemetry-style helper, never called from the study root.
pub fn now_nanos() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
}
