//! Positive: a wall-clock read two call-graph hops below the
//! determinism root (`run_study` → `measure` → `stamp`).

pub fn run_study() -> u64 {
    measure()
}

fn measure() -> u64 {
    stamp()
}

fn stamp() -> u64 {
    let start = std::time::Instant::now(); //~ det-wall-clock
    start.elapsed().as_nanos() as u64
}
