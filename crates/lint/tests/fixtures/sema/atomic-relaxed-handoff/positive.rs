//! Positive: a worker publishes a flag with `Relaxed` while a reader in
//! another function loads it — the handoff needs Release/Acquire.

pub fn shard(pool: &Pool, xs: &[u64], ready: &AtomicBool) {
    pool.par_map(xs, |x| {
        ready.store(true, Ordering::Relaxed); //~ atomic-relaxed-handoff
        *x
    });
}

pub fn reader(ready: &AtomicBool) -> bool {
    ready.load(Ordering::Acquire)
}
