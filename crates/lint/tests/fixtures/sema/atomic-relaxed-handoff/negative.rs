//! Negative: Release/Acquire publication is correct, and Relaxed RMW
//! claim counters have no ordering requirement.

pub fn shard(pool: &Pool, xs: &[u64], ready: &AtomicBool, hits: &AtomicU64) {
    pool.par_map(xs, |x| {
        hits.fetch_add(1, Ordering::Relaxed);
        ready.store(true, Ordering::Release);
        *x
    });
}

pub fn reader(ready: &AtomicBool) -> bool {
    ready.load(Ordering::Acquire)
}
