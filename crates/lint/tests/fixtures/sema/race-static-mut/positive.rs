//! Positive: a `static mut` declaration plus a write to it two
//! call-graph hops below a parallel closure
//! (`par_map` closure → `bump` → `record`).

static mut HITS: u64 = 0; //~ race-static-mut

pub fn shard(pool: &Pool, xs: &[u64]) -> Vec<u64> {
    pool.par_map(xs, |x| bump(*x))
}

fn bump(x: u64) -> u64 {
    record();
    x
}

fn record() {
    // SAFETY: fixture code, never executed.
    unsafe { HITS += 1 } //~ race-static-mut
}
