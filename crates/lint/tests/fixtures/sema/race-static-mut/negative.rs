//! Negative: shared state behind a sync type, and a `static mut`
//! confined to test-only code.

use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL: AtomicU64 = AtomicU64::new(0);

pub fn shard(pool: &Pool, xs: &[u64]) -> Vec<u64> {
    pool.par_map(xs, |x| bump(*x))
}

fn bump(x: u64) -> u64 {
    TOTAL.fetch_add(1, Ordering::Relaxed);
    x
}

#[cfg(test)]
mod tests {
    static mut SCRATCH: u64 = 0;

    #[test]
    fn scratch_is_test_only() {
        // SAFETY: single-threaded test.
        unsafe { SCRATCH = 1 }
    }
}
