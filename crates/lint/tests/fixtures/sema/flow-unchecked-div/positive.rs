//! Positive: the mean helper divides by a count that no zero test
//! dominates — reachable transitively from the determinism root
//! (`run_study` → `normalize` → `mean`).

pub fn run_study(xs: &[f64]) -> f64 {
    normalize(xs)
}

fn normalize(xs: &[f64]) -> f64 {
    mean(xs)
}

fn mean(xs: &[f64]) -> f64 {
    let n = xs.len();
    let total: f64 = xs.iter().sum();
    total / n as f64 //~ flow-unchecked-div
}
