//! Negative: every division either sits under a dominating zero test,
//! divides by a clamped value, or derives its divisor from a variable
//! the guard blesses.

pub fn run_study(xs: &[f64], span: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len();
    let total: f64 = xs.iter().sum();
    let avg = total / n as f64;
    avg / span.max(1e-9)
}
