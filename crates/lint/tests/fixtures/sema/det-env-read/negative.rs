//! Negative: env reads exist but sit outside the determinism cone —
//! in a helper no root reaches, and in test-only code.

pub fn run_study() -> usize {
    1
}

/// CLI-only entry point, never called from the study root.
pub fn cli_verbosity() -> bool {
    std::env::var("FIXTURE_VERBOSE").is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn reads_env_in_tests_only() {
        assert!(std::env::var("NO_SUCH_VAR").is_err());
    }
}
