//! Positive: an environment read two call-graph hops below the
//! determinism root (`run_study` → `configure` → `thread_budget`).

pub fn run_study() -> usize {
    configure()
}

fn configure() -> usize {
    thread_budget().max(1)
}

fn thread_budget() -> usize {
    std::env::var("FIXTURE_THREADS") //~ det-env-read
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
