//! Negative: the determinism cone iterates only ordered containers;
//! hash iteration exists but is outside the cone (an unreachable
//! helper and test-only code).

use std::collections::{BTreeMap, HashMap};

pub fn run_study(xs: &[u64]) -> u64 {
    let mut ordered: BTreeMap<u64, u64> = BTreeMap::new();
    for &x in xs {
        *ordered.entry(x).or_insert(0) += 1;
    }
    ordered.values().sum()
}

/// Never called from the root: hash iteration here is outside the cone.
pub fn debug_dump(counts: &HashMap<u64, u64>) -> u64 {
    counts.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_counts() {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        counts.insert(1, 2);
        assert_eq!(debug_dump(&counts), 2);
    }
}
