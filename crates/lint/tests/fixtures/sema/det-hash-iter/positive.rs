//! Positive: a `HashMap` iteration two call-graph hops below the
//! determinism root — reachable only transitively
//! (`run_study` → `collect` → `tally`).

use std::collections::HashMap;

pub fn run_study(xs: &[u64]) -> u64 {
    collect(xs)
}

fn collect(xs: &[u64]) -> u64 {
    tally(xs)
}

fn tally(xs: &[u64]) -> u64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut best = 0;
    for (k, v) in &counts { //~ det-hash-iter
        best = best.max(k + v);
    }
    best
}
