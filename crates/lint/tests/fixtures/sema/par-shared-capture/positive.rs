//! Positive: a parallel worker increments a counter captured from the
//! enclosing function — the winning write depends on scheduling.

pub fn shard(pool: &Pool, xs: &[f64]) -> f64 {
    let mut hits = 0usize;
    pool.par_map(xs, |x| {
        hits += 1; //~ par-shared-capture
        x * 2.0
    });
    hits as f64
}
