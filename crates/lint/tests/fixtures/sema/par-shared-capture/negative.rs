//! Negative: worker-local accumulation and lock-synchronized writes are
//! both fine; a serial iterator closure is not a parallel worker.

pub fn shard(pool: &Pool, xs: &[f64], total: &Mutex<f64>) {
    pool.par_map(xs, |x| {
        let mut acc = 0.0;
        acc += *x;
        *total.lock().expect("poisoned") += acc;
        acc
    });
}

/// Serial helper: its closure captures and mutates, but never runs on a
/// worker thread.
pub fn serial_count(xs: &[f64]) -> usize {
    let mut hits = 0usize;
    xs.iter().for_each(|_| hits += 1);
    hits
}
