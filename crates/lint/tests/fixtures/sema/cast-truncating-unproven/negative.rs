//! Negative: every narrowing cast is proven lossless — the integer is
//! clamped under the target's max first, and the float is guarded
//! finite and non-negative before the conversion.

pub fn run_study(xs: &[f64]) -> u64 {
    collect(xs)
}

fn collect(xs: &[f64]) -> u64 {
    let small = digest(xs.len() as u64);
    u64::from(small) + floor_ratio(xs.iter().sum())
}

fn digest(total: u64) -> u32 {
    let bounded = total.min(u32::MAX as u64);
    bounded as u32
}

fn floor_ratio(ratio: f64) -> u64 {
    let safe = if ratio.is_finite() && ratio >= 0.0 { ratio } else { 0.0 };
    safe as u64
}
