//! Positive: a narrowing `as` cast whose operand interval spans the
//! whole source type — reachable transitively
//! (`run_study` → `collect` → `digest`).

pub fn run_study(xs: &[u64]) -> u32 {
    collect(xs)
}

fn collect(xs: &[u64]) -> u32 {
    digest(xs.iter().sum())
}

fn digest(total: u64) -> u32 {
    total as u32 //~ cast-truncating-unproven
}
