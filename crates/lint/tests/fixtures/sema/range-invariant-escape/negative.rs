//! Negative: the caller guards into the documented range before the
//! call, so the interval proof discharges the callee's leading assert.

pub fn run_study(xs: &[f64]) -> f64 {
    collect(xs)
}

fn collect(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for &x in xs {
        total += weighted(x);
    }
    total
}

fn weighted(x: f64) -> f64 {
    if x.is_finite() && (0.0..=1.0).contains(&x) {
        return blend(x);
    }
    0.5
}

fn blend(share: f64) -> f64 {
    assert!(share.is_finite() && (0.0..=1.0).contains(&share), "share must be in [0,1]");
    1.0 - share
}
