//! Positive: an unconstrained argument flows into a function whose
//! leading assert demands the `[0, 1]` range — reachable transitively
//! (`run_study` → `collect` → `weighted`).

pub fn run_study(xs: &[f64]) -> f64 {
    collect(xs)
}

fn collect(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for &x in xs {
        total += weighted(x);
    }
    total
}

fn weighted(x: f64) -> f64 {
    blend(x) //~ range-invariant-escape
}

fn blend(share: f64) -> f64 {
    assert!(share.is_finite() && (0.0..=1.0).contains(&share), "share must be in [0,1]");
    1.0 - share
}
