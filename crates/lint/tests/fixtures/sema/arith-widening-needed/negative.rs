//! Negative: bounded 64-bit arithmetic that stays inside the type —
//! the clamped product cannot reach the u64 fence.

pub fn run_study(xs: &[u64]) -> u64 {
    collect(xs)
}

fn collect(xs: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &x in xs {
        acc = acc.wrapping_add(scale(x));
    }
    acc
}

fn scale(x: u64) -> u64 {
    let bounded = x.min(1_000_000);
    bounded * 4_096
}
