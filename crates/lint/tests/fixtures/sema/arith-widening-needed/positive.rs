//! Positive: a u64 multiply of two genuinely bounded operands whose
//! product interval still escapes the type — reachable transitively
//! (`run_study` → `collect` → `scale`).

pub fn run_study(xs: &[u64]) -> u64 {
    collect(xs)
}

fn collect(xs: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &x in xs {
        acc = acc.wrapping_add(scale(x));
    }
    acc
}

fn scale(x: u64) -> u64 {
    let bounded = x.min(1_099_511_627_776); // 2^40
    bounded * 1_073_741_824 //~ arith-widening-needed
}
