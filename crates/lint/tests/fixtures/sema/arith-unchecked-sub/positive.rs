//! Positive: an unsigned subtraction two call-graph hops below the
//! determinism root whose operand intervals cannot prove `lhs >= rhs`
//! (`run_study` → `collect` → `shrink`).

pub fn run_study(xs: &[u64]) -> u64 {
    collect(xs)
}

fn collect(xs: &[u64]) -> u64 {
    shrink(xs.len() as u64, 3)
}

fn shrink(n: u64, k: u64) -> u64 {
    n - k //~ arith-unchecked-sub
}
