//! Negative: every unsigned subtraction is proven — by an emptiness
//! guard refining the length, by a dominating `lhs >= rhs` comparison,
//! or by an explicit saturating fallback.

pub fn run_study(xs: &[u64]) -> u64 {
    collect(xs)
}

fn collect(xs: &[u64]) -> u64 {
    let n = xs.len() as u64;
    if n == 0 {
        return 0;
    }
    margin(n - 1, n)
}

fn margin(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        b.saturating_sub(a)
    }
}
