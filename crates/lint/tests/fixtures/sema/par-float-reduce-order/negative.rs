//! Negative: reducing the *return value* of `par_map` is input-order
//! merged and safe; integer counters are not float reductions.

pub fn shard(pool: &Pool, xs: &[f64]) -> f64 {
    let doubled = pool.par_map(xs, |x| x * 2.0);
    let total: f64 = doubled.iter().sum::<f64>();
    total
}

pub fn count(pool: &Pool, xs: &[u64]) -> usize {
    let hits = Mutex::new(Vec::new());
    pool.par_map(xs, |x| hits.lock().expect("poisoned").push(*x));
    hits.into_inner().expect("poisoned").len()
}
