//! Positive: workers push partial products into a captured, locked
//! vector in completion order; the parent then sums the floats.

pub fn shard(pool: &Pool, xs: &[f64]) -> f64 {
    let partials = Mutex::new(Vec::new());
    pool.par_map(xs, |x| partials.lock().expect("poisoned").push(x * 2.0));
    let total: f64 = partials.into_inner().expect("poisoned").iter().sum::<f64>(); //~ par-float-reduce-order
    total
}
