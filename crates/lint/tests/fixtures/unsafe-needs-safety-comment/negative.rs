// Fixture: documented unsafe (and mentions that are not the keyword).

pub fn documented(bits: u64) -> f64 {
    // SAFETY: any u64 bit pattern is a valid f64 (possibly NaN), and
    // f64::from_bits has no other preconditions.
    unsafe { std::mem::transmute(bits) }
}

pub fn mentioned_in_comment() -> f64 {
    // the word unsafe in a comment is not a keyword
    let label = "unsafe in a string is not a keyword either";
    label.len() as f64
}
