// Fixture: undocumented unsafe.

pub fn transmuted(bits: u64) -> f64 {
    unsafe { std::mem::transmute(bits) } //~ unsafe-needs-safety-comment
}

pub unsafe fn raw_read(ptr: *const f64) -> f64 { //~ unsafe-needs-safety-comment
    *ptr
}
