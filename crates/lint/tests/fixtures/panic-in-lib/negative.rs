// Fixture: panic-family uses that must NOT be flagged — contract
// asserts, exhaustiveness markers, test code, and comment mentions.

pub fn top_k_distance(p: f64) -> f64 {
    // panic! would be wrong here, assert! documents the paper contract
    assert!((0.0..=1.0).contains(&p), "penalty p must be in [0, 1]");
    debug_assert!(p.is_finite());
    p
}

pub fn classify(kind: u8) -> &'static str {
    match kind {
        0 => "search",
        1 => "market",
        _ => unreachable!("kind validated by the caller enum"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn panics_in_tests_are_fine() {
        panic!("expected");
    }
}
