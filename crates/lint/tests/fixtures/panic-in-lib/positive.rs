// Fixture: explicit panics in library code.

pub fn score(relevance: f64) -> f64 {
    if relevance < 0.0 {
        panic!("negative relevance"); //~ panic-in-lib
    }
    relevance
}

pub fn future_feature() {
    todo!("sharded cube build") //~ panic-in-lib
}

pub fn other_future_feature() {
    unimplemented!() //~ panic-in-lib
}
