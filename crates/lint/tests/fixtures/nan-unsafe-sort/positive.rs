// Fixture: NaN-unsafe comparators.

pub fn rank(scored: &mut Vec<(u32, f64)>) {
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap()); //~ nan-unsafe-sort
}

pub fn rank_with_message(scored: &mut Vec<(u32, f64)>) {
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0))); //~ nan-unsafe-sort
}

pub fn compare_once(d1: f64, d2: f64) -> std::cmp::Ordering {
    d1.partial_cmp(&d2).expect("never NaN") //~ nan-unsafe-sort
}
