// Fixture: NaN-safe comparators that must NOT be flagged.

use std::cmp::Ordering;

pub fn rank(scored: &mut Vec<(u32, f64)>) {
    // the sanctioned form: IEEE 754 total order
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
}

pub fn defensive(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

pub fn optioned(a: f64, b: f64) -> Option<Ordering> {
    a.partial_cmp(&b)
}

pub fn mapped(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).map_or(false, |o| o.is_lt())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrapping_partial_cmp_on_fixed_inputs_is_fine_in_tests() {
        assert!(1.0f64.partial_cmp(&2.0).unwrap().is_lt());
    }
}
