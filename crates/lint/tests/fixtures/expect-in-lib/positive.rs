// Fixture: `.expect(...)` in library code.

pub fn lookup(names: &[String], target: &str) -> usize {
    names.iter().position(|n| n == target).expect("target registered") //~ expect-in-lib
}

pub fn normalize(total: Option<f64>) -> f64 {
    let t = total.expect("total computed before normalize"); //~ expect-in-lib
    1.0 / t
}
