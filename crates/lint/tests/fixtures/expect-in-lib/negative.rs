// Fixture: expects that must NOT be flagged.

pub fn shipped(x: Result<f64, String>) -> f64 {
    // .expect("...") in a comment only
    x.unwrap_or_default()
}

#[test]
fn expect_is_fine_in_test_fns() {
    let x: Option<u32> = Some(1);
    assert_eq!(x.expect("present"), 1);
}

#[cfg(test)]
mod tests {
    fn helper(x: Option<u32>) -> u32 {
        x.expect("test helper may panic")
    }

    #[test]
    fn uses_helper() {
        assert_eq!(helper(Some(2)), 2);
    }
}
