// Fixture: exits that must NOT be flagged.

pub fn propagate(ok: bool) -> Result<(), String> {
    if !ok {
        return Err("propagated upward instead of exiting".to_owned());
    }
    Ok(())
}

/// A method *named* exit without the `process::` path.
pub fn exit(state: &mut Vec<u32>) {
    state.clear();
}

#[cfg(test)]
mod tests {
    #[test]
    fn exit_in_test_span_is_tolerated() {
        if false {
            std::process::exit(0);
        }
    }
}
