// Fixture: process exits outside the repro binaries (the repro-bin
// allowance is Lint.toml path scoping, applied by the engine).

pub fn bail(code: i32) {
    std::process::exit(code); //~ process-exit
}

use std::process;

pub fn bail_short() {
    process::exit(1); //~ process-exit
}
