//! Fixture-based rule tests: every rule has a positive fixture whose
//! `//~ <rule-id>` markers must be matched exactly (rule id + line, no
//! extras, no misses) and a negative fixture that must produce zero
//! findings. Plus a findings JSON round-trip over the whole corpus and
//! an end-to-end engine run over a synthetic workspace.

use std::path::{Path, PathBuf};

use fbox_lint::baseline::Baseline;
use fbox_lint::config::Config;
use fbox_lint::engine;
use fbox_lint::rules::{all_rules, Finding, Rule};
use fbox_lint::source::SourceFile;
use fbox_telemetry::Registry;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Loads a fixture under a synthetic *library* path so library-tier
/// rules apply regardless of where the fixture sits on disk.
fn load_fixture(rule_id: &str, which: &str) -> SourceFile {
    let path = fixture_dir().join(rule_id).join(which);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    SourceFile::parse(&format!("crates/fixture/src/{rule_id}/{which}"), &text)
}

/// 1-based lines carrying a `//~ <rule-id>` marker.
fn marked_lines(file: &SourceFile, rule_id: &str) -> Vec<u32> {
    let marker = format!("//~ {rule_id}");
    file.lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains(&marker))
        .map(|(i, _)| (i + 1) as u32)
        .collect()
}

fn check(rule: &dyn Rule, file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    rule.check(file, &mut out);
    out
}

#[test]
fn every_rule_has_an_exact_positive_fixture() {
    for rule in all_rules() {
        let file = load_fixture(rule.id(), "positive.rs");
        let expected = marked_lines(&file, rule.id());
        assert!(!expected.is_empty(), "{}: positive fixture has no //~ markers", rule.id());
        let findings = check(rule.as_ref(), &file);
        let got: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(got, expected, "{}: flagged lines differ from //~ markers", rule.id());
        for f in &findings {
            assert_eq!(f.rule, rule.id(), "finding carries the wrong rule id");
            assert_eq!(f.file, file.path, "finding carries the wrong path");
            assert_eq!(
                f.snippet,
                file.snippet(f.line),
                "{}: snippet does not match the flagged line",
                rule.id()
            );
        }
    }
}

#[test]
fn every_rule_has_a_clean_negative_fixture() {
    for rule in all_rules() {
        let file = load_fixture(rule.id(), "negative.rs");
        let findings = check(rule.as_ref(), &file);
        assert!(
            findings.is_empty(),
            "{}: negative fixture produced findings: {findings:?}",
            rule.id()
        );
    }
}

#[test]
fn findings_round_trip_through_json() {
    let mut corpus: Vec<Finding> = Vec::new();
    for rule in all_rules() {
        let file = load_fixture(rule.id(), "positive.rs");
        corpus.extend(check(rule.as_ref(), &file));
    }
    assert!(corpus.len() >= all_rules().len());
    let json = serde::json::to_string_pretty(&corpus);
    let back: Vec<Finding> = serde::json::from_str(&json).expect("findings JSON parses back");
    assert_eq!(back, corpus);
}

/// End-to-end: engine walk + Lint.toml severities + baseline matching +
/// stale detection over a synthetic workspace in the target tmpdir.
#[test]
fn engine_applies_config_baseline_and_stale_check() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-e2e");
    let _ = std::fs::remove_dir_all(&root); // stale state from prior runs
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("create synthetic workspace");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(x: Option<f64>) -> f64 { x.unwrap() }\n\
         pub fn g(t: f64) -> bool { t == 0.0 }\n",
    )
    .expect("write lib.rs");

    let config = Config::parse(
        "[rules]\nfloat-eq = \"warn\"\n[crate.crates/demo]\npanic-in-lib = \"allow\"\n",
    )
    .expect("config parses");

    // Baseline covers the unwrap (by snippet, not line) plus one stale
    // entry for code that no longer exists.
    let baseline = Baseline::from_json(
        r#"{"version": 1, "entries": [
            {"rule": "unwrap-in-lib", "file": "crates/demo/src/lib.rs",
             "snippet": "pub fn f(x: Option<f64>) -> f64 { x.unwrap() }"},
            {"rule": "unwrap-in-lib", "file": "crates/demo/src/gone.rs",
             "snippet": "old.unwrap()"}
        ]}"#,
    )
    .expect("baseline parses");

    let registry = Registry::new();
    let report = engine::run(&root, &config, &baseline, &registry);

    assert_eq!(report.files_scanned, 1);
    let unwrap = report
        .findings
        .iter()
        .find(|r| r.finding.rule == "unwrap-in-lib")
        .expect("unwrap finding reported");
    assert!(unwrap.baselined, "baseline must cover the unwrap by snippet");
    let float_eq = report
        .findings
        .iter()
        .find(|r| r.finding.rule == "float-eq")
        .expect("float-eq finding reported");
    assert_eq!(float_eq.severity, "warn", "[rules] override applies");
    assert_eq!(report.violations().count(), 0, "nothing denies");
    assert_eq!(report.stale_baseline.len(), 1, "gone.rs entry is stale");
    assert!(report.deny_failure(), "stale baseline entries alone must fail --deny");
    assert!(registry.snapshot().counters.iter().any(|c| c.name == "lint.files_scanned"));
}
