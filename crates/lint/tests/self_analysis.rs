//! Self-analysis: the item parser must handle every `.rs` file in this
//! workspace — shims and deliberately-broken lint fixtures included —
//! with zero parse errors and well-formed item spans. This is the
//! parser's reality check: the grammar subset it implements has to
//! cover everything the workspace actually writes.

use std::path::{Path, PathBuf};

use fbox_lint::config::Config;
use fbox_lint::engine;
use fbox_lint::parser::Item;
use fbox_lint::source;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Items at each nesting level must appear in source order, each span
/// must be non-inverted, and children must start at or after their
/// parent's declaration line.
fn check_spans(rel: &str, items: &[Item], min_line: u32) {
    let mut prev = min_line;
    for item in items {
        assert!(
            item.line >= prev,
            "{rel}: item `{}` at line {} precedes sibling/parent at line {prev}",
            item.name,
            item.line
        );
        assert!(
            item.end_line >= item.line,
            "{rel}: item `{}` has inverted span {}..{}",
            item.name,
            item.line,
            item.end_line
        );
        check_spans(rel, &item.children, item.line);
        prev = item.line;
    }
}

#[test]
fn whole_workspace_parses_with_zero_errors_and_monotonic_spans() {
    let root = workspace_root();
    assert!(root.join("Lint.toml").is_file(), "workspace root not found at {}", root.display());
    // Default config has no [paths] exclude: shims/ and the lint
    // fixtures are deliberately in scope here even though the lint
    // run itself skips them.
    let config = Config::default();
    let rels = engine::walk(&root, &config);
    assert!(rels.len() > 100, "workspace walk looks truncated: {} files", rels.len());
    assert!(
        rels.iter().any(|r| r.starts_with("shims/")),
        "shims must be part of the self-analysis corpus"
    );
    assert!(
        rels.iter().any(|r| r.starts_with("crates/lint/tests/fixtures/")),
        "fixtures must be part of the self-analysis corpus"
    );
    let mut parsed_items = 0usize;
    for rel in &rels {
        let file = source::load(&root, rel).unwrap_or_else(|| panic!("unreadable file: {rel}"));
        assert!(file.items.errors.is_empty(), "{rel}: parse errors: {:?}", file.items.errors);
        check_spans(rel, &file.items.items, 0);
        let mut count = 0usize;
        for item in &file.items.items {
            item.walk(&mut |_| count += 1);
        }
        parsed_items += count;
    }
    assert!(parsed_items > 1000, "suspiciously few items parsed: {parsed_items}");
}
