//! Self-analysis: the item parser must handle every `.rs` file in this
//! workspace — shims and deliberately-broken lint fixtures included —
//! with zero parse errors and well-formed item spans. This is the
//! parser's reality check: the grammar subset it implements has to
//! cover everything the workspace actually writes.

use std::path::{Path, PathBuf};

use fbox_lint::baseline::Baseline;
use fbox_lint::config::Config;
use fbox_lint::engine;
use fbox_lint::parser::Item;
use fbox_lint::sema::Model;
use fbox_lint::source;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Items at each nesting level must appear in source order, each span
/// must be non-inverted, and children must start at or after their
/// parent's declaration line.
fn check_spans(rel: &str, items: &[Item], min_line: u32) {
    let mut prev = min_line;
    for item in items {
        assert!(
            item.line >= prev,
            "{rel}: item `{}` at line {} precedes sibling/parent at line {prev}",
            item.name,
            item.line
        );
        assert!(
            item.end_line >= item.line,
            "{rel}: item `{}` has inverted span {}..{}",
            item.name,
            item.line,
            item.end_line
        );
        check_spans(rel, &item.children, item.line);
        prev = item.line;
    }
}

#[test]
fn whole_workspace_parses_with_zero_errors_and_monotonic_spans() {
    let root = workspace_root();
    assert!(root.join("Lint.toml").is_file(), "workspace root not found at {}", root.display());
    // Default config has no [paths] exclude: shims/ and the lint
    // fixtures are deliberately in scope here even though the lint
    // run itself skips them.
    let config = Config::default();
    let rels = engine::walk(&root, &config);
    assert!(rels.len() > 100, "workspace walk looks truncated: {} files", rels.len());
    assert!(
        rels.iter().any(|r| r.starts_with("shims/")),
        "shims must be part of the self-analysis corpus"
    );
    assert!(
        rels.iter().any(|r| r.starts_with("crates/lint/tests/fixtures/")),
        "fixtures must be part of the self-analysis corpus"
    );
    let mut parsed_items = 0usize;
    for rel in &rels {
        let file = source::load(&root, rel).unwrap_or_else(|| panic!("unreadable file: {rel}"));
        assert!(file.items.errors.is_empty(), "{rel}: parse errors: {:?}", file.items.errors);
        check_spans(rel, &file.items.items, 0);
        let mut count = 0usize;
        for item in &file.items.items {
            item.walk(&mut |_| count += 1);
        }
        parsed_items += count;
    }
    assert!(parsed_items > 1000, "suspiciously few items parsed: {parsed_items}");
}

/// The flow layer's reality check, mirroring the item-parser test above:
/// every function body in the workspace — shims and fixtures included —
/// must statement-parse with zero [`fbox_lint::flow`] errors, and every
/// CFG must be connected (no statement unreachable from entry, which
/// would silently hide defs/uses from the dataflow rules).
#[test]
fn every_workspace_body_flows_with_zero_errors_and_connected_cfgs() {
    let root = workspace_root();
    let config = Config::default();
    let sources: Vec<source::SourceFile> = engine::walk(&root, &config)
        .iter()
        .map(|rel| source::load(&root, rel).unwrap_or_else(|| panic!("unreadable file: {rel}")))
        .collect();
    let model = Model::build(&sources, &config);
    let mut bodies = 0usize;
    let mut stmts = 0usize;
    for (id, flow) in model.flows.iter().enumerate() {
        let Some(flow) = flow else { continue };
        let node = &model.nodes[id];
        let at = format!("{} ({}:{})", node.qname, sources[node.file].path, node.line);
        assert!(flow.tree.errors.is_empty(), "{at}: flow parse errors: {:?}", flow.tree.errors);
        let orphans = flow.cfg.orphans();
        assert!(orphans.is_empty(), "{at}: orphan CFG blocks {orphans:?}");
        bodies += 1;
        stmts += flow.tree.stmts.len();
    }
    assert!(bodies > 1000, "suspiciously few bodies analyzed: {bodies}");
    assert!(stmts > 10_000, "suspiciously few statements parsed: {stmts}");
}

/// The engine fans the lexical pass out over `fbox_par`, and the
/// abstract interpreter fans each call-graph SCC batch out the same
/// way; the report must be identical at any worker count (input-order
/// flattening, no shared mutable state in rules, SCC-order fixpoint).
/// Byte-identical serialized output is the contract CI relies on.
#[test]
fn lint_run_is_deterministic_across_thread_counts() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("Lint.toml")).expect("Lint.toml is readable");
    let config = Config::parse(&text).expect("Lint.toml parses");
    let run = || {
        let registry = fbox_telemetry::Registry::new();
        engine::run(&root, &config, &Baseline::default(), &registry)
    };
    let serial = fbox_par::with_threads(1, run);
    let wide = fbox_par::with_threads(7, run);
    assert_eq!(serial.findings, wide.findings);
    assert_eq!(serial.stale_baseline, wide.stale_baseline);
    assert_eq!(serial.files_scanned, wide.files_scanned);
    assert_eq!(serial.lines_scanned, wide.lines_scanned);
    let serial_bytes = serde::json::to_string_pretty(&serial);
    let wide_bytes = serde::json::to_string_pretty(&wide);
    assert_eq!(serial_bytes, wide_bytes, "serialized reports must be byte-identical");
}

/// The abstract interpreter's reality check: every function body in the
/// workspace must reach its interval fixpoint (widening guarantees
/// termination; `diverged` marks the iteration cap instead), and every
/// statement of every connected CFG must carry an abstract environment —
/// a `None` env on a reachable statement means the fixpoint silently
/// skipped code that the rules then never see.
#[test]
fn every_workspace_fn_reaches_its_absint_fixpoint() {
    let root = workspace_root();
    let config = Config::default();
    let sources: Vec<source::SourceFile> = engine::walk(&root, &config)
        .iter()
        .map(|rel| source::load(&root, rel).unwrap_or_else(|| panic!("unreadable file: {rel}")))
        .collect();
    let model = Model::build(&sources, &config);
    let mut analyzed = 0usize;
    let mut envs_checked = 0usize;
    for (id, flow) in model.flows.iter().enumerate() {
        let Some(flow) = flow else { continue };
        let node = &model.nodes[id];
        let at = format!("{} ({}:{})", node.qname, sources[node.file].path, node.line);
        let fa = model.absint.fns[id]
            .as_ref()
            .unwrap_or_else(|| panic!("{at}: body has a flow but no absint result"));
        assert!(!fa.diverged, "{at}: fixpoint hit the iteration cap after {}", fa.iterations);
        assert_eq!(fa.envs.len(), flow.tree.stmts.len(), "{at}: env table misaligned");
        // `orphans()` is empty workspace-wide (asserted above), so every
        // statement is CFG-reachable and must have been visited.
        for (s, env) in fa.envs.iter().enumerate() {
            assert!(env.is_some(), "{at}: reachable statement {s} has no abstract env");
            envs_checked += 1;
        }
        analyzed += 1;
    }
    assert!(analyzed > 1000, "suspiciously few bodies interpreted: {analyzed}");
    assert!(envs_checked > 10_000, "suspiciously few envs computed: {envs_checked}");
}
