//! Fixture-based semantic rule tests: every call-graph rule has a
//! positive fixture whose `//~ <rule-id>` markers must be matched
//! exactly (rule id + line, no extras, no misses) and whose violation
//! is reachable only transitively (at least two call-graph hops from
//! the root), plus a negative fixture that must produce zero findings.
//! Per-rule tests additionally pin the exact rendered root → sink
//! call path.

use std::path::{Path, PathBuf};

use fbox_lint::config::Config;
use fbox_lint::rules::Finding;
use fbox_lint::sema::{all_sema_rules, Model, SemaRule};
use fbox_lint::source::SourceFile;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sema")
}

/// Loads a fixture under a synthetic library path so the module path
/// of every fixture fn is `fixture::positive::…` / `fixture::negative::…`.
fn load_fixture(rule_id: &str, which: &str) -> SourceFile {
    let path = fixture_dir().join(rule_id).join(which);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    SourceFile::parse(&format!("crates/fixture/src/{which}"), &text)
}

/// The determinism root every `det-*` fixture hangs off (suffix
/// pattern). The parallel-rule fixtures root at `par_map` closures,
/// which are discovered from the source and need no configuration.
const FIXTURE_ROOTS: &[&str] = &["run_study"];

fn run_rule(rule: &dyn SemaRule, file: &SourceFile) -> Vec<Finding> {
    let files = std::slice::from_ref(file);
    let cfg = Config {
        sema_roots: FIXTURE_ROOTS.iter().map(|s| (*s).to_owned()).collect(),
        ..Config::default()
    };
    let model = Model::build(files, &cfg);
    let mut out = Vec::new();
    rule.check(&model, &mut out);
    out
}

fn rule_by_id(id: &str) -> Box<dyn SemaRule> {
    all_sema_rules()
        .into_iter()
        .find(|r| r.id() == id)
        .unwrap_or_else(|| panic!("no sema rule `{id}`"))
}

/// 1-based lines carrying a `//~ <rule-id>` marker.
fn marked_lines(file: &SourceFile, rule_id: &str) -> Vec<u32> {
    let marker = format!("//~ {rule_id}");
    file.lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains(&marker))
        .map(|(i, _)| (i + 1) as u32)
        .collect()
}

#[test]
fn every_sema_rule_has_an_exact_positive_fixture() {
    for rule in all_sema_rules() {
        let file = load_fixture(rule.id(), "positive.rs");
        let expected = marked_lines(&file, rule.id());
        assert!(!expected.is_empty(), "{}: positive fixture has no //~ markers", rule.id());
        let findings = run_rule(rule.as_ref(), &file);
        let mut got: Vec<u32> = findings.iter().map(|f| f.line).collect();
        got.sort_unstable();
        assert_eq!(got, expected, "{}: flagged lines differ from //~ markers", rule.id());
        for f in &findings {
            assert_eq!(f.rule, rule.id(), "finding carries the wrong rule id");
            assert_eq!(f.file, file.path, "finding carries the wrong path");
        }
        // Every rule's violation must be demonstrated transitively:
        // at least one finding whose path is root → hop → sink.
        assert!(
            findings.iter().any(|f| f.path.len() >= 3),
            "{}: no finding with a >= 2-hop call path: {findings:?}",
            rule.id()
        );
    }
}

#[test]
fn every_sema_rule_has_a_clean_negative_fixture() {
    for rule in all_sema_rules() {
        let file = load_fixture(rule.id(), "negative.rs");
        let findings = run_rule(rule.as_ref(), &file);
        assert!(
            findings.is_empty(),
            "{}: negative fixture produced findings: {findings:?}",
            rule.id()
        );
    }
}

#[test]
fn det_hash_iter_reports_the_full_call_path() {
    let rule = rule_by_id("det-hash-iter");
    let file = load_fixture("det-hash-iter", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 21);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::run_study (crates/fixture/src/positive.rs:7)",
            "fixture::positive::collect (crates/fixture/src/positive.rs:11)",
            "fixture::positive::tally (crates/fixture/src/positive.rs:15)",
        ]
    );
}

#[test]
fn det_env_read_reports_the_full_call_path() {
    let rule = rule_by_id("det-env-read");
    let file = load_fixture("det-env-read", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 13);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::run_study (crates/fixture/src/positive.rs:4)",
            "fixture::positive::configure (crates/fixture/src/positive.rs:8)",
            "fixture::positive::thread_budget (crates/fixture/src/positive.rs:12)",
        ]
    );
}

#[test]
fn det_wall_clock_reports_the_full_call_path() {
    let rule = rule_by_id("det-wall-clock");
    let file = load_fixture("det-wall-clock", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 13);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::run_study (crates/fixture/src/positive.rs:4)",
            "fixture::positive::measure (crates/fixture/src/positive.rs:8)",
            "fixture::positive::stamp (crates/fixture/src/positive.rs:12)",
        ]
    );
}

#[test]
fn par_panic_reachable_roots_at_the_parallel_closure() {
    let rule = rule_by_id("par-panic-reachable");
    let file = load_fixture("par-panic-reachable", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 13);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::shard::{closure@5} (crates/fixture/src/positive.rs:5)",
            "fixture::positive::normalize (crates/fixture/src/positive.rs:8)",
            "fixture::positive::checked_double (crates/fixture/src/positive.rs:12)",
        ]
    );
}

#[test]
fn par_shared_capture_paths_root_to_definition_to_write() {
    let rule = rule_by_id("par-shared-capture");
    let file = load_fixture("par-shared-capture", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 7);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::shard::{closure@6} (crates/fixture/src/positive.rs:6)",
            "`let mut hits = 0usize;` (crates/fixture/src/positive.rs:5)",
            "`hits += 1;` (crates/fixture/src/positive.rs:7)",
        ]
    );
}

#[test]
fn par_float_reduce_order_paths_write_to_reduction() {
    let rule = rule_by_id("par-float-reduce-order");
    let file = load_fixture("par-float-reduce-order", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 7);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::shard::{closure@6} (crates/fixture/src/positive.rs:6)",
            "`pool.par_map(xs, |x| partials.lock().expect(\"poisoned\").push(x * 2.0));` \
             (crates/fixture/src/positive.rs:6)",
            "`let total: f64 = partials.into_inner().expect(\"poisoned\").iter().sum::<f64>();` \
             (crates/fixture/src/positive.rs:7)",
        ]
    );
}

#[test]
fn atomic_relaxed_handoff_paths_both_sides_of_the_handoff() {
    let rule = rule_by_id("atomic-relaxed-handoff");
    let file = load_fixture("atomic-relaxed-handoff", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 6);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::shard::{closure@5} (crates/fixture/src/positive.rs:5)",
            "`ready.store(true, Ordering::Relaxed);` (crates/fixture/src/positive.rs:6)",
            "`ready.load(Ordering::Acquire)` (crates/fixture/src/positive.rs:12)",
        ]
    );
}

#[test]
fn flow_unchecked_div_paths_root_to_def_to_division() {
    let rule = rule_by_id("flow-unchecked-div");
    let file = load_fixture("flow-unchecked-div", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 16);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::run_study (crates/fixture/src/positive.rs:5)",
            "fixture::positive::normalize (crates/fixture/src/positive.rs:9)",
            "fixture::positive::mean (crates/fixture/src/positive.rs:13)",
            "`let n = xs.len();` (crates/fixture/src/positive.rs:14)",
            "`total / n as f64` (crates/fixture/src/positive.rs:16)",
        ]
    );
}

#[test]
fn race_static_mut_reports_declaration_and_pathed_usage() {
    let rule = rule_by_id("race-static-mut");
    let file = load_fixture("race-static-mut", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 2, "{out:?}");
    let decl = out.iter().find(|f| f.line == 5).expect("declaration finding at the static");
    assert!(decl.path.is_empty(), "declaration findings carry no call path: {decl:?}");
    let usage = out.iter().find(|f| f.line == 18).expect("usage finding at the write");
    assert_eq!(
        usage.path,
        [
            "fixture::positive::shard::{closure@8} (crates/fixture/src/positive.rs:8)",
            "fixture::positive::bump (crates/fixture/src/positive.rs:11)",
            "fixture::positive::record (crates/fixture/src/positive.rs:16)",
        ]
    );
}

#[test]
fn arith_unchecked_sub_renders_the_operand_intervals() {
    let rule = rule_by_id("arith-unchecked-sub");
    let file = load_fixture("arith-unchecked-sub", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 14);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::run_study (crates/fixture/src/positive.rs:5)",
            "fixture::positive::collect (crates/fixture/src/positive.rs:9)",
            "fixture::positive::shrink (crates/fixture/src/positive.rs:13)",
            "`n - k` (crates/fixture/src/positive.rs:14)",
            "cannot prove lhs >= rhs: lhs in u64 [0, 18446744073709551615], \
             rhs in u64 [0, 18446744073709551615]",
        ]
    );
}

#[test]
fn arith_widening_needed_renders_the_escaping_product() {
    let rule = rule_by_id("arith-widening-needed");
    let file = load_fixture("arith-widening-needed", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 19);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::run_study (crates/fixture/src/positive.rs:5)",
            "fixture::positive::collect (crates/fixture/src/positive.rs:9)",
            "fixture::positive::scale (crates/fixture/src/positive.rs:17)",
            "`bounded * 1_073_741_824` (crates/fixture/src/positive.rs:19)",
            "[0, 1099511627776] * [1073741824, 1073741824] gives \
             [0, 1180591620717411303424], escaping u64; widen to i128",
        ]
    );
}

#[test]
fn range_invariant_escape_names_the_violated_requirement() {
    let rule = rule_by_id("range-invariant-escape");
    let file = load_fixture("range-invariant-escape", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 18);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::run_study (crates/fixture/src/positive.rs:5)",
            "fixture::positive::collect (crates/fixture/src/positive.rs:9)",
            "fixture::positive::weighted (crates/fixture/src/positive.rs:17)",
            "`blend(x)` (crates/fixture/src/positive.rs:18)",
            "argument `share` in f64 {no facts} cannot prove f64 {finite, >=0, <=1} \
             required by fixture::positive::blend",
        ]
    );
}

#[test]
fn cast_truncating_unproven_renders_the_operand_interval() {
    let rule = rule_by_id("cast-truncating-unproven");
    let file = load_fixture("cast-truncating-unproven", "positive.rs");
    let out = run_rule(rule.as_ref(), &file);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 14);
    assert_eq!(
        out[0].path,
        [
            "fixture::positive::run_study (crates/fixture/src/positive.rs:5)",
            "fixture::positive::collect (crates/fixture/src/positive.rs:9)",
            "fixture::positive::digest (crates/fixture/src/positive.rs:13)",
            "`total as u32` (crates/fixture/src/positive.rs:14)",
            "cast of u64 [0, 18446744073709551615] to u32 not proven lossless",
        ]
    );
}
