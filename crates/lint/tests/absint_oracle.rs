//! Differential oracle for the abstract-interpretation transfer
//! functions: generate random straight-line integer programs, render
//! them to source, run the absint engine over the rendered text, and
//! execute the same program concretely (wrapping i64 semantics, the
//! semantics the transfer models) on a grid of inputs. Every concrete
//! value must land inside the interval the engine computed for its
//! variable — soundness of the transfers, checked point by point.

use fbox_lint::absint::domain::AbsVal;
use fbox_lint::config::Config;
use fbox_lint::sema::Model;
use fbox_lint::source::SourceFile;

/// Splitmix-style deterministic PRNG (no external crates, no clocks).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One generated statement: `let v{i} = <lhs> <op> <rhs>;` where the
/// operands are earlier variables or small literals.
#[derive(Clone, Copy)]
enum Operand {
    Var(usize),
    Lit(i64),
}

#[derive(Clone, Copy)]
enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
}

struct Stmt {
    op: Op,
    lhs: usize, // always a variable: keeps type inference trivial
    rhs: Operand,
}

/// Variable names: slot 0/1 are the clamped inputs `x`/`y`, the rest
/// are `v2`, `v3`, ….
fn var_name(slot: usize) -> String {
    match slot {
        0 => "x".to_owned(),
        1 => "y".to_owned(),
        n => format!("v{n}"),
    }
}

fn gen_program(rng: &mut Rng, len: usize) -> Vec<Stmt> {
    let mut stmts = Vec::with_capacity(len);
    for i in 0..len {
        let n_vars = 2 + i;
        let lhs = rng.below(n_vars as u64) as usize;
        // Multiplication only by small literals bounds chain growth to
        // 1000 * 9^len, far inside i64 — the concrete run never wraps,
        // so the raw (pre-fence) interval is the one being tested.
        let (op, rhs) = match rng.below(7) {
            0 => (Op::Add, Operand::Var(rng.below(n_vars as u64) as usize)),
            1 => (Op::Sub, Operand::Var(rng.below(n_vars as u64) as usize)),
            2 => (Op::Mul, Operand::Lit(rng.below(9) as i64 + 1)),
            3 => (Op::Div, Operand::Lit(rng.below(9) as i64 + 1)),
            4 => (Op::Rem, Operand::Lit(rng.below(9) as i64 + 1)),
            5 => (Op::Min, Operand::Var(rng.below(n_vars as u64) as usize)),
            _ => (Op::Max, Operand::Lit(rng.below(10) as i64)),
        };
        stmts.push(Stmt { op, lhs, rhs });
    }
    stmts
}

fn render(stmts: &[Stmt]) -> String {
    let mut src = String::from(
        "pub fn run_study(a: i64, b: i64) -> i64 {\n    let x0 = a.min(1000);\n    let x = x0.max(0);\n    let y0 = b.min(500);\n    let y = y0.max(0);\n",
    );
    for (i, s) in stmts.iter().enumerate() {
        let lhs = var_name(s.lhs);
        let rhs = match s.rhs {
            Operand::Var(v) => var_name(v),
            Operand::Lit(l) => l.to_string(),
        };
        let expr = match s.op {
            Op::Add => format!("{lhs} + {rhs}"),
            Op::Sub => format!("{lhs} - {rhs}"),
            Op::Mul => format!("{lhs} * {rhs}"),
            Op::Div => format!("{lhs} / {rhs}"),
            Op::Rem => format!("{lhs} % {rhs}"),
            Op::Min => format!("{lhs}.min({rhs})"),
            Op::Max => format!("{lhs}.max({rhs})"),
        };
        src.push_str(&format!("    let {} = {expr};\n", var_name(2 + i)));
    }
    src.push_str(&format!("    {}\n}}\n", var_name(1 + stmts.len())));
    src
}

/// Concrete execution under the semantics the transfers model:
/// wrapping two's-complement i64.
fn interpret(stmts: &[Stmt], a: i64, b: i64) -> Vec<i64> {
    let mut vals = vec![a.clamp(0, 1000), b.clamp(0, 500)];
    for s in stmts {
        let l = vals[s.lhs];
        let r = match s.rhs {
            Operand::Var(v) => vals[v],
            Operand::Lit(lit) => lit,
        };
        let v = match s.op {
            Op::Add => l.wrapping_add(r),
            Op::Sub => l.wrapping_sub(r),
            Op::Mul => l.wrapping_mul(r),
            Op::Div => l.wrapping_div(r),
            Op::Rem => l.wrapping_rem(r),
            Op::Min => l.min(r),
            Op::Max => l.max(r),
        };
        vals.push(v);
    }
    vals
}

const INPUT_GRID: &[i64] =
    &[i64::MIN, -1_000_000, -1000, -7, -1, 0, 1, 3, 499, 500, 999, 1000, 123_456, i64::MAX];

#[test]
fn random_straight_line_programs_stay_inside_their_intervals() {
    let mut imprecise = 0usize;
    let mut checked = 0usize;
    for seed in 1..=64u64 {
        let mut rng = Rng(seed);
        let len = 3 + rng.below(10) as usize;
        let stmts = gen_program(&mut rng, len);
        let src = render(&stmts);
        let files = vec![SourceFile::parse("crates/core/src/x.rs", &src)];
        let cfg = Config { sema_roots: vec!["run_study".into()], ..Config::default() };
        let model = Model::build(&files, &cfg);
        let id = model.nodes.iter().position(|n| n.simple == "run_study").expect("node");
        let fa = model.absint.fns[id].as_ref().expect("analyzed");
        assert!(!fa.diverged, "straight-line code reaches fixpoint:\n{src}");
        // The tail expression's IN-env sees every binding of the body.
        let tail_env = fa
            .envs
            .last()
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("tail statement unreached:\n{src}"));
        let ret = model.absint.summaries[id].as_ref().expect("summary").ret.interval();
        for &a in INPUT_GRID {
            for &b in INPUT_GRID {
                let vals = interpret(&stmts, a, b);
                for (slot, &val) in vals.iter().enumerate() {
                    match tail_env.get(&var_name(slot)).and_then(AbsVal::interval) {
                        Some(iv) => {
                            checked += 1;
                            assert!(
                                iv.lo <= i128::from(val) && i128::from(val) <= iv.hi,
                                "{} = {val} escapes its interval [{}, {}] \
                                 for inputs ({a}, {b}) in:\n{src}",
                                var_name(slot),
                                iv.lo,
                                iv.hi,
                            );
                        }
                        None => imprecise += 1,
                    }
                }
                let result = *vals.last().expect("non-empty");
                if let Some(iv) = ret {
                    assert!(
                        iv.lo <= i128::from(result) && i128::from(result) <= iv.hi,
                        "return value {result} escapes [{}, {}] for ({a}, {b}) in:\n{src}",
                        iv.lo,
                        iv.hi,
                    );
                }
            }
        }
        // The oracle is vacuous if the engine degrades to ⊤ everywhere;
        // straight-line integer code must stay overwhelmingly precise.
        assert!(
            imprecise * 10 <= checked.max(1),
            "too many ⊤ variables ({imprecise} of {}):\n{src}",
            checked + imprecise
        );
    }
}
