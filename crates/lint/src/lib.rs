//! # fbox-lint
//!
//! Zero-dependency, domain-aware static analysis for the F-Box
//! workspace.
//!
//! The pipeline is numeric ranking code end to end — Kendall/Jaccard
//! distances, EMD over relevance histograms, exposure shares — where a
//! NaN-unsafe comparator or a raw `f64 ==` silently corrupts the
//! unfairness cube. The container has no crates.io access, so dylint and
//! clippy plugins are unavailable; this crate hand-rolls the three pieces
//! such a tool needs:
//!
//! - [`lexer`] — a comment/string/attribute-aware Rust token scanner
//!   (no full parse);
//! - [`rules`] — the [`Rule`](rules::Rule) engine with domain-tailored
//!   lexical rules (see `fbox-lint --list-rules`);
//! - [`engine`] + [`config`] + [`baseline`] — the workspace walker,
//!   `Lint.toml` severity/scoping configuration, and the
//!   `lint-baseline.json` allowlist with stale-entry detection.
//!
//! Scan metrics are published through `fbox-telemetry`, so `--metrics`
//! output reuses the same table/JSON sinks as the rest of the pipeline.

pub mod baseline;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
