//! # fbox-lint
//!
//! Zero-dependency, domain-aware static analysis for the F-Box
//! workspace.
//!
//! The pipeline is numeric ranking code end to end — Kendall/Jaccard
//! distances, EMD over relevance histograms, exposure shares — where a
//! NaN-unsafe comparator or a raw `f64 ==` silently corrupts the
//! unfairness cube. The container has no crates.io access, so dylint and
//! clippy plugins are unavailable; this crate hand-rolls the three pieces
//! such a tool needs:
//!
//! - [`lexer`] — a comment/string/attribute-aware Rust token scanner
//!   (no full parse);
//! - [`parser`] — a lightweight item-level parser over the token stream
//!   (modules, fns, impls, use-trees, closures) feeding [`sema`];
//! - [`rules`] — the [`Rule`](rules::Rule) engine with domain-tailored
//!   lexical rules (see `fbox-lint --list-rules`);
//! - [`flow`] — body-level analysis: a tolerant statement parser,
//!   per-function CFGs with def/use sets, and a gen/kill worklist
//!   dataflow engine (reaching definitions + must-established guards);
//! - [`sema`] — the workspace symbol table, the intra-workspace call
//!   graph with closure-capture edges, per-node [`flow`] results, and
//!   the transitive determinism / concurrency rule family (`det-*`,
//!   `par-*`, `race-static-mut`, `atomic-relaxed-handoff`,
//!   `flow-unchecked-div`) whose findings carry the full root →
//!   violation path down to the statement level;
//! - [`absint`] — the fourth pass: interprocedural abstract
//!   interpretation over the [`flow`] CFGs (integer intervals with
//!   widening/narrowing, float range facts, bottom-up function
//!   summaries over the call graph) powering the `arith-*`,
//!   `range-invariant-escape`, and `cast-truncating-unproven` rules
//!   and the interval-proof suppression of lexical cast findings;
//! - [`engine`] + [`config`] + [`baseline`] — the workspace walker,
//!   `Lint.toml` severity/scoping configuration, and the
//!   `lint-baseline.json` allowlist with stale-entry detection.
//!
//! Scan metrics are published through `fbox-telemetry`, so `--metrics`
//! output reuses the same table/JSON sinks as the rest of the pipeline.

pub mod absint;
pub mod baseline;
pub mod config;
pub mod engine;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sema;
pub mod source;
