//! The checked-in findings allowlist (`lint-baseline.json`).
//!
//! A baseline lets a new rule land at `deny` before every historical
//! finding is fixed: known findings are recorded here and stop failing
//! the build, while anything *new* still does. Entries are matched by
//! `(rule, file, snippet)` — no line numbers — so pure code motion never
//! invalidates them, but the moment the offending line is fixed the
//! entry stops matching and the stale-baseline check forces its removal.
//! The end state (and the current state of this repo) is an empty list.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::rules::Finding;

/// Serialized baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Format version (currently 1).
    pub version: u32,
    /// Allowlisted findings.
    pub entries: Vec<BaselineEntry>,
}

/// One allowlisted finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Trimmed source line the finding matched when baselined.
    pub snippet: String,
}

impl Baseline {
    /// Parses the JSON file contents.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        serde::json::from_str(text).map_err(|e| format!("lint-baseline.json: {e:?}"))
    }

    /// Serializes to pretty JSON (the checked-in format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Builds a baseline from current findings.
    pub fn from_findings<'a>(findings: impl Iterator<Item = &'a Finding>) -> Baseline {
        Baseline {
            version: 1,
            entries: findings
                .map(|f| BaselineEntry {
                    rule: f.rule.clone(),
                    file: f.file.clone(),
                    snippet: f.snippet.clone(),
                })
                .collect(),
        }
    }
}

/// Consumes baseline entries against findings, one entry per matching
/// finding. Returned by [`Matcher::finish`]: entries that matched nothing
/// are stale and must be deleted from the file.
pub struct Matcher {
    /// (rule, file, snippet) → remaining match budget.
    remaining: BTreeMap<(String, String, String), usize>,
}

impl Matcher {
    /// Prepares a matcher over the baseline's entries.
    pub fn new(baseline: &Baseline) -> Matcher {
        let mut remaining = BTreeMap::new();
        for e in &baseline.entries {
            *remaining.entry((e.rule.clone(), e.file.clone(), e.snippet.clone())).or_insert(0) += 1;
        }
        Matcher { remaining }
    }

    /// Whether `finding` is covered by the baseline (consumes one entry).
    pub fn matches(&mut self, finding: &Finding) -> bool {
        let key = (finding.rule.clone(), finding.file.clone(), finding.snippet.clone());
        match self.remaining.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// Entries that matched no current finding — the stale set.
    pub fn finish(self) -> Vec<BaselineEntry> {
        let mut stale = Vec::new();
        for ((rule, file, snippet), n) in self.remaining {
            for _ in 0..n {
                stale.push(BaselineEntry {
                    rule: rule.clone(),
                    file: file.clone(),
                    snippet: snippet.clone(),
                });
            }
        }
        stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule: rule.to_owned(),
            file: file.to_owned(),
            line,
            snippet: snippet.to_owned(),
            path: Vec::new(),
        }
    }

    #[test]
    fn matching_ignores_line_numbers_and_detects_stale() {
        let f1 = finding("float-eq", "a.rs", 10, "x == 0.0");
        let baseline = Baseline::from_findings([f1.clone()].iter());
        let mut m = Matcher::new(&baseline);
        // Same finding moved to another line still matches…
        assert!(m.matches(&finding("float-eq", "a.rs", 99, "x == 0.0")));
        // …but only as many times as it was baselined.
        assert!(!m.matches(&finding("float-eq", "a.rs", 100, "x == 0.0")));
        assert!(m.finish().is_empty());

        let stale = Matcher::new(&baseline).finish();
        assert_eq!(stale.len(), 1, "unmatched entry must surface as stale");
        assert_eq!(stale[0].snippet, "x == 0.0");
    }

    #[test]
    fn json_round_trip() {
        let baseline =
            Baseline::from_findings([finding("unwrap-in-lib", "b.rs", 3, "x.unwrap()")].iter());
        let back = Baseline::from_json(&baseline.to_json()).expect("round-trip parses");
        assert_eq!(back, baseline);
    }
}
