//! Token-level def/use and guard scanners shared by the statement parser
//! and the flow rules: which identifiers a pattern binds, which a range
//! reads, whether a statement establishes a zero/emptiness test for a
//! variable, and whether a definition is intrinsically nonzero-safe.

use crate::lexer::{Tok, Token};
use crate::parser::is_keyword;

/// Non-keyword identifiers in `toks[lo..hi]`, deduplicated in first-use
/// order. `self` counts: captured receivers matter to the flow rules.
pub fn idents_in(toks: &[Token], lo: usize, hi: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for tok in &toks[lo.min(toks.len())..hi.min(toks.len())] {
        if let Tok::Ident(s) = &tok.tok {
            if (s == "self" || !is_keyword(s)) && !out.iter().any(|o| o == s) {
                out.push(s.clone());
            }
        }
    }
    out
}

/// The first variable-ish identifier in `toks[lo..hi]` (`self` included,
/// other keywords skipped): the base of an assignment target like
/// `self.cells[i].total`.
pub fn first_ident(toks: &[Token], lo: usize, hi: usize) -> Option<String> {
    for tok in &toks[lo.min(toks.len())..hi.min(toks.len())] {
        if let Tok::Ident(s) = &tok.tok {
            if s == "self" || !is_keyword(s) {
                return Some(s.clone());
            }
        }
    }
    None
}

/// Identifiers a pattern range *binds*: lowercase/underscore-leading
/// idents that are not keywords, not struct-pattern field names
/// (followed by `:`), and not path segments (adjacent to `::`).
pub fn pattern_bindings(toks: &[Token], lo: usize, hi: usize) -> Vec<String> {
    let lo = lo.min(toks.len());
    let hi = hi.min(toks.len());
    let mut out: Vec<String> = Vec::new();
    for at in lo..hi {
        let Tok::Ident(s) = &toks[at].tok else { continue };
        if is_keyword(s) && s != "self" {
            continue;
        }
        if !s.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') && s != "self" {
            continue; // types, enum variants, consts
        }
        if s == "_" {
            continue;
        }
        // Adjacency checks stay inside the range: a `:` just past it is
        // a stripped type annotation, not a struct-pattern field colon.
        let next = (at + 1 < hi).then(|| &toks[at + 1].tok);
        if matches!(next, Some(t) if t.is_punct(':') || t.is_op("::")) {
            continue; // field name or path segment
        }
        let prev = (at > lo).then(|| &toks[at - 1].tok);
        if matches!(prev, Some(t) if t.is_op("::")) {
            continue; // path tail (`module::constant`)
        }
        if !out.iter().any(|o| o == s) {
            out.push(s.clone());
        }
    }
    out
}

/// Function names whose call blesses an argument as zero-checked.
const GUARD_FNS: &[&str] = &["approx_zero", "is_zero", "non_zero", "nonzero"];

/// Method names that establish a value/shape test on their receiver.
const GUARD_METHODS: &[&str] =
    &["is_empty", "is_finite", "is_nan", "is_normal", "is_sign_positive"];

/// Whether `toks[lo..hi]` *tests* `var`: compares it (possibly through a
/// method chain) against a literal or constant, passes it to a guard
/// function like `approx_zero`, or calls a guard method on it. This is
/// the gen-set oracle for the must-TESTED analysis — deliberately
/// lenient, since a test of any shape signals the author considered the
/// degenerate case.
pub fn tests_var(toks: &[Token], lo: usize, hi: usize, var: &str) -> bool {
    let lo = lo.min(toks.len());
    let hi = hi.min(toks.len());
    for at in lo..hi {
        if !toks[at].tok.is_ident(var) {
            continue;
        }
        if at >= 2 {
            // `approx_zero(var)` / `assert_nonzero(var)`-style guard calls.
            if toks[at - 1].tok.is_punct('(')
                && matches!(&toks[at - 2].tok, Tok::Ident(f) if GUARD_FNS.iter().any(|g| f.contains(g)))
            {
                return true;
            }
            // `LIT < var` / `0.0 != var`: comparison with the literal first.
            if is_comparison(&toks[at - 1].tok)
                && matches!(&toks[at - 2].tok, Tok::Int(_) | Tok::Float(_))
            {
                return true;
            }
        }
        // Forward: walk the method/field/cast chain off `var`, then look
        // for a guard method or a comparison against a literal/constant.
        let mut j = at + 1;
        loop {
            match toks.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('.')) => match toks.get(j + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(m)) => {
                        if GUARD_METHODS.contains(&m.as_str()) {
                            return true;
                        }
                        j += 2;
                        // Optional call parens on the chain segment.
                        if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('('))) {
                            j = match skip_group(toks, j, hi) {
                                Some(after) => after,
                                None => break,
                            };
                        }
                    }
                    Some(Tok::Int(_)) => j += 2, // tuple field `.0`
                    _ => break,
                },
                Some(Tok::Ident(k)) if k == "as" => j += 2, // `as f64`
                Some(t) if is_comparison(t) => {
                    let against_const = match toks.get(j + 1).map(|t| &t.tok) {
                        Some(Tok::Int(_) | Tok::Float(_)) => true,
                        Some(Tok::Ident(c)) => is_const_like(c),
                        _ => false,
                    };
                    if against_const {
                        return true;
                    }
                    break; // var-to-var comparison: try later occurrences
                }
                _ => break,
            }
        }
    }
    false
}

fn is_comparison(tok: &Tok) -> bool {
    matches!(tok, Tok::Punct('<' | '>')) || matches!(tok, Tok::Op("==" | "!=" | "<=" | ">="))
}

/// Uppercase-leading idents read as constants (`EPS`, `MIN_TOTAL`).
fn is_const_like(name: &str) -> bool {
    name.starts_with(|c: char| c.is_ascii_uppercase())
}

/// Skips a balanced `( … )` / `[ … ]` group starting at `open`; returns
/// the position after the closer, or `None` if unbalanced before `hi`.
fn skip_group(toks: &[Token], open: usize, hi: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (at, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(open) {
        match &t.tok {
            Tok::Punct('(' | '[') => depth += 1,
            Tok::Punct(')' | ']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(at + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether a definition statement's token range makes the defined value
/// intrinsically nonzero: a `.max(N)` clamp with a nonzero floor, a
/// nonzero literal initializer, or a length biased upward (`len() + 1`).
pub fn def_is_nonzero_safe(toks: &[Token], lo: usize, hi: usize) -> bool {
    let lo = lo.min(toks.len());
    let hi = hi.min(toks.len());
    for at in lo..hi {
        // `.max(EPS)` / `.max(1)` with a nonzero floor.
        if at >= 1 {
            let prev = at - 1;
            if toks[at].tok.is_ident("max")
                && toks[prev].tok.is_punct('.')
                && matches!(toks.get(at + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                && nonzero_literal_or_const(toks.get(at + 2).map(|t| &t.tok))
            {
                return true;
            }
        }
        // `… .len() + 1` (or any `+ <nonzero int>` after a `len()` call).
        if toks[at].tok.is_ident("len")
            && matches!(toks.get(at + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
            && matches!(toks.get(at + 2).map(|t| &t.tok), Some(Tok::Punct(')')))
            && matches!(toks.get(at + 3).map(|t| &t.tok), Some(Tok::Punct('+')))
            && nonzero_literal_or_const(toks.get(at + 4).map(|t| &t.tok))
        {
            return true;
        }
    }
    // A bare nonzero-literal initializer: `let n = 4;` / `= 4 as f64;` —
    // the value after the top-level `=` is a lone literal, optionally cast.
    if let Some(eq) = (lo..hi).find(|&at| toks[at].tok.is_punct('=')) {
        let mut vals: Vec<&Tok> =
            toks[eq + 1..hi].iter().map(|t| &t.tok).filter(|t| !t.is_punct(';')).collect();
        if vals.len() == 3 && vals[1].is_ident("as") {
            vals.truncate(1);
        }
        if vals.len() == 1 && nonzero_literal_or_const(Some(vals[0])) {
            return true;
        }
    }
    false
}

fn nonzero_literal_or_const(tok: Option<&Tok>) -> bool {
    match tok {
        // A digit 1–9 anywhere makes "0", "0x0", "0.0" false and keeps
        // "10", "0x1f", "1e-9" true; suffixed forms like `4u32` survive.
        Some(Tok::Int(v) | Tok::Float(v)) => v.chars().any(|c| ('1'..='9').contains(&c)),
        Some(Tok::Ident(c)) => is_const_like(c),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).tokens
    }

    #[test]
    fn idents_and_bindings() {
        let t = toks("let Some(Point { x: px, y }) = opt;");
        let all = idents_in(&t, 0, t.len());
        assert!(all.contains(&"px".to_string()) && all.contains(&"opt".to_string()));
        let binds = pattern_bindings(&t, 0, t.len() - 2);
        assert_eq!(binds, vec!["px", "y"]);
    }

    #[test]
    fn tests_var_sees_comparisons_and_guards() {
        let cases = [
            ("if n > 0 {", "n", true),
            ("if n == 0 {", "n", true),
            ("if 0 < n {", "n", true),
            ("if xs.is_empty() {", "xs", true),
            ("if !xs.is_empty() {", "xs", true),
            ("assert!(total > 0.0);", "total", true),
            ("if approx_zero(d) {", "d", true),
            ("if n as f64 > EPS {", "n", true),
            ("if n < m {", "n", false), // var-to-var: not a zero guard
            ("emit(n);", "n", false),
            ("if xs.len() > 2 {", "xs", true),
        ];
        for (src, var, want) in cases {
            let t = toks(src);
            assert_eq!(tests_var(&t, 0, t.len(), var), want, "{src}");
        }
    }

    #[test]
    fn safe_defs() {
        let cases = [
            ("let n = xs.len().max(1);", true),
            ("let d = (hi - lo).max(EPS);", true),
            ("let n = xs.len() + 1;", true),
            ("let n = 4;", true),
            ("let n = 4 as f64;", true),
            ("let n = 0;", false),
            ("let n = xs.len();", false),
            ("let d = hi - lo;", false),
            ("let n = xs.len().max(0);", false),
        ];
        for (src, want) in cases {
            let t = toks(src);
            assert_eq!(def_is_nonzero_safe(&t, 0, t.len()), want, "{src}");
        }
    }
}
