//! A tolerant statement/expression parser over function-body token
//! ranges. Like `lint::parser` it never fails: unrecognized token runs
//! become `Expr` statements, and genuinely stuck positions are recorded
//! as [`FlowError`]s while the scan advances. The output is a flat arena
//! of [`Stmt`]s whose control-flow kinds carry child statement lists —
//! the shape [`super::cfg`] lowers into a graph.

use crate::lexer::{Tok, Token};

use super::defuse;

/// Index into [`BodyTree::stmts`].
pub type StmtId = usize;

/// One statement: its kind, source position, head token range, and the
/// variable names it defines and uses. For control statements the head
/// range covers the keyword and its condition/scrutinee, not the nested
/// blocks — those are separate statements reachable through the kind.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Statement shape, with nested statement lists for control flow.
    pub kind: StmtKind,
    /// 1-based source line of the statement's first token.
    pub line: u32,
    /// Half-open token range of the statement head.
    pub tokens: (usize, usize),
    /// Variables this statement binds or writes.
    pub defs: Vec<String>,
    /// Variables this statement reads.
    pub uses: Vec<String>,
}

/// Statement shapes the tolerant grammar distinguishes.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let PAT = init;` — also the synthetic parameter statement at id 0.
    Let,
    /// `target = expr;` / `target op= expr;`.
    Assign {
        /// Whether the operator was compound (`+=`, `*=`, …).
        compound: bool,
        /// Base variable of the assignment target (`x` in `x.field = …`).
        target: String,
    },
    /// Any other expression statement (calls, macros, tail expressions).
    Expr,
    /// `if` / `if let` chain: one child list per branch.
    If {
        /// Then branch, then each `else if` / `else` branch in order.
        branches: Vec<Vec<StmtId>>,
        /// Whether a final `else` exists (no fallthrough past the arms).
        has_else: bool,
    },
    /// `match`: one child list per arm, plus each arm's pattern+guard
    /// token range (guards establish facts the arm body may rely on).
    Match {
        /// Arm bodies in source order.
        arms: Vec<Vec<StmtId>>,
        /// Pattern + guard token ranges, parallel to `arms`.
        arm_heads: Vec<(usize, usize)>,
    },
    /// `loop` / `while` / `while let` / `for`.
    Loop {
        /// Loop body statements.
        body: Vec<StmtId>,
        /// Whether the loop can exit from its head (`while` / `for`);
        /// bare `loop` exits only via `break`.
        conditional: bool,
    },
    /// A bare `{ … }` block (including `unsafe { … }`).
    Block {
        /// Block statements.
        body: Vec<StmtId>,
    },
    /// `return expr?;`
    Return,
    /// `break label? expr?;`
    Break,
    /// `continue label?;`
    Continue,
}

/// A position the tolerant parser could not make sense of.
#[derive(Debug, Clone)]
pub struct FlowError {
    /// 1-based source line.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

/// A parsed function body: statement arena plus the top-level statement
/// list. Statement id 0 is always the synthetic parameter definition.
#[derive(Debug, Clone)]
pub struct BodyTree {
    /// All statements, in creation order.
    pub stmts: Vec<Stmt>,
    /// Top-level statement ids in execution order (starts with 0).
    pub root: Vec<StmtId>,
    /// Recovered-from parse problems (empty on well-formed code).
    pub errors: Vec<FlowError>,
}

/// Parses the body token range of a function into a [`BodyTree`].
/// `body` is the range produced by `lint::parser` — braces included for
/// block bodies, a bare expression range for expression-bodied closures.
/// `params` seeds the synthetic definition statement at id 0; `skip`
/// lists token ranges of nested *named* fns, which are separate call-graph
/// nodes and must not contribute statements here.
pub fn parse_body(
    toks: &[Token],
    body: (usize, usize),
    params: Vec<String>,
    skip: &[(usize, usize)],
    decl_line: u32,
) -> BodyTree {
    let (lo, hi) = if body.1 > body.0 && toks[body.0].tok.is_punct('{') {
        (body.0 + 1, body.1.saturating_sub(1))
    } else {
        body
    };
    let mut p = Parser {
        toks,
        pos: lo,
        end: hi.min(toks.len()),
        skip,
        stmts: Vec::new(),
        errors: Vec::new(),
    };
    p.stmts.push(Stmt {
        kind: StmtKind::Let,
        line: decl_line,
        tokens: (body.0, body.0),
        defs: params,
        uses: Vec::new(),
    });
    let mut root = vec![0];
    root.extend(p.stmt_list());
    BodyTree { stmts: p.stmts, root, errors: p.errors }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    end: usize,
    skip: &'a [(usize, usize)],
    stmts: Vec<Stmt>,
    errors: Vec<FlowError>,
}

impl<'a> Parser<'a> {
    fn tok(&self, at: usize) -> Option<&'a Tok> {
        if at < self.end {
            self.toks.get(at).map(|t| &t.tok)
        } else {
            None
        }
    }

    fn line(&self, at: usize) -> u32 {
        self.toks.get(at.min(self.toks.len().saturating_sub(1))).map(|t| t.line).unwrap_or(0)
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.tok(self.pos), Some(t) if t.is_punct(c))
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.tok(self.pos), Some(t) if t.is_ident(name))
    }

    /// Jumps over any nested-fn range containing the cursor.
    fn skip_nested(&mut self) -> bool {
        if let Some(&(_, hi)) = self.skip.iter().find(|&&(lo, hi)| lo <= self.pos && self.pos < hi)
        {
            self.pos = hi;
            return true;
        }
        false
    }

    /// Consumes stray semicolons and `#[…]` attributes.
    fn skip_trivia(&mut self) {
        loop {
            if self.at_punct(';') {
                self.pos += 1;
            } else if self.at_punct('#')
                && matches!(self.tok(self.pos + 1), Some(t) if t.is_punct('['))
            {
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    match self.tok(self.pos) {
                        Some(Tok::Punct('[')) => depth += 1,
                        Some(Tok::Punct(']')) => depth -= 1,
                        Some(_) => {}
                        None => return,
                    }
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    /// Statements until the enclosing `}` (not consumed) or `self.end`.
    fn stmt_list(&mut self) -> Vec<StmtId> {
        let mut ids = Vec::new();
        loop {
            self.skip_trivia();
            if self.skip_nested() {
                continue;
            }
            if self.pos >= self.end || self.at_punct('}') {
                break;
            }
            let before = self.pos;
            if let Some(id) = self.stmt() {
                ids.push(id);
            }
            if self.pos == before {
                self.errors.push(FlowError {
                    line: self.line(self.pos),
                    msg: format!("stuck at token {:?}", self.tok(self.pos)),
                });
                self.pos += 1;
            }
        }
        ids
    }

    /// A `{ … }` block: consumes both braces.
    fn block(&mut self) -> Vec<StmtId> {
        if !self.at_punct('{') {
            self.errors.push(FlowError {
                line: self.line(self.pos),
                msg: format!("expected block, found {:?}", self.tok(self.pos)),
            });
            return Vec::new();
        }
        self.pos += 1;
        let ids = self.stmt_list();
        if self.at_punct('}') {
            self.pos += 1;
        }
        ids
    }

    fn push(&mut self, stmt: Stmt) -> StmtId {
        let id = self.stmts.len();
        self.stmts.push(stmt);
        id
    }

    fn stmt(&mut self) -> Option<StmtId> {
        match self.tok(self.pos)? {
            // Loop label: `'outer: loop { … }`.
            Tok::Lifetime(_) if matches!(self.tok(self.pos + 1), Some(t) if t.is_punct(':')) => {
                self.pos += 2;
                self.stmt()
            }
            Tok::Ident(s) => match s.as_str() {
                "let" => Some(self.let_stmt()),
                "if" => Some(self.if_stmt()),
                "match" => Some(self.match_stmt()),
                "while" => Some(self.while_stmt()),
                "for" => Some(self.for_stmt()),
                "loop" => Some(self.loop_stmt()),
                "return" => Some(self.jump_stmt(StmtKind::Return)),
                "break" => Some(self.jump_stmt(StmtKind::Break)),
                "continue" => Some(self.jump_stmt(StmtKind::Continue)),
                "unsafe" if matches!(self.tok(self.pos + 1), Some(t) if t.is_punct('{')) => {
                    let start = self.pos;
                    self.pos += 1;
                    let body = self.block();
                    Some(self.push(Stmt {
                        kind: StmtKind::Block { body },
                        line: self.line(start),
                        tokens: (start, start + 1),
                        defs: Vec::new(),
                        uses: Vec::new(),
                    }))
                }
                _ => Some(self.expr_or_assign(false)),
            },
            Tok::Punct('{') => {
                let start = self.pos;
                let body = self.block();
                Some(self.push(Stmt {
                    kind: StmtKind::Block { body },
                    line: self.line(start),
                    tokens: (start, start + 1),
                    defs: Vec::new(),
                    uses: Vec::new(),
                }))
            }
            _ => Some(self.expr_or_assign(false)),
        }
    }

    /// Scans an expression from the cursor to its terminator: `;` or (if
    /// `stop_comma`) `,` at depth 0, or a depth-0 closer that belongs to
    /// an enclosing construct. The terminator is not consumed. Returns
    /// the scanned range.
    fn scan_expr(&mut self, stop_comma: bool) -> (usize, usize) {
        let start = self.pos;
        let mut depth = 0usize;
        while let Some(tok) = self.tok(self.pos) {
            if self.skip_nested() {
                continue;
            }
            match tok {
                Tok::Punct('(' | '[' | '{') => depth += 1,
                Tok::Punct(')' | ']' | '}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                Tok::Punct(';') if depth == 0 => break,
                Tok::Punct(',') if depth == 0 && stop_comma => break,
                _ => {}
            }
            self.pos += 1;
        }
        (start, self.pos)
    }

    fn let_stmt(&mut self) -> StmtId {
        let start = self.pos;
        self.pos += 1; // `let`
                       // Pattern (and optional type annotation) up to a top-level `=`.
        let pat_start = self.pos;
        let mut depth = 0usize;
        let mut eq = None;
        while let Some(tok) = self.tok(self.pos) {
            match tok {
                Tok::Punct('(' | '[' | '{' | '<') => depth += 1,
                Tok::Punct(')' | ']' | '}' | '>') => depth = depth.saturating_sub(1),
                // Closing generics lex as shifts: `Vec<Vec<u8>>`.
                Tok::Op("<<") => depth += 2,
                Tok::Op(">>") => depth = depth.saturating_sub(2),
                Tok::Punct('=') if depth == 0 => {
                    eq = Some(self.pos);
                    break;
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            self.pos += 1;
        }
        let pat_end = self.pos;
        let defs = defuse::pattern_bindings(
            self.toks,
            pat_start,
            strip_annotation(self.toks, pat_start, pat_end),
        );
        let mut uses = Vec::new();
        if eq.is_some() {
            self.pos += 1; // `=`
            let (lo, hi) = self.scan_expr(false);
            uses = defuse::idents_in(self.toks, lo, hi);
        }
        if self.at_punct(';') {
            self.pos += 1;
        }
        self.push(Stmt {
            kind: StmtKind::Let,
            line: self.line(start),
            tokens: (start, self.pos),
            defs,
            uses,
        })
    }

    /// Condition/scrutinee scan: to a `{` at paren/bracket depth 0.
    fn head_to_brace(&mut self) -> (usize, usize) {
        let start = self.pos;
        let mut depth = 0usize;
        while let Some(tok) = self.tok(self.pos) {
            match tok {
                Tok::Punct('(' | '[') => depth += 1,
                Tok::Punct(')' | ']') => depth = depth.saturating_sub(1),
                Tok::Punct('{') if depth == 0 => break,
                Tok::Punct('}' | ';') if depth == 0 => break, // malformed; recover
                _ => {}
            }
            self.pos += 1;
        }
        (start, self.pos)
    }

    fn if_stmt(&mut self) -> StmtId {
        let start = self.pos;
        self.pos += 1; // `if`
        let (mut defs, cond_uses) = self.condition_head();
        let head_end = self.pos;
        let mut branches = vec![self.block()];
        let mut has_else = false;
        if self.at_ident("else") {
            has_else = true;
            self.pos += 1;
            if self.at_ident("if") {
                // `else if …`: the whole chain nests as one statement.
                if let Some(id) = self.stmt() {
                    branches.push(vec![id]);
                } else {
                    branches.push(Vec::new());
                }
            } else {
                branches.push(self.block());
            }
        }
        defs.dedup();
        self.push(Stmt {
            kind: StmtKind::If { branches, has_else },
            line: self.line(start),
            tokens: (start, head_end),
            defs,
            uses: cond_uses,
        })
    }

    /// `if`/`while` condition, handling the `let PAT = scrutinee` form.
    /// Returns pattern bindings (defs) and condition uses.
    fn condition_head(&mut self) -> (Vec<String>, Vec<String>) {
        if self.at_ident("let") {
            self.pos += 1;
            let pat_start = self.pos;
            let mut depth = 0usize;
            while let Some(tok) = self.tok(self.pos) {
                match tok {
                    Tok::Punct('(' | '[' | '<') => depth += 1,
                    Tok::Punct(')' | ']' | '>') => depth = depth.saturating_sub(1),
                    Tok::Op("<<") => depth += 2,
                    Tok::Op(">>") => depth = depth.saturating_sub(2),
                    Tok::Punct('=') if depth == 0 => break,
                    Tok::Punct('{') if depth == 0 => break, // malformed
                    _ => {}
                }
                self.pos += 1;
            }
            let defs = defuse::pattern_bindings(self.toks, pat_start, self.pos);
            if self.at_punct('=') {
                self.pos += 1;
            }
            let (lo, hi) = self.head_to_brace();
            (defs, defuse::idents_in(self.toks, lo, hi))
        } else {
            let (lo, hi) = self.head_to_brace();
            (Vec::new(), defuse::idents_in(self.toks, lo, hi))
        }
    }

    fn match_stmt(&mut self) -> StmtId {
        let start = self.pos;
        self.pos += 1; // `match`
        let (lo, hi) = self.head_to_brace();
        let mut uses = defuse::idents_in(self.toks, lo, hi);
        let mut defs: Vec<String> = Vec::new();
        let mut arms = Vec::new();
        let mut arm_heads = Vec::new();
        if self.at_punct('{') {
            self.pos += 1;
            loop {
                self.skip_trivia();
                if self.pos >= self.end || self.at_punct('}') {
                    break;
                }
                // Pattern + optional guard up to `=>`.
                let head_start = self.pos;
                let mut depth = 0usize;
                let mut guard_at = None;
                // `<` / `>` stay uncounted here: guards contain comparisons
                // (`n if n > limit =>`), which would unbalance the depth.
                while let Some(tok) = self.tok(self.pos) {
                    match tok {
                        Tok::Punct('(' | '[' | '{') => depth += 1,
                        Tok::Punct(')' | ']' | '}') => {
                            if depth == 0 {
                                break; // malformed arm; recover at the brace
                            }
                            depth -= 1;
                        }
                        Tok::Op("=>") if depth == 0 => break,
                        Tok::Ident(s) if s == "if" && depth == 0 && guard_at.is_none() => {
                            guard_at = Some(self.pos);
                        }
                        _ => {}
                    }
                    self.pos += 1;
                }
                let head_end = self.pos;
                let pat_end = guard_at.unwrap_or(head_end);
                defs.extend(defuse::pattern_bindings(self.toks, head_start, pat_end));
                if let Some(g) = guard_at {
                    uses.extend(defuse::idents_in(self.toks, g + 1, head_end));
                }
                arm_heads.push((head_start, head_end));
                if matches!(self.tok(self.pos), Some(t) if t.is_op("=>")) {
                    self.pos += 1;
                }
                // Arm body: a block, a control statement, or an expression
                // up to the next top-level `,`.
                let body = if self.at_punct('{') {
                    self.block()
                } else if matches!(
                    self.tok(self.pos),
                    Some(Tok::Ident(s)) if matches!(
                        s.as_str(),
                        "if" | "match" | "while" | "for" | "loop" | "return" | "break" | "continue"
                    )
                ) {
                    self.stmt().into_iter().collect()
                } else {
                    vec![self.expr_or_assign(true)]
                };
                arms.push(body);
                if self.at_punct(',') {
                    self.pos += 1;
                }
            }
            if self.at_punct('}') {
                self.pos += 1;
            }
        }
        defs.sort();
        defs.dedup();
        uses.sort();
        uses.dedup();
        self.push(Stmt {
            kind: StmtKind::Match { arms, arm_heads },
            line: self.line(start),
            tokens: (start, hi),
            defs,
            uses,
        })
    }

    fn while_stmt(&mut self) -> StmtId {
        let start = self.pos;
        self.pos += 1; // `while`
        let (defs, uses) = self.condition_head();
        let head_end = self.pos;
        let body = self.block();
        self.push(Stmt {
            kind: StmtKind::Loop { body, conditional: true },
            line: self.line(start),
            tokens: (start, head_end),
            defs,
            uses,
        })
    }

    fn for_stmt(&mut self) -> StmtId {
        let start = self.pos;
        self.pos += 1; // `for`
                       // Pattern up to a top-level `in`.
        let pat_start = self.pos;
        let mut depth = 0usize;
        while let Some(tok) = self.tok(self.pos) {
            match tok {
                Tok::Punct('(' | '[' | '<') => depth += 1,
                Tok::Punct(')' | ']' | '>') => depth = depth.saturating_sub(1),
                Tok::Ident(s) if s == "in" && depth == 0 => break,
                Tok::Punct('{') if depth == 0 => break, // malformed
                _ => {}
            }
            self.pos += 1;
        }
        let defs = defuse::pattern_bindings(self.toks, pat_start, self.pos);
        if self.at_ident("in") {
            self.pos += 1;
        }
        let (lo, hi) = self.head_to_brace();
        let head_end = self.pos;
        let body = self.block();
        self.push(Stmt {
            kind: StmtKind::Loop { body, conditional: true },
            line: self.line(start),
            tokens: (start, head_end),
            defs,
            uses: defuse::idents_in(self.toks, lo, hi),
        })
    }

    fn loop_stmt(&mut self) -> StmtId {
        let start = self.pos;
        self.pos += 1; // `loop`
        let body = self.block();
        self.push(Stmt {
            kind: StmtKind::Loop { body, conditional: false },
            line: self.line(start),
            tokens: (start, start + 1),
            defs: Vec::new(),
            uses: Vec::new(),
        })
    }

    fn jump_stmt(&mut self, kind: StmtKind) -> StmtId {
        let start = self.pos;
        self.pos += 1; // keyword
        if matches!(self.tok(self.pos), Some(Tok::Lifetime(_))) {
            self.pos += 1; // `break 'label`
        }
        let (lo, hi) = self.scan_expr(true);
        if self.at_punct(';') {
            self.pos += 1;
        }
        self.push(Stmt {
            kind,
            line: self.line(start),
            tokens: (start, hi),
            defs: Vec::new(),
            uses: defuse::idents_in(self.toks, lo, hi),
        })
    }

    /// Expression statement, classified as an assignment when a top-level
    /// `=` or compound-assign operator splits it.
    fn expr_or_assign(&mut self, stop_comma: bool) -> StmtId {
        let start = self.pos;
        let mut depth = 0usize;
        let mut assign_at: Option<(usize, bool)> = None;
        while let Some(tok) = self.tok(self.pos) {
            if self.skip_nested() {
                continue;
            }
            match tok {
                Tok::Punct('(' | '[' | '{') => depth += 1,
                Tok::Punct(')' | ']' | '}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                Tok::Punct(';') if depth == 0 => break,
                Tok::Punct(',') if depth == 0 && stop_comma => break,
                Tok::Punct('=') if depth == 0 && assign_at.is_none() => {
                    assign_at = Some((self.pos, false));
                }
                Tok::Op("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=")
                    if depth == 0 && assign_at.is_none() =>
                {
                    assign_at = Some((self.pos, true));
                }
                _ => {}
            }
            self.pos += 1;
        }
        let end = self.pos;
        if self.at_punct(';') {
            self.pos += 1;
        }
        let line = self.line(start);
        match assign_at {
            Some((op, compound)) => {
                let target = defuse::first_ident(self.toks, start, op);
                match target {
                    Some(base) => {
                        let mut uses = defuse::idents_in(self.toks, op + 1, end);
                        for extra in defuse::idents_in(self.toks, start, op) {
                            if extra != base && !uses.contains(&extra) {
                                uses.push(extra); // index/field path reads
                            }
                        }
                        if compound && !uses.contains(&base) {
                            uses.push(base.clone());
                        }
                        self.push(Stmt {
                            kind: StmtKind::Assign { compound, target: base.clone() },
                            line,
                            tokens: (start, end),
                            defs: vec![base],
                            uses,
                        })
                    }
                    None => self.push(Stmt {
                        kind: StmtKind::Expr,
                        line,
                        tokens: (start, end),
                        defs: Vec::new(),
                        uses: defuse::idents_in(self.toks, start, end),
                    }),
                }
            }
            None => self.push(Stmt {
                kind: StmtKind::Expr,
                line,
                tokens: (start, end),
                defs: Vec::new(),
                uses: defuse::idents_in(self.toks, start, end),
            }),
        }
    }
}

/// For `let PAT: Type = …` patterns: returns the end of the pattern part,
/// cutting a top-level `:` type annotation (struct-pattern field colons
/// sit at depth > 0 and survive).
fn strip_annotation(toks: &[Token], lo: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    for (at, t) in toks.iter().enumerate().take(hi).skip(lo) {
        match &t.tok {
            Tok::Punct('(' | '[' | '{' | '<') => depth += 1,
            Tok::Punct(')' | ']' | '}' | '>') => depth = depth.saturating_sub(1),
            Tok::Punct(':') if depth == 0 => return at,
            _ => {}
        }
    }
    hi
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    /// Parses `src` as a file, takes the first item's body, and runs the
    /// statement parser over it with the given params.
    pub(crate) fn tree_of(src: &str, params: &[&str]) -> BodyTree {
        let lexed = lex(src);
        let items = parse(&lexed);
        let item = &items.items[0];
        let body = item.body.expect("fixture fn has a body");
        let skip: Vec<(usize, usize)> = item
            .children
            .iter()
            .filter(|c| !matches!(c.kind, crate::parser::ItemKind::Closure { .. }))
            .map(|c| c.tokens)
            .collect();
        parse_body(
            &lexed.tokens,
            body,
            params.iter().map(|s| s.to_string()).collect(),
            &skip,
            item.line,
        )
    }

    fn kinds(tree: &BodyTree) -> Vec<&'static str> {
        tree.root
            .iter()
            .map(|&id| match tree.stmts[id].kind {
                StmtKind::Let => "let",
                StmtKind::Assign { .. } => "assign",
                StmtKind::Expr => "expr",
                StmtKind::If { .. } => "if",
                StmtKind::Match { .. } => "match",
                StmtKind::Loop { .. } => "loop",
                StmtKind::Block { .. } => "block",
                StmtKind::Return => "return",
                StmtKind::Break => "break",
                StmtKind::Continue => "continue",
            })
            .collect()
    }

    #[test]
    fn straight_line_lets_and_calls() {
        let t =
            tree_of("fn f(a: u32) -> u32 {\n    let b = a + 1;\n    emit(b);\n    b\n}\n", &["a"]);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        assert_eq!(kinds(&t), vec!["let", "let", "expr", "expr"]);
        assert_eq!(t.stmts[1].defs, vec!["b"]);
        assert_eq!(t.stmts[1].uses, vec!["a"]);
        assert_eq!(t.stmts[2].uses, vec!["emit", "b"]);
    }

    #[test]
    fn if_else_and_match_nest() {
        let t = tree_of(
            "fn f(x: i64) -> i64 {\n\
                 let mut y = 0;\n\
                 if x > 0 { y = x; } else { y = -x; }\n\
                 match y { 0 => return 0, n if n > 2 => y = n, _ => {} }\n\
                 y\n\
             }\n",
            &["x"],
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        assert_eq!(kinds(&t), vec!["let", "let", "if", "match", "expr"]);
        // Children are pushed before their control statement: resolve
        // through `root` rather than assuming arena order.
        let if_s = &t.stmts[t.root[2]];
        let StmtKind::If { branches, has_else } = &if_s.kind else { panic!() };
        assert_eq!(branches.len(), 2);
        assert!(has_else);
        let match_s = &t.stmts[t.root[3]];
        let StmtKind::Match { arms, arm_heads } = &match_s.kind else { panic!() };
        assert_eq!(arms.len(), 3);
        assert_eq!(arm_heads.len(), 3);
        assert!(match_s.defs.contains(&"n".to_string()));
        // The guard read is a use of the match statement.
        assert!(match_s.uses.contains(&"n".to_string()));
        // Arm 0 is a `return`, arm 1 an assignment.
        assert!(matches!(t.stmts[arms[0][0]].kind, StmtKind::Return));
        assert!(
            matches!(&t.stmts[arms[1][0]].kind, StmtKind::Assign { target, .. } if target == "y")
        );
    }

    #[test]
    fn loops_breaks_and_labels() {
        let t = tree_of(
            "fn f(xs: &[u32]) -> u32 {\n\
                 let mut acc = 0;\n\
                 'outer: for x in xs {\n\
                     while acc < 10 { acc += x; }\n\
                     if *x == 0 { break 'outer; }\n\
                 }\n\
                 loop { acc += 1; if acc > 3 { break; } }\n\
                 acc\n\
             }\n",
            &["xs"],
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        assert_eq!(kinds(&t), vec!["let", "let", "loop", "loop", "expr"]);
        let for_s = &t.stmts[t.root[2]];
        let StmtKind::Loop { body, conditional } = &for_s.kind else { panic!() };
        assert!(*conditional);
        assert_eq!(body.len(), 2);
        assert_eq!(for_s.defs, vec!["x"]);
        let StmtKind::Loop { conditional, .. } = &t.stmts[t.root[3]].kind else { panic!() };
        assert!(!conditional, "bare loop");
    }

    #[test]
    fn compound_assign_reads_its_target() {
        let t = tree_of("fn f() { let mut s = 0.0; s += delta(); s = 1.0; }\n", &[]);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        let plus = &t.stmts[2];
        assert!(matches!(&plus.kind, StmtKind::Assign { compound: true, target } if target == "s"));
        assert!(plus.uses.contains(&"s".to_string()));
        let plain = &t.stmts[3];
        assert!(
            matches!(&plain.kind, StmtKind::Assign { compound: false, target } if target == "s")
        );
        assert!(!plain.uses.contains(&"s".to_string()));
    }

    #[test]
    fn nested_fns_are_opaque_but_closures_are_not() {
        let t = tree_of(
            "fn f(xs: &[u32]) -> u32 {\n\
                 fn helper(v: u32) -> u32 { v * 2 }\n\
                 let total = xs.iter().map(|x| helper(*x)).sum();\n\
                 total\n\
             }\n",
            &["xs"],
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        // helper's body contributes no statements; the closure's tokens
        // stay inline so captured uses remain visible.
        assert_eq!(kinds(&t), vec!["let", "let", "expr"]);
        assert!(t.stmts[1].uses.contains(&"xs".to_string()));
        assert!(t.stmts[1].uses.contains(&"helper".to_string()));
    }

    #[test]
    fn let_else_and_struct_patterns() {
        let t = tree_of(
            "fn f(o: Option<Point>) -> i64 {\n\
                 let Some(Point { x: px, y }) = o else { return 0; };\n\
                 let v: Vec<u32> = Vec::new();\n\
                 px + y + v.len() as i64\n\
             }\n",
            &["o"],
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        let lets = &t.stmts[1];
        assert_eq!(lets.defs, vec!["px", "y"], "field name x is not a binding");
        let annotated = &t.stmts[2];
        assert_eq!(annotated.defs, vec!["v"], "type annotation stripped");
    }

    #[test]
    fn expression_bodied_closure_parses_as_statements() {
        let lexed = lex("fn f(xs: &[u32]) -> Vec<u32> { par_map(xs, |x| x + base) }\n");
        let items = parse(&lexed);
        let closure = &items.items[0].children[0];
        let t =
            parse_body(&lexed.tokens, closure.body.unwrap(), vec!["x".into()], &[], closure.line);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        assert_eq!(t.root.len(), 2, "params stmt + one expression");
        assert_eq!(t.stmts[1].uses, vec!["x", "base"]);
    }
}
