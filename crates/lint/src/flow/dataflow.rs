//! A small forward-dataflow engine over [`Cfg`](super::cfg::Cfg)-shaped
//! successor lists: bitset facts, per-node gen/kill transfer functions,
//! and a worklist solver. Two meets cover both analyses the sema pass
//! needs — union for *may* facts (reaching definitions) and intersection
//! for *must* facts (guard conditions established on every path).

use std::collections::VecDeque;

/// A fixed-width set of fact indices backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    bits: usize,
}

impl BitSet {
    /// The empty set over a universe of `bits` facts.
    pub fn empty(bits: usize) -> BitSet {
        BitSet { words: vec![0; bits.div_ceil(64)], bits }
    }

    /// The full set over a universe of `bits` facts.
    pub fn full(bits: usize) -> BitSet {
        let mut set = BitSet::empty(bits);
        for word in &mut set.words {
            *word = u64::MAX;
        }
        set.clear_tail();
        set
    }

    fn clear_tail(&mut self) {
        let tail = self.bits % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> (64 - tail);
            }
        }
    }

    /// Number of facts in the universe (not the population count).
    pub fn universe(&self) -> usize {
        self.bits
    }

    /// Adds `bit` to the set.
    pub fn insert(&mut self, bit: usize) {
        debug_assert!(bit < self.bits);
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Whether `bit` is in the set.
    pub fn contains(&self, bit: usize) -> bool {
        bit < self.bits && (self.words[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// `self ∪= other`; reports whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// `self ∩= other`; reports whether `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w & o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// `self −= other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Member indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.bits).filter(|&b| self.contains(b))
    }
}

/// How facts from multiple predecessors combine at a join point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meet {
    /// *May* analysis: a fact holds if it held on any incoming path
    /// (reaching definitions). Out-sets start empty and grow.
    Union,
    /// *Must* analysis: a fact holds only if it held on every incoming
    /// path (established guards). Out-sets start full and shrink.
    Intersect,
}

/// Per-node in/out fact sets after the solver converges.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Facts holding on entry to each node.
    pub ins: Vec<BitSet>,
    /// Facts holding on exit from each node.
    pub outs: Vec<BitSet>,
}

/// Solves the forward dataflow problem `out[n] = gen[n] ∪ (in[n] − kill[n])`
/// over `succ` by worklist iteration until fixpoint. `gen`, `kill`, and
/// `succ` must all have one entry per node; the entry node starts with an
/// empty in-set under both meets (nothing is established before the body
/// runs). Unreachable nodes keep the meet's identity in-set.
pub fn solve(
    succ: &[Vec<usize>],
    entry: usize,
    gen: &[BitSet],
    kill: &[BitSet],
    meet: Meet,
) -> Solution {
    let n = succ.len();
    let bits = gen.first().map(BitSet::universe).unwrap_or(0);
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, outs) in succ.iter().enumerate() {
        for &to in outs {
            preds[to].push(from);
        }
    }

    let identity = |node: usize| {
        if node == entry || meet == Meet::Union {
            BitSet::empty(bits)
        } else {
            BitSet::full(bits)
        }
    };
    let mut ins: Vec<BitSet> = (0..n).map(identity).collect();
    let mut outs: Vec<BitSet> = (0..n).map(identity).collect();
    // Seed every node's out with its own transfer so single-visit nodes
    // are correct even before any propagation reaches them.
    for node in 0..n {
        let mut out = ins[node].clone();
        out.subtract(&kill[node]);
        out.union_with(&gen[node]);
        outs[node] = out;
    }

    let mut queue: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(node) = queue.pop_front() {
        queued[node] = false;
        let mut inset = identity(node);
        for (i, &p) in preds[node].iter().enumerate() {
            match meet {
                Meet::Union => {
                    inset.union_with(&outs[p]);
                }
                Meet::Intersect => {
                    if node == entry {
                        // Back edges into the entry never *add* facts.
                        continue;
                    }
                    if i == 0 {
                        inset = outs[p].clone();
                    } else {
                        inset.intersect_with(&outs[p]);
                    }
                }
            }
        }
        let mut out = inset.clone();
        out.subtract(&kill[node]);
        out.union_with(&gen[node]);
        ins[node] = inset;
        if out != outs[node] {
            outs[node] = out;
            for &s in &succ[node] {
                if !queued[s] {
                    queued[s] = true;
                    queue.push_back(s);
                }
            }
        }
    }
    Solution { ins, outs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(bits: usize, members: &[usize]) -> BitSet {
        let mut s = BitSet::empty(bits);
        for &m in members {
            s.insert(m);
        }
        s
    }

    #[test]
    fn reaching_defs_union_over_a_diamond() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3; defs: node 1 gens fact 0,
        // node 2 gens fact 1 and both kill each other's fact.
        let succ = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let gen = vec![set(2, &[]), set(2, &[0]), set(2, &[1]), set(2, &[])];
        let kill = vec![set(2, &[]), set(2, &[1]), set(2, &[0]), set(2, &[])];
        let sol = solve(&succ, 0, &gen, &kill, Meet::Union);
        assert_eq!(sol.ins[3], set(2, &[0, 1]), "both branches' defs reach the join");
    }

    #[test]
    fn must_facts_intersect_over_a_diamond() {
        // Only one branch establishes fact 0: it must NOT hold at the join.
        let succ = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let gen = vec![set(1, &[]), set(1, &[0]), set(1, &[]), set(1, &[])];
        let kill = vec![set(1, &[]); 4];
        let sol = solve(&succ, 0, &gen, &kill, Meet::Intersect);
        assert!(!sol.ins[3].contains(0), "guard only on one path");
        assert!(sol.outs[1].contains(0));
    }

    #[test]
    fn must_facts_survive_when_every_path_establishes_them() {
        let succ = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let gen = vec![set(1, &[]), set(1, &[0]), set(1, &[0]), set(1, &[])];
        let kill = vec![set(1, &[]); 4];
        let sol = solve(&succ, 0, &gen, &kill, Meet::Intersect);
        assert!(sol.ins[3].contains(0), "guard on every path");
    }

    #[test]
    fn loops_converge_and_kill_works() {
        // 0 -> 1 -> 2 -> 1 (loop), 2 -> 3. Node 0 gens fact 0; node 2
        // kills it. After the loop body the fact must be gone.
        let succ = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let gen = vec![set(1, &[0]), set(1, &[]), set(1, &[]), set(1, &[])];
        let kill = vec![set(1, &[]), set(1, &[]), set(1, &[0]), set(1, &[])];
        let sol = solve(&succ, 0, &gen, &kill, Meet::Union);
        assert!(!sol.ins[3].contains(0));
        assert!(sol.ins[1].contains(0), "first iteration still sees it");
    }

    #[test]
    fn full_sets_mask_the_tail_bits() {
        let s = BitSet::full(70);
        assert_eq!(s.iter().count(), 70);
        assert!(!s.contains(70));
    }
}
