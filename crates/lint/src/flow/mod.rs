//! Body-level flow analysis: a tolerant statement parser
//! ([`stmt`]), per-function control-flow graphs ([`cfg`]), def/use token
//! scanners ([`defuse`]), and a gen/kill worklist dataflow engine
//! ([`dataflow`]). The sema pass builds one [`FnFlow`] per function-like
//! node; the flow rules (`par-shared-capture`, `par-float-reduce-order`,
//! `atomic-relaxed-handoff`, `flow-unchecked-div`) query it for
//! statement-level paths, reaching definitions, and must-hold guard
//! facts.

pub mod cfg;
pub mod dataflow;
pub mod defuse;
pub mod stmt;

use crate::lexer::{Tok, Token};

use dataflow::{BitSet, Meet, Solution};
use stmt::{BodyTree, Stmt, StmtId, StmtKind};

/// A function body's flow analysis: statement tree, CFG, and the two
/// solved dataflow problems every rule shares — *reaching definitions*
/// (may, over statement ids) and *established tests* (must, over
/// variable ids: "on every path here, this variable was compared
/// against a literal / guard function").
#[derive(Debug, Clone)]
pub struct FnFlow {
    /// Parsed statement arena.
    pub tree: BodyTree,
    /// Control-flow graph over statement ids (+ virtual exit).
    pub cfg: cfg::Cfg,
    /// Parameter names (also the defs of synthetic statement 0).
    pub params: Vec<String>,
    /// Sorted universe of defined variable names.
    pub vars: Vec<String>,
    /// Reaching definitions: facts are statement ids.
    pub reach: Solution,
    /// Must-established tests: facts are `vars` indices.
    pub tested: Solution,
}

impl FnFlow {
    /// The statement with id `id`.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.tree.stmts[id]
    }

    /// Index of `name` in the variable universe.
    pub fn var_id(&self, name: &str) -> Option<usize> {
        self.vars.binary_search_by(|v| v.as_str().cmp(name)).ok()
    }

    /// Whether `name` is defined anywhere in this body (params included).
    pub fn defines(&self, name: &str) -> bool {
        self.var_id(name).is_some()
    }

    /// Statement ids whose definition of `name` reaches the entry of
    /// statement `at`.
    pub fn reaching_defs(&self, at: StmtId, name: &str) -> Vec<StmtId> {
        self.reach.ins[at]
            .iter()
            .filter(|&d| self.tree.stmts[d].defs.iter().any(|v| v == name))
            .collect()
    }

    /// Whether `name` is tested on every path reaching statement `at`,
    /// or within `at`'s own head (same-statement guards like
    /// `if approx_zero(d) { 0.0 } else { x / d }` count).
    pub fn is_tested_at(&self, toks: &[Token], at: StmtId, name: &str) -> bool {
        if let Some(v) = self.var_id(name) {
            if self.tested.ins[at].contains(v) {
                return true;
            }
        }
        stmt_tests(toks, &self.tree.stmts[at], name)
    }

    /// The innermost statement whose head token range contains `tok`
    /// (control-statement bodies are separate statements with their own
    /// ranges, so "narrowest containing range" is the right tiebreak).
    pub fn stmt_at(&self, tok: usize) -> Option<StmtId> {
        self.tree
            .stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| (s.tokens.0..s.tokens.1).contains(&tok))
            .min_by_key(|(_, s)| s.tokens.1 - s.tokens.0)
            .map(|(id, _)| id)
    }

    /// Variables bound by `let`/patterns/params in this body — i.e. defs
    /// that are *not* plain assignment targets. An assignment to a name
    /// outside this set writes through a capture or a field.
    pub fn bound_locals(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.tree.stmts {
            if matches!(s.kind, StmtKind::Assign { .. }) {
                continue;
            }
            for d in &s.defs {
                if !out.contains(&d.as_str()) {
                    out.push(d.as_str());
                }
            }
        }
        out
    }
}

/// Whether a statement's head tokens (and, for `match`, its arm
/// pattern+guard ranges) test `name`.
fn stmt_tests(toks: &[Token], stmt: &Stmt, name: &str) -> bool {
    if defuse::tests_var(toks, stmt.tokens.0, stmt.tokens.1, name) {
        return true;
    }
    if let StmtKind::Match { arm_heads, .. } = &stmt.kind {
        return arm_heads.iter().any(|&(lo, hi)| defuse::tests_var(toks, lo, hi, name));
    }
    false
}

/// Extracts parameter names from an item's signature token range
/// (`item.tokens.0 .. body start`). Handles `fn` parameter lists
/// (generics skipped, `self` kept) and closure `|…|` lists.
pub fn fn_params(toks: &[Token], sig: (usize, usize), is_closure: bool) -> Vec<String> {
    let (lo, hi) = (sig.0.min(toks.len()), sig.1.min(toks.len()));
    if is_closure {
        // `move |a, (b, c)| …` / `|| …`.
        for at in lo..hi {
            match &toks[at].tok {
                Tok::Op("||") => return Vec::new(),
                Tok::Punct('|') => {
                    let mut depth = 0usize;
                    for end in at + 1..hi {
                        match &toks[end].tok {
                            Tok::Punct('(' | '[' | '<') => depth += 1,
                            Tok::Punct(')' | ']' | '>') => depth = depth.saturating_sub(1),
                            Tok::Punct('|') if depth == 0 => {
                                return split_params(toks, at + 1, end);
                            }
                            _ => {}
                        }
                    }
                    return Vec::new();
                }
                _ => {}
            }
        }
        return Vec::new();
    }
    // `fn name<G…>(params…)`.
    let mut at = lo;
    while at < hi && !toks[at].tok.is_ident("fn") {
        at += 1;
    }
    at += 2; // `fn` + name
    if at < hi && toks[at].tok.is_punct('<') {
        let mut depth = 0isize;
        while at < hi {
            match &toks[at].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                Tok::Op("<<") => depth += 2,
                Tok::Op(">>") => depth -= 2,
                _ => {}
            }
            at += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if at < hi && toks[at].tok.is_punct('(') {
        let mut depth = 0usize;
        for end in at..hi {
            match &toks[end].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return split_params(toks, at + 1, end);
                    }
                }
                _ => {}
            }
        }
    }
    Vec::new()
}

/// Splits a parameter list on top-level commas and takes each segment's
/// pattern part (before a top-level `:`).
fn split_params(toks: &[Token], lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut seg_start = lo;
    let mut depth = 0usize;
    for at in lo..=hi {
        let end_of_seg = at == hi || (depth == 0 && matches!(&toks[at].tok, Tok::Punct(',')));
        if at < hi {
            match &toks[at].tok {
                Tok::Punct('(' | '[' | '{' | '<') => depth += 1,
                Tok::Punct(')' | ']' | '}' | '>') => depth = depth.saturating_sub(1),
                Tok::Op("<<") => depth += 2,
                Tok::Op(">>") => depth = depth.saturating_sub(2),
                _ => {}
            }
        }
        if end_of_seg {
            let mut pat_end = at;
            let mut d = 0usize;
            for (p, t) in toks.iter().enumerate().take(at).skip(seg_start) {
                match &t.tok {
                    Tok::Punct('(' | '[' | '{' | '<') => d += 1,
                    Tok::Punct(')' | ']' | '}' | '>') => d = d.saturating_sub(1),
                    Tok::Punct(':') if d == 0 => {
                        pat_end = p;
                        break;
                    }
                    _ => {}
                }
            }
            out.extend(defuse::pattern_bindings(toks, seg_start, pat_end));
            seg_start = at + 1;
        }
    }
    out
}

/// Runs the full flow analysis for one function body. `sig` is the item
/// token range up to the body; `skip` lists nested named-fn token ranges
/// (separate nodes, excluded here).
pub fn analyze(
    toks: &[Token],
    sig: (usize, usize),
    body: (usize, usize),
    is_closure: bool,
    skip: &[(usize, usize)],
    decl_line: u32,
) -> FnFlow {
    let params = fn_params(toks, sig, is_closure);
    let tree = stmt::parse_body(toks, body, params.clone(), skip, decl_line);
    let cfg = cfg::build(&tree);
    let n = tree.stmts.len();

    let mut vars: Vec<String> = tree.stmts.iter().flat_map(|s| s.defs.iter().cloned()).collect();
    vars.sort();
    vars.dedup();

    // Reaching definitions: facts are statement ids; a statement kills
    // every other definition of any variable it defines.
    let mut defs_of: Vec<Vec<StmtId>> = vec![Vec::new(); vars.len()];
    for (id, s) in tree.stmts.iter().enumerate() {
        for d in &s.defs {
            if let Ok(v) = vars.binary_search(d) {
                defs_of[v].push(id);
            }
        }
    }
    let mut gen = vec![BitSet::empty(n); n + 1];
    let mut kill = vec![BitSet::empty(n); n + 1];
    for (id, s) in tree.stmts.iter().enumerate() {
        if s.defs.is_empty() {
            continue;
        }
        gen[id].insert(id);
        for d in &s.defs {
            if let Ok(v) = vars.binary_search(d) {
                for &other in &defs_of[v] {
                    if other != id {
                        kill[id].insert(other);
                    }
                }
            }
        }
    }
    let reach = dataflow::solve(&cfg.succ, cfg.entry, &gen, &kill, Meet::Union);

    // Established tests: facts are variable ids; redefinition kills.
    let nv = vars.len();
    let mut tgen = vec![BitSet::empty(nv); n + 1];
    let mut tkill = vec![BitSet::empty(nv); n + 1];
    for (id, s) in tree.stmts.iter().enumerate() {
        for (v, name) in vars.iter().enumerate() {
            if stmt_tests(toks, s, name) {
                tgen[id].insert(v);
            }
        }
        for d in &s.defs {
            if let Ok(v) = vars.binary_search(d) {
                tkill[id].insert(v);
            }
        }
    }
    let tested = dataflow::solve(&cfg.succ, cfg.entry, &tgen, &tkill, Meet::Intersect);

    FnFlow { tree, cfg, params, vars, reach, tested }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn flow_of(src: &str) -> (Vec<Token>, FnFlow) {
        let lexed = lex(src);
        let items = parse(&lexed);
        let item = &items.items[0];
        let body = item.body.expect("body");
        let skip: Vec<(usize, usize)> = item
            .children
            .iter()
            .filter(|c| !matches!(c.kind, crate::parser::ItemKind::Closure { .. }))
            .map(|c| c.tokens)
            .collect();
        let flow = analyze(&lexed.tokens, (item.tokens.0, body.0), body, false, &skip, item.line);
        (lexed.tokens, flow)
    }

    #[test]
    fn params_are_extracted_with_self_and_patterns() {
        let lexed = lex("impl T { fn m(&mut self, (a, b): (u32, u32), xs: &[Vec<u8>]) {} }\n");
        let items = parse(&lexed);
        let m = &items.items[0].children[0];
        let params = fn_params(&lexed.tokens, (m.tokens.0, m.body.unwrap().0), false);
        assert_eq!(params, vec!["self", "a", "b", "xs"]);
    }

    #[test]
    fn closure_params_come_from_the_pipe_list() {
        let lexed = lex("fn f() { let c = |(i, v): (usize, f64), rest| v; }\n");
        let items = parse(&lexed);
        let closure = &items.items[0].children[0];
        let params = fn_params(&lexed.tokens, (closure.tokens.0, closure.body.unwrap().0), true);
        assert_eq!(params, vec!["i", "v", "rest"]);
    }

    #[test]
    fn reaching_defs_distinguish_branch_writes() {
        let (_, f) = flow_of(
            "fn f(c: bool) -> i64 {\n\
                 let mut x = 0;\n\
                 if c { x = 1; } else { x = 2; }\n\
                 x\n\
             }\n",
        );
        assert!(f.tree.errors.is_empty(), "{:?}", f.tree.errors);
        // Ids: 0 params, 1 let, 2 `x=1`, 3 `x=2`, 4 if, 5 tail.
        let defs = f.reaching_defs(5, "x");
        assert_eq!(defs, vec![2, 3], "both branch writes reach, the init is killed");
    }

    #[test]
    fn must_tests_hold_only_on_guarded_paths() {
        let (toks, f) = flow_of(
            "fn f(sel: bool, n: f64, m: f64) -> f64 {\n\
                 if n == 0.0 { return 0.0; }\n\
                 let a = 1.0 / n;\n\
                 if sel { assert!(m > 0.0); } else { skip(); }\n\
                 a + 1.0 / m\n\
             }\n",
        );
        assert!(f.tree.errors.is_empty(), "{:?}", f.tree.errors);
        // Ids: 0 params, 1 return, 2 if(n), 3 let a, 4 assert, 5 skip,
        // 6 if(sel), 7 tail.
        assert!(f.is_tested_at(&toks, 3, "n"), "the early-return test guards n");
        assert!(f.is_tested_at(&toks, 7, "n"), "n stays tested on every path");
        assert!(!f.is_tested_at(&toks, 7, "m"), "m is tested on one branch only");
    }

    #[test]
    fn bound_locals_exclude_assignment_targets() {
        let (_, f) = flow_of("fn f(a: u32) { let b = 1; shared = a + b; }\n");
        assert_eq!(f.bound_locals(), vec!["a", "b"], "shared is written, not bound");
    }
}
