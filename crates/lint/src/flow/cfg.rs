//! Lowers a [`BodyTree`] into a per-function control-flow graph: one
//! node per statement plus a virtual exit node (`id == stmts.len()`).
//! Control statements are their own heads — an `if` node branches to
//! each branch's first statement, a loop node to its body and its
//! follow, `return`/`break`/`continue` to the exit or the loop frame.

use super::stmt::{BodyTree, StmtId, StmtKind};

/// A function body's control-flow graph over statement ids.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists, one per statement plus the exit node (last).
    pub succ: Vec<Vec<usize>>,
    /// First statement executed (the synthetic params statement).
    pub entry: usize,
    /// Virtual exit node id (`stmts.len()`).
    pub exit: usize,
}

impl Cfg {
    /// Statement ids unreachable from the entry — a connectivity bug in
    /// the lowering (or genuinely dead code after a diverging statement).
    pub fn orphans(&self) -> Vec<usize> {
        let mut seen = vec![false; self.succ.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(node) = stack.pop() {
            for &s in &self.succ[node] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        (0..self.succ.len() - 1).filter(|&n| !seen[n]).collect()
    }
}

/// Builds the CFG for a parsed body.
pub fn build(tree: &BodyTree) -> Cfg {
    let exit = tree.stmts.len();
    let mut cfg = Cfg { succ: vec![Vec::new(); exit + 1], entry: exit, exit };
    if let Some(&first) = tree.root.first() {
        cfg.entry = first;
    }
    let mut loops: Vec<(usize, usize)> = Vec::new();
    wire(tree, &tree.root, exit, &mut loops, &mut cfg);
    for list in &mut cfg.succ {
        list.sort_unstable();
        list.dedup();
    }
    cfg
}

/// Wires `block`'s statements in sequence, with `follow` as the node
/// after the block. `loops` is the active loop stack as `(head, follow)`
/// frames for `continue` / `break`.
fn wire(
    tree: &BodyTree,
    block: &[StmtId],
    follow: usize,
    loops: &mut Vec<(usize, usize)>,
    cfg: &mut Cfg,
) {
    for (i, &id) in block.iter().enumerate() {
        let next = block.get(i + 1).copied().unwrap_or(follow);
        match &tree.stmts[id].kind {
            StmtKind::Let | StmtKind::Assign { .. } | StmtKind::Expr => {
                cfg.succ[id].push(next);
            }
            StmtKind::Block { body } => {
                cfg.succ[id].push(body.first().copied().unwrap_or(next));
                wire(tree, body, next, loops, cfg);
            }
            StmtKind::If { branches, has_else } => {
                for branch in branches {
                    cfg.succ[id].push(branch.first().copied().unwrap_or(next));
                    wire(tree, branch, next, loops, cfg);
                }
                if !has_else {
                    cfg.succ[id].push(next);
                }
            }
            StmtKind::Match { arms, .. } => {
                if arms.is_empty() {
                    cfg.succ[id].push(next);
                }
                for arm in arms {
                    cfg.succ[id].push(arm.first().copied().unwrap_or(next));
                    wire(tree, arm, next, loops, cfg);
                }
            }
            StmtKind::Loop { body, conditional } => {
                if let Some(&head) = body.first() {
                    cfg.succ[id].push(head);
                }
                loops.push((id, next));
                // The body's fall-through loops back to the head statement.
                wire(tree, body, id, loops, cfg);
                loops.pop();
                // Conditional loops exit from the head; a bare `loop` only
                // exits via `break`, but the follow edge is kept anyway so
                // the exit stays reachable (documented over-approximation —
                // it can only add paths, never hide one).
                let _ = conditional;
                cfg.succ[id].push(next);
            }
            StmtKind::Return => cfg.succ[id].push(cfg.exit),
            StmtKind::Break => {
                cfg.succ[id].push(loops.last().map(|&(_, f)| f).unwrap_or(cfg.exit));
            }
            StmtKind::Continue => {
                cfg.succ[id].push(loops.last().map(|&(h, _)| h).unwrap_or(cfg.exit));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::stmt::tests::tree_of;
    use super::*;

    #[test]
    fn straight_line_chains_to_exit() {
        let t = tree_of("fn f(a: u32) -> u32 { let b = a; b }\n", &["a"]);
        let cfg = build(&t);
        assert_eq!(cfg.entry, 0);
        assert_eq!(cfg.succ[0], vec![1]);
        assert_eq!(cfg.succ[1], vec![2]);
        assert_eq!(cfg.succ[2], vec![cfg.exit]);
        assert!(cfg.orphans().is_empty());
    }

    // Note on ids: nested statements are pushed into the arena before
    // their enclosing control statement, so an `if` gets a higher id than
    // its branch bodies.

    #[test]
    fn if_without_else_falls_through() {
        let t = tree_of("fn f(x: i64) { let mut y = 0; if x > 0 { y = x; } emit(y); }\n", &["x"]);
        let cfg = build(&t);
        // Ids: 0 params, 1 let, 2 `y = x`, 3 if, 4 emit.
        assert_eq!(cfg.succ[3], vec![2, 4], "then branch and fall-through");
        assert_eq!(cfg.succ[2], vec![4]);
        assert!(cfg.orphans().is_empty());
    }

    #[test]
    fn if_else_has_no_fallthrough_edge() {
        let t = tree_of(
            "fn f(x: i64) { let y; if x > 0 { y = 1; } else { y = 2; } emit(y); }\n",
            &["x"],
        );
        let cfg = build(&t);
        // Ids: 0 params, 1 let, 2 `y = 1`, 3 `y = 2`, 4 if, 5 emit.
        assert_eq!(cfg.succ[4], vec![2, 3], "only the two branches");
        assert_eq!(cfg.succ[2], vec![5]);
        assert_eq!(cfg.succ[3], vec![5]);
        assert!(cfg.orphans().is_empty());
    }

    #[test]
    fn loop_bodies_cycle_back_and_breaks_leave() {
        let t = tree_of(
            "fn f(xs: &[u32]) { let mut n = 0; for x in xs { if *x == 0 { break; } n += 1; } emit(n); }\n",
            &["xs"],
        );
        let cfg = build(&t);
        // Ids: 0 params, 1 let, 2 break, 3 if, 4 `n += 1`, 5 for, 6 emit.
        assert_eq!(cfg.succ[5], vec![3, 6], "loop: body head and follow");
        assert_eq!(cfg.succ[2], vec![6], "break -> loop follow");
        assert_eq!(cfg.succ[4], vec![5], "body tail cycles to the head");
        assert!(cfg.orphans().is_empty());
    }

    #[test]
    fn returns_jump_to_exit_and_match_arms_fan_out() {
        let t = tree_of(
            "fn f(x: Option<u32>) -> u32 { match x { Some(v) => return v, None => {} } 0 }\n",
            &["x"],
        );
        let cfg = build(&t);
        // Ids: 0 params, 1 return, 2 match, 3 tail `0`.
        assert_eq!(cfg.succ[2], vec![1, 3], "arm body and empty-arm fall-through");
        assert_eq!(cfg.succ[1], vec![cfg.exit]);
        assert!(cfg.orphans().is_empty());
    }

    #[test]
    fn continue_targets_the_loop_head() {
        let t = tree_of(
            "fn f(xs: &[u32]) { let mut n = 0; for x in xs { if *x == 0 { continue; } n += 1; } }\n",
            &["xs"],
        );
        let cfg = build(&t);
        // Ids: 0 params, 1 let, 2 continue, 3 if, 4 `n += 1`, 5 for.
        assert_eq!(cfg.succ[2], vec![5], "continue -> loop head");
        assert!(cfg.orphans().is_empty());
    }
}
