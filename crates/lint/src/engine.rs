//! The driver: walks the workspace, runs every rule on every `.rs` file,
//! applies `Lint.toml` severities and the baseline, and publishes scan
//! metrics through the `fbox-telemetry` registry so reports ride the
//! same table/JSON sinks as the rest of the pipeline.

use std::path::{Path, PathBuf};

use fbox_telemetry::{Registry, SpanGuard};
use serde::{Deserialize, Serialize};

use crate::baseline::{Baseline, BaselineEntry, Matcher};
use crate::config::Config;
use crate::rules::{all_rules, Finding, Severity};

/// One reported finding with its resolved severity and baseline status.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reported {
    /// The finding itself.
    pub finding: Finding,
    /// Effective severity (`"warn"` or `"deny"`; `allow` is dropped).
    pub severity: String,
    /// Whether a baseline entry covers it (it then never fails `--deny`).
    pub baselined: bool,
}

/// Complete result of a lint run.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// All reported findings, sorted by (file, line, rule).
    pub findings: Vec<Reported>,
    /// Baseline entries that no longer match any source line.
    pub stale_baseline: Vec<BaselineEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: u32,
    /// Number of source lines scanned.
    pub lines_scanned: u32,
}

impl Report {
    /// Deny-severity findings not covered by the baseline — the set that
    /// fails a `--deny` run.
    pub fn violations(&self) -> impl Iterator<Item = &Reported> {
        self.findings.iter().filter(|r| r.severity == "deny" && !r.baselined)
    }

    /// Whether a `--deny` run fails: live deny findings or stale baseline
    /// entries (the stale check keeps the allowlist honest).
    pub fn deny_failure(&self) -> bool {
        self.violations().next().is_some() || !self.stale_baseline.is_empty()
    }
}

/// Runs the full analysis over `root`: the per-file lexical pass, then
/// the whole-workspace semantic pass over the call graph.
pub fn run(root: &Path, config: &Config, baseline: &Baseline, registry: &Registry) -> Report {
    let _span = SpanGuard::enter(registry, "lint.run");
    let rules = all_rules();
    let mut report = Report::default();

    // I/O stays serial (the walk order defines file identity), then
    // lexing/parsing and the per-file lexical rules fan out over
    // `fbox_par::par_map`. Per-file work is independent and `par_map`
    // returns results in input order, so the flattened finding list is
    // byte-identical at any `FBOX_THREADS`. The semantic pass needs every
    // file at once (the call graph spans the workspace), so sources are
    // held in memory and sema runs sequentially after the fan-out.
    let texts: Vec<(String, String)> = walk(root, config)
        .into_iter()
        .filter_map(|rel| {
            let text = std::fs::read_to_string(root.join(&rel)).ok()?;
            Some((rel, text))
        })
        .collect();
    let sources: Vec<crate::source::SourceFile> = {
        let _span = SpanGuard::enter(registry, "lint.parse");
        fbox_par::par_map(&texts, |(rel, text)| crate::source::SourceFile::parse(rel, text))
    };
    drop(texts);

    let mut raw: Vec<(Finding, Severity)> = {
        let _span = SpanGuard::enter(registry, "lint.lexical");
        fbox_par::par_map(&sources, |file| {
            let mut found: Vec<(Finding, Severity)> = Vec::new();
            for rule in &rules {
                if !config.rule_applies_to(rule.id(), &file.path) {
                    continue;
                }
                let severity =
                    config.severity(rule.id(), &file.crate_label, rule.default_severity());
                if severity == Severity::Allow {
                    continue;
                }
                let mut hits = Vec::new();
                rule.check(file, &mut hits);
                found.extend(hits.into_iter().map(|f| (f, severity)));
            }
            found
        })
        .into_iter()
        .flatten()
        .collect()
    };
    report.files_scanned = sources.len().min(u32::MAX as usize) as u32;
    let total_lines: usize = sources.iter().map(|f| f.lines.len()).sum();
    report.lines_scanned = total_lines.min(u32::MAX as usize) as u32;

    // Semantic pass. Severity and path scoping are resolved per finding
    // (the sink's file), since one rule's findings span many files.
    let model = {
        let _span = SpanGuard::enter(registry, "lint.sema");
        crate::sema::Model::build(&sources, config)
    };
    registry.counter("lint.sema.nodes").add(model.nodes.len() as u64);
    registry.counter("lint.sema.edges").add(model.edge_count() as u64);
    registry.counter("lint.sema.det_roots").add(model.det_roots.len() as u64);
    registry.counter("lint.sema.par_roots").add(model.par_roots.len() as u64);
    registry.counter("lint.absint.sccs").add(model.absint.scc_count as u64);
    registry.counter("lint.absint.max_scc").add(model.absint.max_scc_len as u64);
    registry.counter("lint.absint.consts").add(model.absint.consts.len() as u64);

    // Interval-proof refinement of the lexical cast rule: drop
    // `float-int-cast` findings on lines the abstract interpreter either
    // proved lossless or re-reports as `cast-truncating-unproven`.
    let interval_checked = model.interval_checked_cast_lines();
    raw.retain(|(f, _)| {
        f.rule != "float-int-cast" || !interval_checked.contains(&(f.file.clone(), f.line))
    });
    let labels: std::collections::BTreeMap<&str, &str> =
        sources.iter().map(|f| (f.path.as_str(), f.crate_label.as_str())).collect();
    for rule in crate::sema::all_sema_rules() {
        let mut found = Vec::new();
        rule.check(&model, &mut found);
        for f in found {
            if !config.rule_applies_to(rule.id(), &f.file) {
                continue;
            }
            let label = labels.get(f.file.as_str()).copied().unwrap_or_default();
            let severity = config.severity(rule.id(), label, rule.default_severity());
            if severity == Severity::Allow {
                continue;
            }
            raw.push((f, severity));
        }
    }

    raw.sort_by(|a, b| (&a.0.file, a.0.line, &a.0.rule).cmp(&(&b.0.file, b.0.line, &b.0.rule)));

    let mut matcher = Matcher::new(baseline);
    for (finding, severity) in raw {
        let baselined = matcher.matches(&finding);
        registry.counter(&format!("lint.findings.{}", finding.rule)).inc();
        report.findings.push(Reported {
            finding,
            severity: severity.as_str().to_owned(),
            baselined,
        });
    }
    report.stale_baseline = matcher.finish();

    registry.counter("lint.files_scanned").add(u64::from(report.files_scanned));
    registry.counter("lint.lines_scanned").add(u64::from(report.lines_scanned));
    registry.counter("lint.violations").add(report.violations().count() as u64);
    report
}

/// Collects every workspace-relative `.rs` path under `root`, honouring
/// `[paths] exclude`, skipping `target/` and dot-directories. Sorted for
/// deterministic output.
pub fn walk(root: &Path, config: &Config) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if path.is_dir() {
                if name.starts_with('.') || name == "target" || config.is_excluded(&rel) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && !config.is_excluded(&rel) {
                out.push(rel);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_failure_counts_stale_entries() {
        let mut report = Report::default();
        assert!(!report.deny_failure());
        report.stale_baseline.push(BaselineEntry {
            rule: "float-eq".into(),
            file: "gone.rs".into(),
            snippet: "x == 0.0".into(),
        });
        assert!(report.deny_failure(), "stale baseline alone must fail --deny");
    }

    #[test]
    fn baselined_deny_findings_are_not_violations() {
        let finding = Finding {
            rule: "unwrap-in-lib".into(),
            file: "a.rs".into(),
            line: 1,
            snippet: "x.unwrap()".into(),
            path: Vec::new(),
        };
        let mut report = Report::default();
        report.findings.push(Reported { finding, severity: "deny".into(), baselined: true });
        assert_eq!(report.violations().count(), 0);
        assert!(!report.deny_failure());
    }
}
