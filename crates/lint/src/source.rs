//! A lexed source file plus the file-level context rules need: which
//! crate it belongs to, whether it is library / binary / test code, which
//! line ranges are `#[cfg(test)]` / `#[test]` spans, and which lines carry
//! inline `// fbox-lint: allow(rule-id)` suppressions.

use std::path::Path;

use crate::lexer::{lex, Lexed, Tok};
use crate::parser::{self, Item, ItemKind, ItemTree};

/// Coarse classification of a `.rs` file by its role in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` — the strictest tier.
    Lib,
    /// A binary entry point (`src/bin/*`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Criterion-style benches (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
    /// `build.rs` scripts.
    Build,
}

impl FileKind {
    /// Classifies a workspace-relative path.
    pub fn classify(rel: &str) -> FileKind {
        let norm = rel.replace('\\', "/");
        if norm.ends_with("build.rs") {
            FileKind::Build
        } else if norm.contains("/tests/") || norm.starts_with("tests/") {
            FileKind::Test
        } else if norm.contains("/benches/") || norm.starts_with("benches/") {
            FileKind::Bench
        } else if norm.contains("/examples/") || norm.starts_with("examples/") {
            FileKind::Example
        } else if norm.contains("/bin/") || norm.ends_with("src/main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    }
}

/// A source file ready for rule checks.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Owning crate label: `crates/<name>`, `shims/<name>`, or `fbox`
    /// for the root package. Used for per-crate severity overrides.
    pub crate_label: String,
    /// Role of the file.
    pub kind: FileKind,
    /// Raw source lines (for snippets).
    pub lines: Vec<String>,
    /// Lexer output.
    pub lexed: Lexed,
    /// Item-level parse of the token stream.
    pub items: ItemTree,
    /// Inclusive 1-based line ranges of test-gated code.
    test_spans: Vec<(u32, u32)>,
    /// (line, rule-id) pairs from inline suppression comments.
    suppressions: Vec<(u32, String)>,
    /// Inclusive (start, end, rule-id) ranges from item-scoped
    /// suppressions: a standalone `// fbox-lint: allow(rule)` directly
    /// above an item silences the rule for the whole item.
    suppression_spans: Vec<(u32, u32, String)>,
}

impl SourceFile {
    /// Builds a [`SourceFile`] from a workspace-relative path and its text.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let path = rel_path.replace('\\', "/");
        let lexed = lex(text);
        let items = parser::parse(&lexed);
        let test_spans = find_test_spans(&lexed);
        let suppressions = find_suppressions(&lexed);
        let suppression_spans = item_suppression_spans(&items, &suppressions);
        let suppressions = suppressions.into_iter().map(|s| (s.line, s.rule)).collect();
        SourceFile {
            crate_label: crate_label(&path),
            kind: FileKind::classify(&path),
            path,
            lines: text.lines().map(str::to_owned).collect(),
            lexed,
            items,
            test_spans,
            suppressions,
            suppression_spans,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` module or `#[test]` fn.
    pub fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether library-tier rules (unwrap/expect/panic) apply at `line`:
    /// library files only, and never inside test spans.
    pub fn is_library_code(&self, line: u32) -> bool {
        self.kind == FileKind::Lib && !self.in_test_span(line)
    }

    /// Whether runtime (non-test) rules apply at `line`: library or binary
    /// code outside test spans.
    pub fn is_runtime_code(&self, line: u32) -> bool {
        matches!(self.kind, FileKind::Lib | FileKind::Bin) && !self.in_test_span(line)
    }

    /// Whether `rule` is suppressed at `line` by an inline
    /// `// fbox-lint: allow(rule)` comment — trailing on that line,
    /// standalone on the line above, or standalone above an item (`fn`,
    /// `impl`, `mod`, …), which silences the rule for the whole item.
    pub fn is_suppressed(&self, line: u32, rule: &str) -> bool {
        self.suppressions.iter().any(|(l, r)| r == rule && *l == line)
            || self
                .suppression_spans
                .iter()
                .any(|(lo, hi, r)| r == rule && (*lo..=*hi).contains(&line))
    }

    /// The trimmed text of 1-based `line` (empty when out of range).
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }
}

/// Derives the per-crate label from a workspace-relative path.
fn crate_label(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some(top @ ("crates" | "shims")) => match parts.next() {
            Some(name) => format!("{top}/{name}"),
            None => top.to_owned(),
        },
        // Root package files: src/, tests/, examples/.
        _ => "fbox".to_owned(),
    }
}

/// Finds inclusive line spans of items gated behind `#[cfg(test)]` or
/// marked `#[test]`. Lexical, not a parse: after such an attribute we
/// brace-match the next `{...}` block (or stop at `;` for path modules).
fn find_test_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].tok.is_punct('#') && i + 1 < toks.len() && toks[i + 1].tok.is_punct('[') {
            let (content_end, is_test_attr) = scan_attribute(lexed, i + 1);
            if is_test_attr {
                if let Some(span) = item_span(lexed, content_end, toks[i].line) {
                    spans.push(span);
                    // Skip past the item so nested attributes inside it do
                    // not produce overlapping spans.
                    i = index_after_line(lexed, span.1);
                    continue;
                }
            }
            i = content_end;
        } else {
            i += 1;
        }
    }
    spans
}

/// Scans the attribute starting at the `[` token index; returns the index
/// just past the closing `]` and whether the attribute is test-gating
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]` — but not
/// `#[cfg(not(test))]`).
fn scan_attribute(lexed: &Lexed, open: usize) -> (usize, bool) {
    let toks = &lexed.tokens;
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut i = open;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            Tok::Ident(s) => idents.push(s),
            _ => {}
        }
        i += 1;
    }
    let has = |name: &str| idents.contains(&name);
    let gating = (idents.first() == Some(&"test"))
        || (has("cfg") && has("test") && !has("not"))
        || (idents.first() == Some(&"bench"));
    (i, gating)
}

/// From the token after an attribute, finds the line span of the item it
/// decorates: skips further attributes, then brace-matches the item body.
fn item_span(lexed: &Lexed, mut i: usize, attr_line: u32) -> Option<(u32, u32)> {
    let toks = &lexed.tokens;
    // Skip any further attributes between this one and the item.
    while i + 1 < toks.len() && toks[i].tok.is_punct('#') && toks[i + 1].tok.is_punct('[') {
        let (next, _) = scan_attribute(lexed, i + 1);
        i = next;
    }
    // Walk to the opening `{` of the item body (or a `;` for `mod x;`).
    let mut j = i;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => break,
            Tok::Punct(';') => return Some((attr_line, toks[j].line)),
            _ => j += 1,
        }
    }
    if j >= toks.len() {
        return None;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some((attr_line, toks[j].line));
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Unbalanced braces: treat the rest of the file as the span.
    Some((attr_line, u32::MAX))
}

/// First token index on a line strictly after `line`.
fn index_after_line(lexed: &Lexed, line: u32) -> usize {
    lexed.tokens.iter().position(|t| t.line > line).unwrap_or(lexed.tokens.len())
}

/// One parsed `// fbox-lint: allow(rule)` directive.
struct Suppression {
    /// Target line: the comment's own line when trailing, the line below
    /// when standalone.
    line: u32,
    /// Rule id named in `allow(…)`.
    rule: String,
    /// Whether the comment stood alone (no code tokens on its line) —
    /// only standalone directives can scale up to item scope.
    standalone: bool,
}

/// Extracts suppressions from `// fbox-lint: allow(rule-id)` comments. A
/// *trailing* comment (code tokens on the same line) suppresses its own
/// line; a *standalone* comment suppresses the line directly below it —
/// and, when that line starts an item, the whole item (see
/// [`item_suppression_spans`]).
fn find_suppressions(lexed: &Lexed) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("fbox-lint:") else { continue };
        let rest = &c.text[pos + "fbox-lint:".len()..];
        let Some(open) = rest.find("allow(") else { continue };
        let args = &rest[open + "allow(".len()..];
        let Some(close) = args.find(')') else { continue };
        let trailing = lexed.tokens.iter().any(|t| t.line == c.line);
        let target = if trailing { c.line } else { c.end_line + 1 };
        for rule in args[..close].split(',') {
            out.push(Suppression {
                line: target,
                rule: rule.trim().to_owned(),
                standalone: !trailing,
            });
        }
    }
    out
}

/// Expands standalone suppressions that sit directly above an item into
/// whole-item suppression ranges. A *trailing* suppression never scales
/// up: it stays bound to its own line.
fn item_suppression_spans(
    items: &ItemTree,
    suppressions: &[Suppression],
) -> Vec<(u32, u32, String)> {
    let mut spans = Vec::new();
    for s in suppressions.iter().filter(|s| s.standalone) {
        items.walk(&mut |item: &Item| {
            if item.attr_line == s.line && item_scopes_suppressions(&item.kind) {
                spans.push((item.attr_line, item.end_line, s.rule.clone()));
            }
        });
    }
    spans
}

/// Item kinds a standalone suppression comment can cover wholesale.
fn item_scopes_suppressions(kind: &ItemKind) -> bool {
    matches!(
        kind,
        ItemKind::Fn
            | ItemKind::Impl { .. }
            | ItemKind::Mod
            | ItemKind::Trait
            | ItemKind::TypeDef
            | ItemKind::Static { .. }
            | ItemKind::Const
            | ItemKind::MacroCall
    )
}

/// Reads and parses a file from disk, returning `None` on I/O failure
/// (the engine reports unreadable files separately).
pub fn load(root: &Path, rel: &str) -> Option<SourceFile> {
    let text = std::fs::read_to_string(root.join(rel)).ok()?;
    Some(SourceFile::parse(rel, &text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(FileKind::classify("crates/core/src/fbox.rs"), FileKind::Lib);
        assert_eq!(FileKind::classify("crates/repro/src/bin/repro-all.rs"), FileKind::Bin);
        assert_eq!(FileKind::classify("crates/core/tests/properties.rs"), FileKind::Test);
        assert_eq!(FileKind::classify("crates/bench/benches/measures.rs"), FileKind::Bench);
        assert_eq!(FileKind::classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(FileKind::classify("tests/framework_e2e.rs"), FileKind::Test);
    }

    #[test]
    fn crate_labels() {
        assert_eq!(crate_label("crates/core/src/lib.rs"), "crates/core");
        assert_eq!(crate_label("shims/rand/src/lib.rs"), "shims/rand");
        assert_eq!(crate_label("src/lib.rs"), "fbox");
        assert_eq!(crate_label("examples/quickstart.rs"), "fbox");
    }

    #[test]
    fn cfg_test_module_span_is_detected() {
        let src = "pub fn lib_code() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() { x.unwrap(); }\n\
                   }\n\
                   pub fn more_lib() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.in_test_span(1));
        assert!(f.in_test_span(4));
        assert!(!f.in_test_span(6));
    }

    #[test]
    fn test_fn_span_is_detected_and_not_test_is_ignored() {
        let src = "#[test]\nfn check() {\n  boom();\n}\n\
                   #[cfg(not(test))]\nfn shipped() {\n  fine();\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.in_test_span(3));
        assert!(!f.in_test_span(7));
    }

    #[test]
    fn item_scope_suppression_covers_the_whole_fn() {
        let src = "// fbox-lint: allow(float-eq)\n\
                   pub fn f(x: f64) -> bool {\n\
                       let a = x == 0.0;\n\
                       a\n\
                   }\n\
                   pub fn g(x: f64) -> bool { x == 0.0 }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_suppressed(2, "float-eq"), "item line");
        assert!(f.is_suppressed(3, "float-eq"), "body line");
        assert!(!f.is_suppressed(6, "float-eq"), "next item is not covered");
        assert!(!f.is_suppressed(3, "unwrap-in-lib"), "other rules are not covered");
    }

    #[test]
    fn item_scope_suppression_covers_impls_and_attrs() {
        let src = "// fbox-lint: allow(unwrap-in-lib)\n\
                   #[allow(dead_code)]\n\
                   impl Foo {\n\
                       fn a(&self) { self.x.unwrap(); }\n\
                       fn b(&self) { self.y.unwrap(); }\n\
                   }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_suppressed(4, "unwrap-in-lib"));
        assert!(f.is_suppressed(5, "unwrap-in-lib"));
    }

    #[test]
    fn trailing_suppression_stays_line_scoped() {
        let src = "pub fn f(x: f64) -> bool { // fbox-lint: allow(float-eq)\n\
                       x == 0.0\n\
                   }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_suppressed(1, "float-eq"), "its own line is suppressed");
        assert!(!f.is_suppressed(2, "float-eq"), "trailing must not cover the item body");
    }

    #[test]
    fn suppression_applies_to_same_and_next_line() {
        let src = "// fbox-lint: allow(float-eq) justified here\n\
                   let a = x == 0.0;\n\
                   let b = y == 0.0; // fbox-lint: allow(float-eq, unwrap-in-lib)\n\
                   let c = z == 0.0;\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_suppressed(2, "float-eq"));
        assert!(f.is_suppressed(3, "float-eq"));
        assert!(f.is_suppressed(3, "unwrap-in-lib"));
        assert!(!f.is_suppressed(4, "float-eq"));
    }
}
