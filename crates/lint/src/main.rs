//! `fbox-lint` CLI. See `--help` for usage; the README "Static analysis"
//! section and `DESIGN.md` document the rule set and baseline workflow.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use fbox_lint::baseline::Baseline;
use fbox_lint::config::Config;
use fbox_lint::engine::{self, Report};
use fbox_lint::rules::all_rules;
use fbox_lint::sema::all_sema_rules;
use fbox_telemetry::{JsonSink, Registry, Subscriber, TableSink};

const USAGE: &str = "\
fbox-lint — domain-aware static analysis for the F-Box workspace

USAGE:
    fbox-lint [OPTIONS]

OPTIONS:
    --root <dir>        Workspace root (default: nearest ancestor with Lint.toml)
    --config <file>     Rule configuration (default: <root>/Lint.toml)
    --baseline <file>   Findings allowlist (default: <root>/lint-baseline.json)
    --deny              Exit 1 on non-baselined deny findings or stale baseline entries
    --json              Emit the report as JSON instead of a table
    --github            Emit GitHub Actions annotations (::warning/::error) instead of a table
    --metrics           Append scan telemetry (table, or snapshot JSON with --json)
    --write-baseline    Rewrite the baseline from current deny findings and exit
    --check-baseline    Exit 1 unless the baseline is minimal (re-emitting produces no diff)
    --list-rules        Print the rule set and exit
    -h, --help          Show this help
";

struct Options {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    deny: bool,
    json: bool,
    github: bool,
    metrics: bool,
    write_baseline: bool,
    check_baseline: bool,
    list_rules: bool,
    help: bool,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if opts.list_rules {
        print_rules();
        return ExitCode::SUCCESS;
    }
    match run(&opts) {
        Ok(failed) => {
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        config: None,
        baseline: None,
        deny: false,
        json: false,
        github: false,
        metrics: false,
        write_baseline: false,
        check_baseline: false,
        list_rules: false,
        help: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |name: &str| {
            args.next().map(PathBuf::from).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => opts.root = Some(path_arg("--root")?),
            "--config" => opts.config = Some(path_arg("--config")?),
            "--baseline" => opts.baseline = Some(path_arg("--baseline")?),
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--github" => opts.github = true,
            "--metrics" => opts.metrics = true,
            "--write-baseline" => opts.write_baseline = true,
            "--check-baseline" => opts.check_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => opts.help = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, String> {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => discover_root()?,
    };
    let config_path = opts.config.clone().unwrap_or_else(|| root.join("Lint.toml"));
    let config = match std::fs::read_to_string(&config_path) {
        Ok(text) => Config::parse(&text)?,
        Err(_) => Config::default(),
    };
    let baseline_path = opts.baseline.clone().unwrap_or_else(|| root.join("lint-baseline.json"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::from_json(&text)?,
        Err(_) => Baseline::default(),
    };

    let registry = Registry::new();
    let report = engine::run(&root, &config, &baseline, &registry);

    if opts.write_baseline {
        let fresh = Baseline::from_findings(
            report.findings.iter().filter(|r| r.severity == "deny").map(|r| &r.finding),
        );
        std::fs::write(&baseline_path, fresh.to_json() + "\n")
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "wrote {} entr{} to {}",
            fresh.entries.len(),
            if fresh.entries.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return Ok(false);
    }

    if opts.check_baseline {
        // Minimal means: every entry matches a live deny finding (no
        // stale leftovers) and re-emitting would produce the same file.
        let fresh = Baseline::from_findings(
            report.findings.iter().filter(|r| r.severity == "deny").map(|r| &r.finding),
        );
        if fresh == baseline && report.stale_baseline.is_empty() {
            println!(
                "baseline is minimal ({} entr{})",
                baseline.entries.len(),
                if baseline.entries.len() == 1 { "y" } else { "ies" }
            );
            return Ok(false);
        }
        println!(
            "baseline is NOT minimal: {} entr{} on disk, re-emitting produces {} ({} stale)",
            baseline.entries.len(),
            if baseline.entries.len() == 1 { "y" } else { "ies" },
            fresh.entries.len(),
            report.stale_baseline.len(),
        );
        return Ok(true);
    }

    if opts.json {
        println!("{}", serde::json::to_string_pretty(&report));
    } else if opts.github {
        print_github(&report);
    } else {
        print_table(&report);
    }
    if opts.metrics {
        let snapshot = registry.snapshot();
        let result = if opts.json {
            JsonSink::new(std::io::stdout()).export(&snapshot)
        } else {
            TableSink::stdout().export(&snapshot)
        };
        result.map_err(|e| format!("exporting metrics: {e}"))?;
    }
    Ok(opts.deny && report.deny_failure())
}

/// Nearest ancestor of the current directory containing `Lint.toml`,
/// falling back to the current directory.
fn discover_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir = cwd.clone();
    loop {
        if dir.join("Lint.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Ok(cwd);
        }
    }
}

fn print_rules() {
    let rules = all_rules();
    let sema = all_sema_rules();
    let width = rules
        .iter()
        .map(|r| r.id().len())
        .chain(sema.iter().map(|r| r.id().len()))
        .max()
        .unwrap_or(4);
    println!("{:<width$}  {:<7}  summary", "rule", "default");
    for rule in &rules {
        println!(
            "{:<width$}  {:<7}  {}",
            rule.id(),
            rule.default_severity().as_str(),
            rule.summary()
        );
    }
    println!("\nsemantic (call-graph) rules:");
    for rule in &sema {
        println!(
            "{:<width$}  {:<7}  {}",
            rule.id(),
            rule.default_severity().as_str(),
            rule.summary()
        );
    }
}

fn print_table(report: &Report) {
    let out = std::io::stdout();
    let mut out = out.lock();
    if !report.findings.is_empty() {
        let loc_width = report
            .findings
            .iter()
            .map(|r| r.finding.file.len() + digits(r.finding.line) + 1)
            .max()
            .unwrap_or(8);
        let rule_width = report.findings.iter().map(|r| r.finding.rule.len()).max().unwrap_or(4);
        let _ = writeln!(out, "findings");
        for r in &report.findings {
            let loc = format!("{}:{}", r.finding.file, r.finding.line);
            let mark = if r.baselined { " (baselined)" } else { "" };
            let _ = writeln!(
                out,
                "  {:<5} {:<rule_width$}  {:<loc_width$}  {}{}",
                r.severity, r.finding.rule, loc, r.finding.snippet, mark
            );
            // Semantic findings: render the root → violation call path.
            for (i, hop) in r.finding.path.iter().enumerate() {
                let arrow = if i == 0 { "via" } else { " ->" };
                let _ = writeln!(out, "        {arrow} {hop}");
            }
        }
    }
    if !report.stale_baseline.is_empty() {
        let _ = writeln!(out, "stale baseline entries (delete from lint-baseline.json)");
        for e in &report.stale_baseline {
            let _ = writeln!(out, "  {:<5} {}  {}", e.rule, e.file, e.snippet);
        }
    }
    let deny = report.findings.iter().filter(|r| r.severity == "deny").count();
    let warn = report.findings.iter().filter(|r| r.severity == "warn").count();
    let baselined = report.findings.iter().filter(|r| r.baselined).count();
    let _ = writeln!(
        out,
        "{} finding{} ({deny} deny, {warn} warn, {baselined} baselined), {} stale baseline entr{}, {} files / {} lines scanned",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.stale_baseline.len(),
        if report.stale_baseline.len() == 1 { "y" } else { "ies" },
        report.files_scanned,
        report.lines_scanned,
    );
}

/// GitHub Actions workflow-command output: one `::warning`/`::error`
/// annotation per finding, surfaced inline on the PR diff. Non-baselined
/// deny findings annotate as errors, everything else as warnings; the
/// root → sink path rides along in the message so the annotation is
/// self-contained.
fn print_github(report: &Report) {
    let out = std::io::stdout();
    let mut out = out.lock();
    for r in &report.findings {
        let level = if r.severity == "deny" && !r.baselined { "error" } else { "warning" };
        let mut message = r.finding.snippet.clone();
        if !r.finding.path.is_empty() {
            message.push_str(&format!(" [via {}]", r.finding.path.join(" -> ")));
        }
        let _ = writeln!(
            out,
            "::{level} file={},line={},title={}::{}",
            escape_property(&r.finding.file),
            r.finding.line,
            escape_property(&r.finding.rule),
            escape_data(&message),
        );
    }
    for e in &report.stale_baseline {
        let _ = writeln!(
            out,
            "::error file=lint-baseline.json,title=stale-baseline::{}",
            escape_data(&format!(
                "{} entry for {} no longer matches: {}",
                e.rule, e.file, e.snippet
            )),
        );
    }
}

/// Workflow-command message escaping (`%`, CR, LF).
fn escape_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Workflow-command property escaping (message escapes plus `:` and `,`).
fn escape_property(s: &str) -> String {
    escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

fn digits(n: u32) -> usize {
    (n.max(1).ilog10() + 1) as usize
}
