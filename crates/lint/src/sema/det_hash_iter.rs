//! `det-hash-iter` — HashMap/HashSet iteration reachable from a
//! determinism root.
//!
//! `HashMap` iteration order is randomized per process (and even under a
//! fixed hasher it is insertion-layout dependent), so any hash-container
//! walk in code reachable from a cube build, crawl, study, or report
//! root can change the byte output between runs. The fix is always the
//! same: switch the container to `BTreeMap`/`BTreeSet`, or collect and
//! sort before iterating.

use std::collections::BTreeSet;

use crate::lexer::Tok;
use crate::rules::{Finding, Severity};
use crate::sema::{for_each_own_token, Model, SemaRule};
use crate::source::SourceFile;

/// See the module docs.
pub struct DetHashIter;

/// Container methods whose call means "visit entries in storage order".
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

impl SemaRule for DetHashIter {
    fn id(&self) -> &'static str {
        "det-hash-iter"
    }

    fn summary(&self) -> &'static str {
        "HashMap/HashSet iteration in code reachable from a determinism root"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        let hash_names: Vec<BTreeSet<String>> = model.files.iter().map(hash_bound_names).collect();
        let mut seen: BTreeSet<(usize, u32)> = BTreeSet::new();
        for_each_own_token(model, |node_id, i| {
            let node = &model.nodes[node_id];
            if !model.det.reached(node_id) {
                return;
            }
            let file = &model.files[node.file];
            let toks = &file.lexed.tokens;
            let Tok::Ident(name) = &toks[i].tok else { return };
            if !hash_names[node.file].contains(name.as_str()) {
                return;
            }
            if !is_iteration_site(toks, i) {
                return;
            }
            let line = toks[i].line;
            if !seen.insert((node.file, line)) {
                return;
            }
            let path =
                model.det.path_to(node_id).map(|p| model.render_path(&p)).unwrap_or_default();
            model.emit(self, node.file, line, path, out);
        });
    }
}

/// Whether the identifier at `i` is being iterated: either
/// `name.iter_method(` or the head of a `for … in [&[mut]] name {` loop.
fn is_iteration_site(toks: &[crate::lexer::Token], i: usize) -> bool {
    // `name.method(` where method visits entries in storage order.
    if toks.get(i + 1).is_some_and(|t| t.tok.is_punct('.')) {
        if let Some(Tok::Ident(m)) = toks.get(i + 2).map(|t| &t.tok) {
            if ITER_METHODS.contains(&m.as_str())
                && toks.get(i + 3).is_some_and(|t| t.tok.is_punct('('))
            {
                return true;
            }
        }
    }
    // `for pat in [&[mut ]][self.]name {` — walk back over the receiver
    // shape looking for the `in` keyword.
    if toks.get(i + 1).is_some_and(|t| t.tok.is_punct('{')) {
        let mut j = i;
        for _ in 0..6 {
            if j == 0 {
                break;
            }
            j -= 1;
            match &toks[j].tok {
                Tok::Ident(w) if w == "in" => return true,
                Tok::Ident(w) if w == "mut" || w == "self" => continue,
                Tok::Punct('&') | Tok::Punct('.') => continue,
                _ => break,
            }
        }
    }
    false
}

/// Names bound to a hash container anywhere in `file`: `name:
/// HashMap<…>` (lets, params, struct fields, struct-literal inits) and
/// `name = HashMap::new()` / `HashSet::from(…)` style assignments.
fn hash_bound_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.lexed.tokens;
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(ty) = &t.tok else { continue };
        if ty != "HashMap" && ty != "HashSet" {
            continue;
        }
        // Walk back over a `std::collections::` path prefix.
        let mut j = i;
        while j >= 2 && toks[j - 1].tok.is_op("::") && matches!(toks[j - 2].tok, Tok::Ident(_)) {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        match &toks[j - 1].tok {
            // `name: HashMap<…>` — possibly through `&`/`&mut`.
            Tok::Punct(':') => {
                if let Some(name) = binding_before(toks, j - 1) {
                    names.insert(name);
                }
            }
            Tok::Punct('&') => {
                let mut k = j - 1;
                if k >= 1 && toks[k - 1].tok.is_ident("mut") {
                    k -= 1;
                }
                if k >= 1 && toks[k - 1].tok.is_punct(':') {
                    if let Some(name) = binding_before(toks, k - 1) {
                        names.insert(name);
                    }
                }
            }
            // `name = HashMap::new()` or `name: Ty = HashMap::new()`.
            Tok::Punct('=') => {
                if let Some(name) = assignment_target(toks, j - 1) {
                    names.insert(name);
                }
            }
            _ => {}
        }
    }
    names
}

/// The identifier directly before the `:` at `colon` (skipping `mut`).
fn binding_before(toks: &[crate::lexer::Token], colon: usize) -> Option<String> {
    let k = colon.checked_sub(1)?;
    match &toks[k].tok {
        Tok::Ident(name) if !crate::parser::is_keyword(name) => Some(name.clone()),
        _ => None,
    }
}

/// The binding target of the `=` at `eq`: handles `name =` and
/// `name: Ty<…> =` (skipping a generic type annotation backwards).
fn assignment_target(toks: &[crate::lexer::Token], eq: usize) -> Option<String> {
    let mut k = eq.checked_sub(1)?;
    // Skip a `: Type<…>` annotation backwards: balanced `<…>` then the
    // type name, then `:`.
    let mut depth = 0i32;
    loop {
        match &toks[k].tok {
            Tok::Op(">>") => depth += 2,
            Tok::Punct('>') => depth += 1,
            Tok::Op("<<") => depth -= 2,
            Tok::Punct('<') => depth -= 1,
            Tok::Ident(name) if depth == 0 && !crate::parser::is_keyword(name) => {
                // Either the binding itself (`name =`) or a plain type
                // (`name: Ty =`): if a `:` precedes, keep walking back.
                if k >= 1 && toks[k - 1].tok.is_punct(':') {
                    return binding_before(toks, k - 1);
                }
                return Some(name.clone());
            }
            _ if depth == 0 => return None,
            _ => {}
        }
        k = k.checked_sub(1)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn findings(src: &str, roots: &[&str]) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let cfg = Config {
            sema_roots: roots.iter().map(|s| (*s).to_owned()).collect(),
            ..Config::default()
        };
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        DetHashIter.check(&model, &mut out);
        out
    }

    #[test]
    fn direct_iteration_in_a_root_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   pub fn build() {\n\
                       let counts: HashMap<u64, u32> = HashMap::new();\n\
                       for (k, v) in counts.iter() { drop((k, v)); }\n\
                   }\n";
        let out = findings(src, &["build"]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 4);
        assert!(out[0].path[0].contains("core::x::build"), "{:?}", out[0].path);
    }

    #[test]
    fn unreachable_iteration_is_not_flagged() {
        let src = "use std::collections::HashMap;\n\
                   pub fn cold() {\n\
                       let counts: HashMap<u64, u32> = HashMap::new();\n\
                       for (k, v) in counts.iter() { drop((k, v)); }\n\
                   }\n\
                   pub fn build() {}\n";
        assert!(findings(src, &["build"]).is_empty());
    }

    #[test]
    fn btree_containers_are_fine() {
        let src = "use std::collections::BTreeMap;\n\
                   pub fn build() {\n\
                       let counts: BTreeMap<u64, u32> = BTreeMap::new();\n\
                       for (k, v) in counts.iter() { drop((k, v)); }\n\
                   }\n";
        assert!(findings(src, &["build"]).is_empty());
    }

    #[test]
    fn transitive_iteration_carries_the_full_path() {
        let src = "use std::collections::HashMap;\n\
                   pub fn build() { mid(); }\n\
                   fn mid() { leaf(&HashMap::new()); }\n\
                   fn leaf(m: &HashMap<u64, u32>) {\n\
                       for k in m.keys() { drop(k); }\n\
                   }\n";
        let out = findings(src, &["build"]);
        assert_eq!(out.len(), 1);
        let hops: Vec<&str> =
            out[0].path.iter().map(|h| h.split(' ').next().unwrap_or_default()).collect();
        assert_eq!(hops, ["core::x::build", "core::x::mid", "core::x::leaf"]);
    }
}
