//! `flow-unchecked-div` — a division in the determinism cone whose
//! divisor has no zero guard on some path.
//!
//! The measures pipeline normalizes constantly — exposure shares,
//! histogram bins, rank correlations — and an unguarded `x / n` is
//! either an integer-division panic or a silent `NaN`/`inf` that
//! poisons every downstream cube cell. This rule walks each division's
//! divisor through the function's dataflow: it is fine when a zero test
//! dominates the division (must-TESTED on every CFG path), when every
//! reaching definition is intrinsically nonzero (`.max(1)`, `len() + 1`,
//! a nonzero literal), or when a definition derives from a variable that
//! is itself tested (`let n = xs.len();` under `if xs.is_empty() {
//! return }`). Captured divisors resolve through the enclosing
//! functions' flows. Everything else gets flagged with the path root →
//! defining statement → dividing statement.

use crate::flow::{defuse, FnFlow};
use crate::lexer::{Tok, Token};
use crate::rules::{Finding, Severity};
use crate::sema::{for_each_own_token, Model, SemaRule};

/// See the module docs.
pub struct FlowUncheckedDiv;

impl SemaRule for FlowUncheckedDiv {
    fn id(&self) -> &'static str {
        "flow-unchecked-div"
    }

    fn summary(&self) -> &'static str {
        "division in the determinism cone with no zero guard on the divisor's def-use paths"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for_each_own_token(model, |node, at| {
            if !model.det.reached(node) {
                return;
            }
            let toks = &model.files[model.nodes[node].file].lexed.tokens;
            let Some(divisor) = division_site(toks, at) else { return };
            let Some(flow) = model.flows[node].as_ref() else { return };
            let Some(stmt_id) = flow.stmt_at(at) else { return };

            // The divisor's own chain clamps it (`x / d.max(EPS)`).
            let chain_end = chain_end(toks, at + 1);
            if defuse::def_is_nonzero_safe(toks, at + 1, chain_end) {
                return;
            }
            // A zero test dominates the division (or guards it in the
            // same statement head / match arm).
            if flow.is_tested_at(toks, stmt_id, &divisor) {
                return;
            }
            // Every reaching definition is safe — intrinsically nonzero
            // or derived from a variable tested at the division point.
            let (def_node, def_flow, def_at) = if flow.defines(&divisor) {
                (node, flow, stmt_id)
            } else {
                // Captured divisor: resolve through the ancestor flows;
                // the guard must dominate the *closure expression*, whose
                // statement we find via the closure's first body token.
                match ancestor_flow(model, node, &divisor) {
                    Some(hit) => hit,
                    None => return, // field/global/unresolved: out of scope
                }
            };
            let def_toks = &model.files[model.nodes[def_node].file].lexed.tokens;
            if def_node != node && def_flow.is_tested_at(def_toks, def_at, &divisor) {
                return;
            }
            let defs = def_flow.reaching_defs(def_at, &divisor);
            let unsafe_def = defs.iter().copied().find(|&d| {
                let ds = def_flow.stmt(d);
                !defuse::def_is_nonzero_safe(def_toks, ds.tokens.0, ds.tokens.1)
                    && !ds
                        .uses
                        .iter()
                        .any(|u| u != &divisor && def_flow.is_tested_at(def_toks, def_at, u))
            });
            // Every reaching def safe, or no visible def at all
            // (shadowed/macro-generated): stay quiet.
            let Some(unsafe_def) = unsafe_def else { return };

            let mut path =
                model.det.path_to(node).map(|p| model.render_path(&p)).unwrap_or_default();
            path.push(model.stmt_hop(def_node, def_flow.stmt(unsafe_def)));
            path.push(model.stmt_hop(node, flow.stmt(stmt_id)));
            model.emit(self, model.nodes[node].file, toks[at].line, path, out);
        });
    }
}

/// If the token at `at` is a division with a trackable divisor, the
/// divisor's base variable name. Numerator side must look like a value
/// (ident/literal/closer); divisor side must be a lowercase local —
/// literal divisors, path constants, and parenthesized expressions are
/// out of scope.
fn division_site(toks: &[Token], at: usize) -> Option<String> {
    if !toks[at].tok.is_punct('/') {
        return None;
    }
    let value_before = matches!(
        (at > 0).then(|| &toks[at - 1].tok)?,
        Tok::Ident(_) | Tok::Int(_) | Tok::Float(_) | Tok::Punct(')') | Tok::Punct(']')
    );
    if !value_before {
        return None;
    }
    match toks.get(at + 1).map(|t| &t.tok)? {
        Tok::Ident(name)
            if name.starts_with(|c: char| c.is_ascii_lowercase())
                && name != "self"
                && !crate::parser::is_keyword(name)
                // `d::CONST` is a path, not a variable.
                && !matches!(toks.get(at + 2).map(|t| &t.tok), Some(t) if t.is_op("::")) =>
        {
            Some(name.clone())
        }
        _ => None,
    }
}

/// End of the divisor's postfix chain starting right after the base
/// ident: `.method(args)`, `.field`, `[index]`, `as ty` segments.
fn chain_end(toks: &[Token], base: usize) -> usize {
    let mut at = base + 1;
    loop {
        match toks.get(at).map(|t| &t.tok) {
            Some(Tok::Punct('.')) => at += 1,
            Some(Tok::Punct('(' | '[')) => {
                let mut depth = 0usize;
                while let Some(t) = toks.get(at) {
                    match &t.tok {
                        Tok::Punct('(' | '[') => depth += 1,
                        Tok::Punct(')' | ']') => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    at += 1;
                }
                at += 1;
            }
            Some(Tok::Ident(s)) if s == "as" => at += 2,
            Some(Tok::Ident(_) | Tok::Int(_)) => at += 1,
            _ => return at,
        }
    }
}

/// Resolves a captured divisor: the nearest ancestor whose flow defines
/// `name`, plus the ancestor statement containing the capturing closure
/// (where the guard must hold).
fn ancestor_flow<'m>(
    model: &'m Model,
    node: usize,
    name: &str,
) -> Option<(usize, &'m FnFlow, usize)> {
    let mut child = node;
    let mut at = model.nodes[node].parent;
    while let Some(parent) = at {
        if let Some(flow) = model.flows[parent].as_ref() {
            if flow.defines(name) {
                let closure_tok = model.nodes[child].tokens.0;
                let stmt = flow
                    .stmt_at(closure_tok)
                    .unwrap_or(flow.cfg.exit.min(flow.tree.stmts.len().saturating_sub(1)));
                return Some((parent, flow, stmt));
            }
        }
        child = parent;
        at = model.nodes[parent].parent;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let cfg = Config { sema_roots: vec!["run_study".into()], ..Default::default() };
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        FlowUncheckedDiv.check(&model, &mut out);
        out
    }

    #[test]
    fn unguarded_divisor_is_flagged_with_def_and_div_hops() {
        let src = "pub fn run_study(xs: &[f64]) -> f64 {\n\
                       let n = xs.len();\n\
                       let total: f64 = xs.iter().sum();\n\
                       total / n as f64\n\
                   }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].path.len() >= 3, "{:?}", out[0].path);
        assert!(out[0].path.iter().any(|h| h.contains("let n = xs.len()")));
        assert!(out[0].path.last().expect("path").contains("total / n"));
    }

    #[test]
    fn dominating_guard_clears_the_division() {
        let src = "pub fn run_study(xs: &[f64]) -> f64 {\n\
                       let n = xs.len();\n\
                       if n == 0 { return 0.0; }\n\
                       let total: f64 = xs.iter().sum();\n\
                       total / n as f64\n\
                   }\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn emptiness_guard_blesses_a_derived_divisor() {
        let src = "pub fn run_study(xs: &[f64]) -> f64 {\n\
                       if xs.is_empty() { return 0.0; }\n\
                       let n = xs.len();\n\
                       let total: f64 = xs.iter().sum();\n\
                       total / n as f64\n\
                   }\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn clamped_defs_and_site_clamps_are_safe() {
        let src = "pub fn run_study(xs: &[f64], span: f64) -> f64 {\n\
                       let n = xs.len().max(1);\n\
                       let a = xs[0] / n as f64;\n\
                       a / span.max(1e-9)\n\
                   }\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn branch_only_guard_still_flags() {
        let src = "pub fn run_study(xs: &[f64], sel: bool) -> f64 {\n\
                       let n = xs.len();\n\
                       if sel { assert!(n > 0); } else { skip(); }\n\
                       xs[0] / n as f64\n\
                   }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn divisions_outside_the_det_cone_are_ignored() {
        let src = "pub fn helper(xs: &[f64]) -> f64 {\n\
                       let n = xs.len();\n\
                       xs[0] / n as f64\n\
                   }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn captured_divisor_resolves_through_the_parent_flow() {
        let src = "pub fn run_study(xs: &[f64]) -> Vec<f64> {\n\
                       let n = xs.len();\n\
                       xs.iter().map(|x| x / n as f64).collect()\n\
                   }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }
}
