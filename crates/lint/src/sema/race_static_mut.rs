//! `race-static-mut` — mutable or non-`Sync` shared statics.
//!
//! A `static mut` (or a `static` holding a non-`Sync` cell type) is a
//! data race waiting for the first `par_map` to touch it, and even
//! single-threaded it is global mutable state that makes runs
//! order-dependent. The declaration itself is flagged anywhere in the
//! workspace; every *use* of a `static mut` inside code reachable from a
//! determinism root or a parallel closure additionally carries the call
//! path that reaches it. Shared state belongs behind `Mutex`, `RwLock`,
//! `OnceLock`, or an atomic.

use std::collections::BTreeSet;

use crate::lexer::Tok;
use crate::parser::{Item, ItemKind};
use crate::rules::{Finding, Severity};
use crate::sema::{for_each_own_token, Model, SemaRule};

/// See the module docs.
pub struct RaceStaticMut;

/// Interior-mutability cell types that are not `Sync` (unless wrapped).
const NON_SYNC_TYPES: &[&str] = &["Cell", "RefCell", "OnceCell", "LazyCell", "Rc", "UnsafeCell"];

impl SemaRule for RaceStaticMut {
    fn id(&self) -> &'static str {
        "race-static-mut"
    }

    fn summary(&self) -> &'static str {
        "static mut or non-Sync shared static (declaration and reachable uses)"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        // Pass 1: flag declarations and collect `static mut` names.
        let mut mut_names: BTreeSet<String> = BTreeSet::new();
        for (file_idx, file) in model.files.iter().enumerate() {
            file.items.walk(&mut |item: &Item| {
                let ItemKind::Static { mutable, ty } = &item.kind else { return };
                if file.in_test_span(item.line) {
                    return;
                }
                let non_sync = type_words(ty).any(|w| NON_SYNC_TYPES.contains(&w));
                if *mutable || non_sync {
                    model.emit(self, file_idx, item.line, Vec::new(), out);
                }
                if *mutable {
                    mut_names.insert(item.name.clone());
                }
            });
        }
        if mut_names.is_empty() {
            return;
        }

        // Pass 2: uses of a `static mut` in code reachable from either
        // root set carry the call path that reaches them.
        let mut seen: BTreeSet<(usize, u32)> = BTreeSet::new();
        for_each_own_token(model, |node_id, i| {
            let reach = if model.par.reached(node_id) {
                &model.par
            } else if model.det.reached(node_id) {
                &model.det
            } else {
                return;
            };
            let node = &model.nodes[node_id];
            let file = &model.files[node.file];
            let toks = &file.lexed.tokens;
            let Tok::Ident(name) = &toks[i].tok else { return };
            if !mut_names.contains(name.as_str()) {
                return;
            }
            // Skip field accesses (`x.NAME`) that merely share the name.
            if i >= 1 && toks[i - 1].tok.is_punct('.') {
                return;
            }
            let line = toks[i].line;
            if !seen.insert((node.file, line)) {
                return;
            }
            let path = reach.path_to(node_id).map(|p| model.render_path(&p)).unwrap_or_default();
            model.emit(self, node.file, line, path, out);
        });
    }
}

/// Splits a rendered type string into identifier words.
fn type_words(ty: &str) -> impl Iterator<Item = &str> {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_').filter(|w| !w.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(src: &str, roots: &[&str]) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let cfg = Config {
            sema_roots: roots.iter().map(|s| (*s).to_owned()).collect(),
            ..Config::default()
        };
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        RaceStaticMut.check(&model, &mut out);
        out
    }

    #[test]
    fn static_mut_declaration_and_reachable_use_are_flagged() {
        let src = "static mut COUNTER: u64 = 0;\n\
                   pub fn build() { helper(); }\n\
                   fn helper() { unsafe { COUNTER += 1; } }\n";
        let out = findings(src, &["build"]);
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].line, 1, "declaration");
        assert!(out[0].path.is_empty());
        assert_eq!(out[1].line, 3, "reachable use");
        assert_eq!(out[1].path.len(), 2, "{:?}", out[1].path);
    }

    #[test]
    fn non_sync_static_is_flagged_at_declaration() {
        let src = "use std::cell::RefCell;\n\
                   static SCRATCH: RefCell<Vec<u64>> = RefCell::new(Vec::new());\n";
        let out = findings(src, &["build"]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn sync_statics_are_fine() {
        let src = "use std::sync::atomic::AtomicU64;\n\
                   static HITS: AtomicU64 = AtomicU64::new(0);\n\
                   static NAMES: [&str; 2] = [\"a\", \"b\"];\n";
        assert!(findings(src, &["build"]).is_empty());
    }

    #[test]
    fn unreachable_static_mut_use_still_flags_only_the_declaration() {
        let src = "static mut COUNTER: u64 = 0;\n\
                   fn cold() { unsafe { COUNTER += 1; } }\n\
                   pub fn build() {}\n";
        let out = findings(src, &["build"]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
    }
}
