//! `par-shared-capture` — a parallel worker closure mutating state it
//! captured from its environment.
//!
//! `fbox-par` promises serial/parallel equivalence; that promise only
//! holds when workers are pure functions of their input slice. A closure
//! handed to `par_map` / `par_chunks` / `scope` that *assigns through a
//! capture* (`shared = …`, `counts[i] += 1`) or captures a `Cell` /
//! `RefCell` wrapped binding races with its siblings: the winning write
//! depends on scheduling, and the cube stops being reproducible. Writes
//! through a `Mutex`/`RwLock` guard or an atomic are synchronized and
//! exempt here — their *ordering* problems belong to
//! `par-float-reduce-order` and `atomic-relaxed-handoff`.
//!
//! Findings carry the path root closure → capture definition → mutating
//! statement, down to the statement level.

use crate::lexer::{Tok, Token};
use crate::rules::{Finding, Severity};
use crate::sema::{Model, SemaRule};

/// See the module docs.
pub struct ParSharedCapture;

/// Interior-mutability wrappers that make a shared capture writable
/// without `mut`.
const CELL_TYPES: &[&str] = &["Cell", "RefCell", "OnceCell", "UnsafeCell"];

/// Wrappers/types that synchronize access and clear the capture.
const SYNC_TYPES: &[&str] = &["Mutex", "RwLock"];

impl SemaRule for ParSharedCapture {
    fn id(&self) -> &'static str {
        "par-shared-capture"
    }

    fn summary(&self) -> &'static str {
        "parallel closure writes a captured binding (or captures Cell/RefCell) without synchronization"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for &root in &model.par_roots {
            if model.nodes[root].in_test {
                continue;
            }
            // The root closure and any closures nested inside it run on
            // worker threads; walk them all.
            let mut stack = vec![root];
            while let Some(id) = stack.pop() {
                stack.extend(
                    model.nodes[id].children.iter().copied().filter(|&c| model.nodes[c].is_closure),
                );
                self.check_worker(model, root, id, out);
            }
        }
    }
}

impl ParSharedCapture {
    /// Checks one worker closure `id` rooted at par-closure `root`.
    fn check_worker(&self, model: &Model, root: usize, id: usize, out: &mut Vec<Finding>) {
        let Some(flow) = &model.flows[id] else { return };
        let node = &model.nodes[id];
        let toks = &model.files[node.file].lexed.tokens;
        // Names bound inside the worker (params, lets, patterns) — up to
        // and including the par root closure, whose locals are
        // per-invocation and therefore private to the worker.
        let mut local: Vec<&str> = flow.bound_locals();
        let mut at = id;
        while at != root {
            let Some(parent) = model.nodes[at].parent else { break };
            if let Some(pf) = &model.flows[parent] {
                local.extend(pf.bound_locals());
            }
            at = parent;
            if at == root {
                if let Some(rf) = &model.flows[root] {
                    local.extend(rf.bound_locals());
                }
            }
        }

        for stmt in &flow.tree.stmts {
            // Direct write through a capture: an assignment whose base
            // target is not bound anywhere inside the worker.
            if let crate::flow::stmt::StmtKind::Assign { target, .. } = &stmt.kind {
                if !local.contains(&target.as_str()) && !is_synchronized(toks, stmt.tokens) {
                    self.emit_capture(model, root, id, target, stmt, out);
                    continue;
                }
            }
            // Interior-mutability capture: a used name whose defining
            // `let` wraps it in Cell/RefCell without a lock.
            if let Some(used) = stmt.uses.iter().find(|used| {
                !local.contains(&used.as_str())
                    && cell_method_called_on(toks, stmt.tokens, used)
                    && ancestor_def_is_cell(model, id, used).is_some()
            }) {
                self.emit_capture(model, root, id, used, stmt, out);
            }
        }
    }

    /// Emits one finding with the root → definition → write path.
    fn emit_capture(
        &self,
        model: &Model,
        root: usize,
        id: usize,
        name: &str,
        stmt: &crate::flow::stmt::Stmt,
        out: &mut Vec<Finding>,
    ) {
        let mut path = model.par.path_to(root).map(|p| model.render_path(&p)).unwrap_or_default();
        if id != root {
            path.push(model.nodes[id].qname.clone());
        }
        if let Some((def_node, def_stmt)) = ancestor_def(model, id, name) {
            if let Some(df) = model.flows[def_node].as_ref() {
                path.push(model.stmt_hop(def_node, df.stmt(def_stmt)));
            }
        }
        path.push(model.stmt_hop(id, stmt));
        model.emit(self, model.nodes[id].file, stmt.line, path, out);
    }
}

/// The nearest ancestor (above `id`) whose flow binds `name` via a
/// non-assignment definition, plus the defining statement id.
fn ancestor_def(model: &Model, id: usize, name: &str) -> Option<(usize, usize)> {
    let mut at = model.nodes[id].parent;
    while let Some(node) = at {
        if let Some(flow) = &model.flows[node] {
            let def = flow.tree.stmts.iter().position(|s| {
                !matches!(s.kind, crate::flow::stmt::StmtKind::Assign { .. })
                    && s.defs.iter().any(|d| d == name)
            });
            if let Some(def) = def {
                return Some((node, def));
            }
        }
        at = model.nodes[node].parent;
    }
    None
}

/// Whether `name`'s nearest ancestor definition wraps it in an
/// interior-mutability cell with no synchronizing wrapper.
fn ancestor_def_is_cell(model: &Model, id: usize, name: &str) -> Option<(usize, usize)> {
    let (def_node, def_stmt) = ancestor_def(model, id, name)?;
    let flow = model.flows[def_node].as_ref()?;
    let stmt = flow.stmt(def_stmt);
    let toks = &model.files[model.nodes[def_node].file].lexed.tokens;
    let mut saw_cell = false;
    for tok in &toks[stmt.tokens.0..stmt.tokens.1.min(toks.len())] {
        if let Tok::Ident(s) = &tok.tok {
            if CELL_TYPES.contains(&s.as_str()) {
                saw_cell = true;
            }
            if SYNC_TYPES.contains(&s.as_str()) || s.starts_with("Atomic") {
                return None;
            }
        }
    }
    saw_cell.then_some((def_node, def_stmt))
}

/// Whether a statement range calls a `Cell`-family mutator (`set`,
/// `replace`, `borrow_mut`, `get_or_init`) on `name`.
fn cell_method_called_on(toks: &[Token], range: (usize, usize), name: &str) -> bool {
    let (lo, hi) = (range.0, range.1.min(toks.len()));
    for at in lo..hi {
        if !toks[at].tok.is_ident(name) {
            continue;
        }
        if matches!(toks.get(at + 1).map(|t| &t.tok), Some(t) if t.is_punct('.'))
            && matches!(
                toks.get(at + 2).map(|t| &t.tok),
                Some(Tok::Ident(m)) if matches!(
                    m.as_str(),
                    "set" | "replace" | "borrow_mut" | "get_or_init" | "get_mut"
                )
            )
        {
            return true;
        }
    }
    false
}

/// Whether the statement's write goes through a lock guard (`.lock(`,
/// `.write(`) or an atomic store — synchronized, so not this rule's
/// business.
fn is_synchronized(toks: &[Token], range: (usize, usize)) -> bool {
    let (lo, hi) = (range.0, range.1.min(toks.len()));
    (lo..hi).any(|at| {
        matches!(
            &toks[at].tok,
            Tok::Ident(m) if matches!(m.as_str(), "lock" | "write" | "store")
                || m.starts_with("fetch_")
        ) && at >= 1
            && toks[at - 1].tok.is_punct('.')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let model = Model::build(&files, &Config::default());
        let mut out = Vec::new();
        ParSharedCapture.check(&model, &mut out);
        out
    }

    #[test]
    fn captured_write_is_flagged_with_statement_path() {
        let src = "pub fn build(xs: &[f64]) -> f64 {\n\
                       let mut hits = 0usize;\n\
                       par_map(xs, |x| {\n\
                           hits += 1;\n\
                           x * 2.0\n\
                       });\n\
                       hits as f64\n\
                   }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].path.len() >= 3, "{:?}", out[0].path);
        assert!(out[0].path[0].contains("{closure@3}"));
        assert!(out[0].path.iter().any(|h| h.contains("let mut hits")));
        assert!(out[0].path.last().expect("path").contains("hits += 1"));
    }

    #[test]
    fn refcell_capture_is_flagged() {
        let src = "pub fn build(xs: &[f64]) {\n\
                       let seen = RefCell::new(Vec::new());\n\
                       par_map(xs, |x| seen.borrow_mut().push(*x));\n\
                   }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn locals_and_locked_writes_are_fine() {
        let src = "pub fn build(xs: &[f64], total: &Mutex<f64>) {\n\
                       par_map(xs, |x| {\n\
                           let mut acc = 0.0;\n\
                           acc += *x;\n\
                           *total.lock().unwrap() += acc;\n\
                           acc\n\
                       });\n\
                   }\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn serial_closures_are_ignored() {
        let src = "pub fn build(xs: &[f64]) -> usize {\n\
                       let mut hits = 0usize;\n\
                       xs.iter().for_each(|_| hits += 1);\n\
                       hits\n\
                   }\n";
        assert!(findings(src).is_empty());
    }
}
