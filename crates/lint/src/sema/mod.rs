//! Semantic analysis: the workspace symbol table, the intra-workspace
//! call graph with closure-capture edges, and the transitive rule family
//! that enforces the repo's determinism contract.
//!
//! The F-Box pipeline stakes its correctness on byte-identical
//! reproduction: parallel cube builds and fault-injected crawls must
//! equal their serial oracles bit for bit. The lexical rules catch a
//! nondeterministic *token* where it is written; the rules in this module
//! catch one where it *matters* — a `HashMap` iteration three helpers
//! deep in a function reachable from a cube build is just as fatal as one
//! in the build loop itself. Every semantic finding therefore carries the
//! full call path from the pipeline root to the violation.
//!
//! Resolution is deliberately conservative and name-based (no type
//! inference): free calls resolve through module paths and `use` imports,
//! `self.m(…)` and `Type::m(…)` resolve within the named impl, and bare
//! `x.m(…)` method calls over-approximate to every workspace method of
//! that name. Over-approximation can only add paths, never hide one.

use std::collections::BTreeMap;

use crate::absint;
use crate::config::Config;
use crate::flow::{self, FnFlow};
use crate::lexer::Tok;
use crate::parser::{is_keyword, Item, ItemKind};
use crate::rules::{Finding, Severity};
use crate::source::SourceFile;

mod atomic_relaxed_handoff;
mod det_env_read;
mod det_hash_iter;
mod det_wall_clock;
mod flow_unchecked_div;
mod par_float_reduce;
mod par_panic;
mod par_shared_capture;
mod race_static_mut;

pub use atomic_relaxed_handoff::AtomicRelaxedHandoff;
pub use det_env_read::DetEnvRead;
pub use det_hash_iter::DetHashIter;
pub use det_wall_clock::DetWallClock;
pub use flow_unchecked_div::FlowUncheckedDiv;
pub use par_float_reduce::ParFloatReduceOrder;
pub use par_panic::ParPanicReachable;
pub use par_shared_capture::ParSharedCapture;
pub use race_static_mut::RaceStaticMut;

/// The `fbox-par` fan-out entry points whose closure arguments become
/// [`par-panic-reachable`](ParPanicReachable) roots.
pub const PAR_ENTRY_POINTS: &[&str] = &["par_map", "par_chunks", "scope", "with_threads"];

/// Default determinism roots: the cube builds, the crawls, the study
/// drivers, the durable-store ingest/publish entry points, and the
/// report-emitting experiment entry points. Overridable via
/// `[sema] roots = […]` in `Lint.toml`; patterns are `::`-separated
/// suffixes matched against qualified function names.
pub const DEFAULT_DET_ROOTS: &[&str] = &[
    "FBox::from_search",
    "FBox::from_search_serial",
    "FBox::from_market",
    "FBox::from_market_serial",
    "crawl::crawl",
    "crawl::crawl_resilient",
    "study::run_study",
    "study::run_study_resilient",
    "ingest::crawl_durable",
    "ingest::crawl_durable_with_plan",
    "ingest::study_durable",
    "ingest::study_durable_with_plan",
    "EpochStore::ingest_market",
    "EpochStore::ingest_search",
    "EpochStore::publish",
    "taskrabbit_quant::run",
    "taskrabbit_compare::run",
    "google_quant::run",
    "google_compare::run",
    "figures::run",
    "hypotheses::run",
    "mitigate::run",
    "rerank::rerank_market",
    "rerank::rerank_search",
    "Report::diff",
];

/// A semantic (whole-workspace) rule. Unlike [`crate::rules::Rule`],
/// these see the call graph, not one file at a time; the engine applies
/// severities, path scoping, suppressions, and baselines identically for
/// both families.
pub trait SemaRule {
    /// Stable kebab-case identifier.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and docs.
    fn summary(&self) -> &'static str;
    /// Default severity when `Lint.toml` says nothing.
    fn default_severity(&self) -> Severity;
    /// Emits findings over the whole-workspace model.
    fn check(&self, model: &Model, out: &mut Vec<Finding>);
}

/// Every shipped semantic rule, in display order.
pub fn all_sema_rules() -> Vec<Box<dyn SemaRule>> {
    vec![
        Box::new(DetHashIter),
        Box::new(DetEnvRead),
        Box::new(DetWallClock),
        Box::new(ParPanicReachable),
        Box::new(RaceStaticMut),
        Box::new(ParSharedCapture),
        Box::new(ParFloatReduceOrder),
        Box::new(AtomicRelaxedHandoff),
        Box::new(FlowUncheckedDiv),
        Box::new(absint::rules::ArithUncheckedSub),
        Box::new(absint::rules::ArithWideningNeeded),
        Box::new(absint::rules::RangeInvariantEscape),
        Box::new(absint::rules::CastTruncatingUnproven),
    ]
}

/// How one call-graph edge came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Free-function or path call (`f(…)`, `module::f(…)`, `Type::m(…)`).
    Call,
    /// Method call (`x.m(…)`, `self.m(…)`).
    Method,
    /// Closure capture: the enclosing function to the closures it owns.
    Capture,
}

/// One function-like node: a free fn, a method, a nested fn, or a
/// closure.
#[derive(Debug)]
pub struct FnNode {
    /// Qualified name, e.g. `core::fbox::FBox::from_search` or
    /// `…::from_search::{closure@54}`.
    pub qname: String,
    /// Last segment (`from_search`, `{closure@54}`).
    pub simple: String,
    /// Index into [`Model::files`].
    pub file: usize,
    /// 1-based declaration line.
    pub line: u32,
    /// Token range of the whole item (signature + body).
    pub tokens: (usize, usize),
    /// Token range of the body, when present.
    pub body: Option<(usize, usize)>,
    /// Enclosing function node for closures and nested fns.
    pub parent: Option<usize>,
    /// Child node ids (nested fns + closures), for own-token iteration.
    pub children: Vec<usize>,
    /// Impl (or trait) type name for methods.
    pub impl_type: Option<String>,
    /// For closures: the `fbox-par` entry point this closure is an
    /// argument of, when any (makes it a `par-panic-reachable` root).
    pub par_entry: Option<String>,
    /// Whether the node is a closure.
    pub is_closure: bool,
    /// Whether the declaration sits in `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// BFS reachability with shortest-path parent pointers.
#[derive(Debug)]
pub struct Reachability {
    parent: Vec<Option<usize>>,
    reached: Vec<bool>,
    roots: Vec<bool>,
}

impl Reachability {
    fn compute(graph: &[Vec<(usize, EdgeKind)>], roots: &[usize]) -> Reachability {
        let n = graph.len();
        let mut r =
            Reachability { parent: vec![None; n], reached: vec![false; n], roots: vec![false; n] };
        let mut queue = std::collections::VecDeque::new();
        for &root in roots {
            if !r.reached[root] {
                r.reached[root] = true;
                r.roots[root] = true;
                queue.push_back(root);
            }
        }
        while let Some(at) = queue.pop_front() {
            for &(to, _) in &graph[at] {
                if !r.reached[to] {
                    r.reached[to] = true;
                    r.parent[to] = Some(at);
                    queue.push_back(to);
                }
            }
        }
        r
    }

    /// Whether `node` is reachable from any root.
    pub fn reached(&self, node: usize) -> bool {
        self.reached.get(node).copied().unwrap_or(false)
    }

    /// Shortest root → `node` chain of node ids (inclusive), when
    /// reachable.
    pub fn path_to(&self, node: usize) -> Option<Vec<usize>> {
        if !self.reached(node) {
            return None;
        }
        let mut path = vec![node];
        let mut at = node;
        while !self.roots[at] {
            at = self.parent[at]?;
            path.push(at);
        }
        path.reverse();
        Some(path)
    }
}

/// The whole-workspace semantic model: every function-like node, the
/// call graph over them, and the two reachability closures the rules
/// share (determinism roots and parallel-closure roots).
pub struct Model<'a> {
    /// Every scanned source file, in engine walk order.
    pub files: &'a [SourceFile],
    /// All function-like nodes across the workspace.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `graph[caller] = [(callee, kind)…]`, sorted by callee.
    pub graph: Vec<Vec<(usize, EdgeKind)>>,
    /// Reachability from the determinism roots.
    pub det: Reachability,
    /// Reachability from closures passed to `fbox-par` entry points.
    pub par: Reachability,
    /// Resolved determinism root node ids.
    pub det_roots: Vec<usize>,
    /// Resolved parallel-closure root node ids.
    pub par_roots: Vec<usize>,
    /// Per-node body flow analysis (`None` for bodiless declarations).
    pub flows: Vec<Option<FnFlow>>,
    /// Per-node resolved call sites: `(callee name token, callee node
    /// ids)`, sorted by token index. This is the same resolution the
    /// call graph is built from, but keyed by position so the abstract
    /// interpreter can look a call event up by its name token.
    pub call_sites: Vec<Vec<(usize, Vec<usize>)>>,
    /// The interprocedural abstract interpretation (fourth pass).
    pub absint: absint::Analysis,
    /// Per-file `(body_start, body_end, node)` intervals for
    /// innermost-node lookup.
    intervals: Vec<Vec<(usize, usize, usize)>>,
}

impl<'a> Model<'a> {
    /// Builds the symbol table, call graph, and reachability closures.
    pub fn build(files: &'a [SourceFile], config: &Config) -> Model<'a> {
        let mut builder = Builder::default();
        for (file_idx, file) in files.iter().enumerate() {
            let base = module_path(&file.path);
            for item in &file.items.items {
                builder.collect(file, file_idx, item, &base, None, None);
            }
        }
        let nodes = builder.nodes;

        // Index nodes for resolution.
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, node) in nodes.iter().enumerate() {
            if node.is_closure {
                continue;
            }
            if node.impl_type.is_some() {
                methods_by_name.entry(node.simple.as_str()).or_default().push(id);
            } else {
                free_by_name.entry(node.simple.as_str()).or_default().push(id);
            }
        }

        // Extract and resolve call edges; closure-capture edges connect
        // each function to the closures it owns.
        let mut graph: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); nodes.len()];
        let mut call_sites: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); nodes.len()];
        for caller in 0..nodes.len() {
            let node = &nodes[caller];
            let file = &files[node.file];
            let mut edges: Vec<(usize, EdgeKind)> = Vec::new();
            let mut sites: Vec<(usize, Vec<usize>)> = Vec::new();
            for (at, call) in calls_in_node(file, &nodes, caller) {
                let kind = match call {
                    CallSite::Method { .. } => EdgeKind::Method,
                    _ => EdgeKind::Call,
                };
                let callees = resolve(&call, node, &nodes, files, &free_by_name, &methods_by_name);
                for &callee in &callees {
                    edges.push((callee, kind));
                }
                if !callees.is_empty() {
                    sites.push((at, callees));
                }
            }
            for &child in &node.children {
                edges.push((child, EdgeKind::Capture));
            }
            edges.sort_unstable_by_key(|&(to, _)| to);
            edges.dedup_by_key(|&mut (to, _)| to);
            graph[caller] = edges;
            sites.sort_unstable_by_key(|&(at, _)| at);
            call_sites[caller] = sites;
        }

        // Determinism roots come from `[sema] roots` or the defaults.
        let patterns: Vec<&str> = if config.sema_roots.is_empty() {
            DEFAULT_DET_ROOTS.to_vec()
        } else {
            config.sema_roots.iter().map(String::as_str).collect()
        };
        let det_roots: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.in_test && !n.is_closure)
            .filter(|(_, n)| patterns.iter().any(|p| qname_matches(&n.qname, p)))
            .map(|(id, _)| id)
            .collect();
        let par_roots: Vec<usize> =
            (0..nodes.len()).filter(|&id| nodes[id].par_entry.is_some()).collect();

        let det = Reachability::compute(&graph, &det_roots);
        let par = Reachability::compute(&graph, &par_roots);

        // Innermost-node lookup intervals.
        let mut intervals: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); files.len()];
        for (id, node) in nodes.iter().enumerate() {
            if let Some((lo, hi)) = node.body {
                intervals[node.file].push((lo, hi, id));
            }
        }
        for list in &mut intervals {
            list.sort_unstable();
        }

        // Body-level flow analysis for every node with a body. Nested
        // *named* fns are separate nodes and are skipped inside their
        // parent; closures stay inline (captured uses must remain
        // visible) *and* get their own flow.
        let flows: Vec<Option<FnFlow>> = nodes
            .iter()
            .map(|node| {
                let body = node.body?;
                let toks = &files[node.file].lexed.tokens;
                let skip: Vec<(usize, usize)> = node
                    .children
                    .iter()
                    .filter(|&&c| !nodes[c].is_closure)
                    .map(|&c| nodes[c].tokens)
                    .collect();
                Some(flow::analyze(
                    toks,
                    (node.tokens.0, body.0),
                    body,
                    node.is_closure,
                    &skip,
                    node.line,
                ))
            })
            .collect();

        // Fourth pass: interprocedural abstract interpretation over the
        // flows and the resolved call sites.
        let plain_graph: Vec<Vec<usize>> =
            graph.iter().map(|edges| edges.iter().map(|&(to, _)| to).collect()).collect();
        let absint = absint::analyze(files, &nodes, &plain_graph, &flows, &call_sites);

        Model {
            files,
            nodes,
            graph,
            det,
            par,
            det_roots,
            par_roots,
            flows,
            call_sites,
            absint,
            intervals,
        }
    }

    /// Total number of call-graph edges (for telemetry).
    pub fn edge_count(&self) -> usize {
        self.graph.iter().map(Vec::len).sum()
    }

    /// `(file path, line)` pairs whose float→int `as` casts the abstract
    /// interpreter inspected, and which the lexical `float-int-cast`
    /// rule should therefore skip: *proven* casts are silenced outright
    /// (the interval demonstrates losslessness), and unproven casts in
    /// the determinism/parallel cones are superseded by the richer
    /// `cast-truncating-unproven` finding. Unproven casts *outside* the
    /// cones stay with the lexical rule, so coverage never shrinks.
    pub fn interval_checked_cast_lines(&self) -> std::collections::BTreeSet<(String, u32)> {
        let mut out = std::collections::BTreeSet::new();
        for (id, fa) in self.absint.fns.iter().enumerate() {
            let Some(fa) = fa else { continue };
            let node = &self.nodes[id];
            let file = &self.files[node.file];
            let in_cone = !node.in_test && (self.det.reached(id) || self.par.reached(id));
            for (_, event) in &fa.events {
                if let absint::eval::Event::Cast { at, proven, from_float: true, .. } = event {
                    if *proven || in_cone {
                        out.insert((file.path.clone(), file.lexed.tokens[*at].line));
                    }
                }
            }
        }
        out
    }

    /// The innermost function-like node whose body contains token `tok`
    /// of file `file`.
    pub fn node_at(&self, file: usize, tok: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (width, node)
        for &(lo, hi, id) in &self.intervals[file] {
            if (lo..hi).contains(&tok) {
                let width = hi - lo;
                if best.map(|(w, _)| width < w).unwrap_or(true) {
                    best = Some((width, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Renders a statement-level path hop for a statement of `node`:
    /// the source line's code (trailing comment stripped) plus its
    /// `file:line` position, e.g. `` `total += part;` (crates/…:42)``.
    pub fn stmt_hop(&self, node: usize, stmt: &flow::stmt::Stmt) -> String {
        let file = &self.files[self.nodes[node].file];
        let snippet = file.snippet(stmt.line);
        let code = snippet.split("//").next().unwrap_or_default().trim();
        format!("`{}` ({}:{})", code, file.path, stmt.line)
    }

    /// Renders a reachability path as `qname (file:line)` hops.
    pub fn render_path(&self, ids: &[usize]) -> Vec<String> {
        ids.iter()
            .map(|&id| {
                let node = &self.nodes[id];
                format!("{} ({}:{})", node.qname, self.files[node.file].path, node.line)
            })
            .collect()
    }

    /// Emits a path-carrying finding at `line` of file index `file`
    /// unless an inline or item-scoped suppression covers it.
    pub fn emit(
        &self,
        rule: &dyn SemaRule,
        file: usize,
        line: u32,
        path: Vec<String>,
        out: &mut Vec<Finding>,
    ) {
        let file = &self.files[file];
        if file.is_suppressed(line, rule.id()) {
            return;
        }
        out.push(Finding {
            rule: rule.id().to_owned(),
            file: file.path.clone(),
            line,
            snippet: file.snippet(line),
            path,
        });
    }
}

/// A call site extracted from a function body.
#[derive(Debug)]
enum CallSite {
    /// `name(…)` with no path or receiver.
    Free { name: String },
    /// `seg₀::…::segₙ::name(…)`.
    Path { segments: Vec<String>, name: String },
    /// `recv.name(…)`; `self_recv` when the receiver is literally `self`.
    Method { name: String, self_recv: bool },
}

/// Token ranges belonging to `id` itself: its body minus the token
/// ranges of child nodes (nested fns and closures own their tokens).
fn own_token_ranges(nodes: &[FnNode], id: usize) -> Vec<(usize, usize)> {
    let node = &nodes[id];
    let Some((lo, hi)) = node.body else { return Vec::new() };
    let mut holes: Vec<(usize, usize)> =
        node.children.iter().filter_map(|&c| nodes[c].body).collect();
    holes.sort_unstable();
    let mut ranges = Vec::new();
    let mut at = lo;
    for (clo, chi) in holes {
        if clo > at {
            ranges.push((at, clo.min(hi)));
        }
        at = at.max(chi);
    }
    if at < hi {
        ranges.push((at, hi));
    }
    ranges
}

/// Extracts every call site in `caller`'s own tokens, keyed by the
/// callee name's token index.
fn calls_in_node(file: &SourceFile, nodes: &[FnNode], caller: usize) -> Vec<(usize, CallSite)> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for (lo, hi) in own_token_ranges(nodes, caller) {
        for i in lo..hi.min(toks.len()) {
            let Tok::Ident(name) = &toks[i].tok else { continue };
            if is_keyword(name) {
                continue;
            }
            if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                continue;
            }
            match (i > 0).then(|| &toks[i - 1].tok) {
                Some(Tok::Punct('.')) => {
                    let self_recv = i >= 2 && toks[i - 2].tok.is_ident("self");
                    out.push((i, CallSite::Method { name: name.clone(), self_recv }));
                }
                Some(Tok::Op("::")) => {
                    // Walk back over `seg::seg::…`.
                    let mut segments = Vec::new();
                    let mut j = i - 1; // at the `::` before the name
                    while j >= 1 {
                        let Tok::Ident(seg) = &toks[j - 1].tok else { break };
                        segments.push(seg.clone());
                        if j >= 3 && toks[j - 2].tok.is_op("::") {
                            j -= 2;
                        } else {
                            break;
                        }
                    }
                    segments.reverse();
                    out.push((i, CallSite::Path { segments, name: name.clone() }));
                }
                Some(Tok::Punct('!')) => {} // macro invocation, not a call
                _ => out.push((i, CallSite::Free { name: name.clone() })),
            }
        }
    }
    out
}

/// Resolves one call site to candidate node ids. Over-approximates when
/// names are ambiguous; returns nothing for names that resolve outside
/// the workspace (std and shim surfaces).
fn resolve(
    call: &CallSite,
    caller: &FnNode,
    nodes: &[FnNode],
    files: &[SourceFile],
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    match call {
        CallSite::Free { name } => {
            let Some(candidates) = free_by_name.get(name.as_str()) else { return Vec::new() };
            // Same file beats same crate beats everything.
            let same_file: Vec<usize> =
                candidates.iter().copied().filter(|&c| nodes[c].file == caller.file).collect();
            if !same_file.is_empty() {
                return same_file;
            }
            // A `use …::name;` in the caller's file pins the module.
            let file = &files[caller.file];
            for use_path in &file.items.uses {
                let segs: Vec<&str> = use_path.split("::").collect();
                let n_segs = segs.len();
                if segs.last() == Some(&name.as_str()) && n_segs >= 2 {
                    let pattern = normalize_path(&segs[n_segs - 2..]).join("::");
                    let narrowed: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| qname_matches(&nodes[c].qname, &pattern))
                        .collect();
                    if !narrowed.is_empty() {
                        return narrowed;
                    }
                }
            }
            let caller_crate = caller.qname.split("::").next().unwrap_or_default();
            let same_crate: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| nodes[c].qname.split("::").next() == Some(caller_crate))
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            candidates.clone()
        }
        CallSite::Path { segments, name } => {
            let segments: Vec<&str> = segments.iter().map(String::as_str).collect();
            let segments = normalize_path(&segments);
            // `Type::assoc(…)` — the last segment names a type.
            if let Some(type_seg) = segments.last() {
                if type_seg.chars().next().is_some_and(char::is_uppercase) || type_seg == "Self" {
                    let type_name: &str = if type_seg == "Self" {
                        caller.impl_type.as_deref().unwrap_or_default()
                    } else {
                        type_seg
                    };
                    let Some(methods) = methods_by_name.get(name.as_str()) else {
                        return Vec::new();
                    };
                    return methods
                        .iter()
                        .copied()
                        .filter(|&m| nodes[m].impl_type.as_deref() == Some(type_name))
                        .collect();
                }
            }
            // Module path call: suffix-match `…::segs::name`.
            let Some(candidates) = free_by_name.get(name.as_str()) else { return Vec::new() };
            let mut suffix = segments.clone();
            suffix.push(name.clone());
            let pattern = suffix.join("::");
            candidates
                .iter()
                .copied()
                .filter(|&c| qname_matches(&nodes[c].qname, &pattern))
                .collect()
        }
        CallSite::Method { name, self_recv } => {
            let Some(methods) = methods_by_name.get(name.as_str()) else { return Vec::new() };
            if *self_recv {
                if let Some(ty) = &caller.impl_type {
                    let own: Vec<usize> = methods
                        .iter()
                        .copied()
                        .filter(|&m| nodes[m].impl_type.as_deref() == Some(ty.as_str()))
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            // Receiver type unknown: over-approximate to every method of
            // that name in the workspace.
            methods.clone()
        }
    }
}

/// Maps `fbox_xxx` package segments to their in-tree crate directory
/// names and drops `crate`/`self`/`super` prefixes (resolution is
/// suffix-based, so dropping them only widens the candidate set).
fn normalize_path(segments: &[&str]) -> Vec<String> {
    segments
        .iter()
        .filter(|s| !matches!(**s, "crate" | "self" | "super"))
        .map(|s| s.strip_prefix("fbox_").unwrap_or(s).to_owned())
        .collect()
}

/// Whether `qname`'s trailing `::` segments equal `pattern`'s.
pub fn qname_matches(qname: &str, pattern: &str) -> bool {
    let q: Vec<&str> = qname.split("::").collect();
    let p: Vec<&str> = pattern.split("::").collect();
    let (qn, pn) = (q.len(), p.len());
    if pn > qn {
        return false;
    }
    q[qn - pn..] == p[..]
}

/// Derives the root module path of a file from its workspace-relative
/// path: `crates/core/src/measures/emd.rs` → `["core", "measures",
/// "emd"]`, with `lib.rs` / `main.rs` / `mod.rs` contributing no segment.
fn module_path(path: &str) -> Vec<String> {
    let mut segs: Vec<&str> = path.split('/').collect();
    let file = segs.pop().unwrap_or_default();
    let mut out: Vec<String> = Vec::new();
    match segs.first() {
        Some(&"crates") | Some(&"shims") => {
            if segs.len() >= 2 {
                out.push(segs[1].to_owned());
            }
            for seg in segs.iter().skip(2).filter(|s| **s != "src") {
                out.push((*seg).to_owned());
            }
        }
        _ => {
            out.push("fbox".to_owned());
            for seg in segs.iter().filter(|s| **s != "src") {
                out.push((*seg).to_owned());
            }
        }
    }
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    if !matches!(stem, "lib" | "main" | "mod") {
        out.push(stem.to_owned());
    }
    out
}

/// Recursive node collector.
#[derive(Default)]
struct Builder {
    nodes: Vec<FnNode>,
}

impl Builder {
    /// Walks one item, creating nodes for fn-like items and recursing
    /// into modules, impls, traits, bodies, and closures.
    fn collect(
        &mut self,
        file: &SourceFile,
        file_idx: usize,
        item: &Item,
        module: &[String],
        impl_type: Option<&str>,
        parent: Option<usize>,
    ) {
        match &item.kind {
            ItemKind::Mod => {
                let mut inner = module.to_vec();
                inner.push(item.name.clone());
                for child in &item.children {
                    self.collect(file, file_idx, child, &inner, impl_type, parent);
                }
            }
            ItemKind::Impl { type_name, .. } => {
                for child in &item.children {
                    self.collect(file, file_idx, child, module, Some(type_name), parent);
                }
            }
            ItemKind::Trait => {
                for child in &item.children {
                    self.collect(file, file_idx, child, module, Some(&item.name), parent);
                }
            }
            ItemKind::Fn => {
                let qname = match impl_type {
                    Some(ty) => format!("{}::{}::{}", module.join("::"), ty, item.name),
                    None => format!("{}::{}", module.join("::"), item.name),
                };
                let id = self.push_node(
                    file,
                    file_idx,
                    item,
                    qname,
                    item.name.clone(),
                    impl_type,
                    parent,
                    None,
                );
                for child in &item.children {
                    self.collect_body_child(file, file_idx, child, impl_type, id);
                }
            }
            // Closures only occur inside fn bodies (`collect_body_child`);
            // other item kinds own no executable code.
            _ => {}
        }
    }

    /// Children found inside fn bodies: nested fns and closures.
    fn collect_body_child(
        &mut self,
        file: &SourceFile,
        file_idx: usize,
        item: &Item,
        impl_type: Option<&str>,
        parent: usize,
    ) {
        let (qname, simple, par_entry) = match &item.kind {
            ItemKind::Fn => {
                (format!("{}::{}", self.nodes[parent].qname, item.name), item.name.clone(), None)
            }
            ItemKind::Closure { enclosing_call } => {
                let simple = format!("{{closure@{}}}", item.line);
                (
                    format!("{}::{}", self.nodes[parent].qname, simple),
                    simple,
                    enclosing_call
                        .as_deref()
                        .filter(|c| PAR_ENTRY_POINTS.contains(c))
                        .map(str::to_owned),
                )
            }
            _ => return,
        };
        let id =
            self.push_node(file, file_idx, item, qname, simple, impl_type, Some(parent), par_entry);
        for child in &item.children {
            self.collect_body_child(file, file_idx, child, impl_type, id);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_node(
        &mut self,
        file: &SourceFile,
        file_idx: usize,
        item: &Item,
        qname: String,
        simple: String,
        impl_type: Option<&str>,
        parent: Option<usize>,
        par_entry: Option<String>,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(FnNode {
            qname,
            simple,
            file: file_idx,
            line: item.line,
            tokens: item.tokens,
            body: item.body,
            parent,
            children: Vec::new(),
            impl_type: impl_type.map(str::to_owned),
            par_entry,
            is_closure: matches!(item.kind, ItemKind::Closure { .. }),
            in_test: file.in_test_span(item.line),
        });
        if let Some(p) = parent {
            self.nodes[p].children.push(id);
        }
        id
    }
}

/// Shared sink-scan helper: iterates every node's own tokens outside
/// test spans, calling `scan(node_id, token_index)` for each.
pub(crate) fn for_each_own_token(model: &Model, mut scan: impl FnMut(usize, usize)) {
    for id in 0..model.nodes.len() {
        let node = &model.nodes[id];
        let file = &model.files[node.file];
        for (lo, hi) in own_token_ranges(&model.nodes, id) {
            for tok in lo..hi.min(file.lexed.tokens.len()) {
                if file.in_test_span(file.lexed.tokens[tok].line) {
                    continue;
                }
                scan(id, tok);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths_from_file_paths() {
        assert_eq!(module_path("crates/core/src/lib.rs"), vec!["core"]);
        assert_eq!(module_path("crates/core/src/measures/emd.rs"), vec!["core", "measures", "emd"]);
        assert_eq!(module_path("crates/core/src/algo/mod.rs"), vec!["core", "algo"]);
        assert_eq!(
            module_path("crates/repro/src/bin/repro-all.rs"),
            vec!["repro", "bin", "repro-all"]
        );
        assert_eq!(module_path("src/lib.rs"), vec!["fbox"]);
        assert_eq!(module_path("tests/chaos.rs"), vec!["fbox", "tests", "chaos"]);
        assert_eq!(module_path("shims/rand/src/lib.rs"), vec!["rand"]);
    }

    #[test]
    fn qname_suffix_matching() {
        assert!(qname_matches("core::fbox::FBox::from_search", "FBox::from_search"));
        assert!(qname_matches("core::fbox::FBox::from_search", "from_search"));
        assert!(!qname_matches("core::fbox::FBox::from_search_serial", "from_search"));
        assert!(!qname_matches("a::b", "a::b::c"));
        assert!(qname_matches("a::b::c", "a::b::c"));
    }

    fn model_files(sources: &[(&str, &str)]) -> Vec<SourceFile> {
        sources.iter().map(|(p, t)| SourceFile::parse(p, t)).collect()
    }

    fn config_with_roots(roots: &[&str]) -> Config {
        Config { sema_roots: roots.iter().map(|s| (*s).to_owned()).collect(), ..Config::default() }
    }

    #[test]
    fn call_graph_resolves_free_method_and_path_calls() {
        let files = model_files(&[(
            "crates/core/src/x.rs",
            "pub fn root() { helper(); T::assoc(); }\n\
             fn helper() { let t = T; t.step(); }\n\
             pub struct T;\n\
             impl T {\n\
                 pub fn assoc() {}\n\
                 pub fn step(&self) { self.inner(); }\n\
                 fn inner(&self) {}\n\
             }\n",
        )]);
        let cfg = config_with_roots(&["root"]);
        let model = Model::build(&files, &cfg);
        let q = |name: &str| {
            model
                .nodes
                .iter()
                .position(|n| n.simple == name)
                .unwrap_or_else(|| panic!("node {name} exists"))
        };
        assert!(model.det.reached(q("helper")), "free call edge");
        assert!(model.det.reached(q("assoc")), "Type::assoc edge");
        assert!(model.det.reached(q("step")), "method call edge");
        assert!(model.det.reached(q("inner")), "self-call edge");
        let path = model.det.path_to(q("inner")).expect("inner is reachable");
        let names: Vec<&str> = path.iter().map(|&i| model.nodes[i].simple.as_str()).collect();
        assert_eq!(names, ["root", "helper", "step", "inner"]);
    }

    #[test]
    fn closures_get_capture_edges_and_par_roots() {
        let files = model_files(&[(
            "crates/core/src/x.rs",
            "pub fn build(xs: &[u64]) {\n\
                 par_map(xs, |x| helper(x));\n\
                 let f = |y: u64| y + 1;\n\
             }\n\
             fn helper(x: &u64) -> u64 { *x }\n",
        )]);
        let cfg = config_with_roots(&["build"]);
        let model = Model::build(&files, &cfg);
        assert_eq!(model.par_roots.len(), 1, "only the par_map closure is a par root");
        let closure = model.par_roots[0];
        assert!(
            model.nodes[closure].qname.contains("{closure@2}"),
            "{}",
            model.nodes[closure].qname
        );
        let helper = model.nodes.iter().position(|n| n.simple == "helper").expect("helper node");
        assert!(model.par.reached(helper), "par reachability flows through the closure");
        assert!(model.det.reached(closure), "capture edge from build to its closure");
    }

    #[test]
    fn test_code_is_not_a_root() {
        let files = model_files(&[(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    pub fn run_study() { helper(); }\n}\n\
             pub fn helper() {}\n",
        )]);
        let cfg = config_with_roots(&["run_study"]);
        let model = Model::build(&files, &cfg);
        assert!(model.det_roots.is_empty(), "roots inside #[cfg(test)] do not count");
    }
}
