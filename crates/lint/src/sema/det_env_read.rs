//! `det-env-read` — environment reads reachable from a determinism root.
//!
//! `std::env::var` makes the output of a run depend on ambient process
//! state, which breaks byte-identical reproduction and makes archived
//! run reports unverifiable. Environment access is sanctioned only in
//! the config entry points that snapshot the value once at startup
//! (`FBOX_THREADS` in `fbox-par`, `FAULTS_ENV` in `fbox-resilience`,
//! `FBOX_TELEMETRY` in `fbox-telemetry`); those files are carved out via
//! `[rule.det-env-read] allow-paths` in `Lint.toml`.

use crate::lexer::Tok;
use crate::rules::{Finding, Severity};
use crate::sema::{for_each_own_token, Model, SemaRule};

/// See the module docs.
pub struct DetEnvRead;

/// `std::env` readers that observe ambient process state.
const ENV_READERS: &[&str] = &["var", "var_os", "vars", "vars_os"];

impl SemaRule for DetEnvRead {
    fn id(&self) -> &'static str {
        "det-env-read"
    }

    fn summary(&self) -> &'static str {
        "environment read in code reachable from a determinism root"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for_each_own_token(model, |node_id, i| {
            if !model.det.reached(node_id) {
                return;
            }
            let node = &model.nodes[node_id];
            let file = &model.files[node.file];
            let toks = &file.lexed.tokens;
            // `env::var(…)` (also matches the tail of `std::env::var`).
            if !toks[i].tok.is_ident("env") || !toks.get(i + 1).is_some_and(|t| t.tok.is_op("::")) {
                return;
            }
            let Some(Tok::Ident(reader)) = toks.get(i + 2).map(|t| &t.tok) else { return };
            if !ENV_READERS.contains(&reader.as_str()) {
                return;
            }
            let path =
                model.det.path_to(node_id).map(|p| model.render_path(&p)).unwrap_or_default();
            model.emit(self, node.file, toks[i].line, path, out);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(src: &str, roots: &[&str]) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let cfg = Config {
            sema_roots: roots.iter().map(|s| (*s).to_owned()).collect(),
            ..Config::default()
        };
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        DetEnvRead.check(&model, &mut out);
        out
    }

    #[test]
    fn transitive_env_read_is_flagged_with_path() {
        let src = "pub fn run_study() { configure(); }\n\
                   fn configure() { read_threads(); }\n\
                   fn read_threads() -> Option<String> { std::env::var(\"T\").ok() }\n";
        let out = findings(src, &["run_study"]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert_eq!(out[0].path.len(), 3, "{:?}", out[0].path);
    }

    #[test]
    fn unreachable_env_read_is_not_flagged() {
        let src = "pub fn run_study() {}\n\
                   fn read_threads() -> Option<String> { std::env::var(\"T\").ok() }\n";
        assert!(findings(src, &["run_study"]).is_empty());
    }
}
