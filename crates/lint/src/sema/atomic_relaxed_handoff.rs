//! `atomic-relaxed-handoff` — `Ordering::Relaxed` on an atomic used to
//! hand a value across threads in the parallel cone.
//!
//! `Relaxed` guarantees atomicity of the single access but no ordering
//! against *other* memory: a worker that `store`s a flag with `Relaxed`
//! and a reader that `load`s it with `Relaxed` can observe the flag flip
//! before the data it guards is visible. Plain `load`/`store` pairs on
//! the same atomic from different functions in the par cone are exactly
//! that handoff shape and need `Acquire`/`Release` (or stronger).
//! Read-modify-write counters (`fetch_add(1, Relaxed)` claim counters,
//! statistics) are exempt: RMWs are always atomic read-modify-write and
//! the workspace uses them only where ordering is irrelevant.
//!
//! Findings carry the path root closure → the Relaxed access statement →
//! its counterpart access in the other function.

use crate::lexer::{Tok, Token};
use crate::rules::{Finding, Severity};
use crate::sema::{for_each_own_token, Model, SemaRule};

/// See the module docs.
pub struct AtomicRelaxedHandoff;

impl SemaRule for AtomicRelaxedHandoff {
    fn id(&self) -> &'static str {
        "atomic-relaxed-handoff"
    }

    fn summary(&self) -> &'static str {
        "Relaxed load/store pair hands a value across threads in the parallel cone"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        // Pass 1: collect every plain load/store access on a named
        // atomic receiver, anywhere in the workspace.
        let mut accesses: Vec<Access> = Vec::new();
        for_each_own_token(model, |node, at| {
            let toks = &model.files[model.nodes[node].file].lexed.tokens;
            if let Some(acc) = classify_access(toks, at, node) {
                accesses.push(acc);
            }
        });

        // Pass 2: a Relaxed access in the par cone whose counterpart
        // lives in a *different* function is a cross-thread handoff.
        for acc in &accesses {
            if !acc.relaxed || !model.par.reached(acc.node) {
                continue;
            }
            let counterpart = accesses.iter().find(|other| {
                other.node != acc.node && other.receiver == acc.receiver && other.store != acc.store
            });
            let Some(other) = counterpart else { continue };
            let mut path =
                model.par.path_to(acc.node).map(|p| model.render_path(&p)).unwrap_or_default();
            let toks = &model.files[model.nodes[acc.node].file].lexed.tokens;
            for &(site, tok) in &[(acc.node, acc.tok), (other.node, other.tok)] {
                if let Some(flow) = model.flows[site].as_ref() {
                    if let Some(stmt) = flow.stmt_at(tok) {
                        path.push(model.stmt_hop(site, flow.stmt(stmt)));
                    }
                }
            }
            model.emit(self, model.nodes[acc.node].file, toks[acc.tok].line, path, out);
        }
    }
}

/// One atomic access site.
struct Access {
    /// Node owning the access.
    node: usize,
    /// Token index of the method name.
    tok: usize,
    /// Atomic variable/field name (nearest ident before the dot chain).
    receiver: String,
    /// `store` (write side) vs `load` (read side); RMWs count as writes.
    store: bool,
    /// Whether the ordering argument mentions `Relaxed`.
    relaxed: bool,
}

/// Classifies the token at `at` as an atomic access when it is a
/// `.load(` / `.store(` / `.fetch_*(` / `.swap(` / `.compare_exchange*(`
/// whose argument list names a memory ordering.
fn classify_access(toks: &[Token], at: usize, node: usize) -> Option<Access> {
    let Tok::Ident(method) = &toks[at].tok else { return None };
    let store = match method.as_str() {
        "load" => false,
        "store" | "swap" => true,
        m if m.starts_with("fetch_") || m.starts_with("compare_exchange") => true,
        _ => return None,
    };
    if at == 0 {
        return None;
    }
    if !toks[at - 1].tok.is_punct('.') {
        return None;
    }
    if !matches!(toks.get(at + 1).map(|t| &t.tok), Some(t) if t.is_punct('(')) {
        return None;
    }
    // The argument list must name a memory ordering — that is what
    // separates `AtomicU64::load` from `HashMap`-style `load` helpers.
    let args = group_range(toks, at + 1)?;
    let mut relaxed = false;
    let mut any_ordering = false;
    for tok in &toks[args.0..args.1] {
        if let Tok::Ident(s) = &tok.tok {
            match s.as_str() {
                "Relaxed" => {
                    relaxed = true;
                    any_ordering = true;
                }
                "Acquire" | "Release" | "AcqRel" | "SeqCst" | "Ordering" => any_ordering = true,
                _ => {}
            }
        }
    }
    if !any_ordering {
        return None;
    }
    // RMWs stay recorded as counterpart write sides (a Relaxed `load`
    // paired with a `fetch_or` still flags) but are never themselves the
    // flagged access.
    let relaxed = relaxed && matches!(method.as_str(), "load" | "store");
    Some(Access { node, tok: at, receiver: receiver_of(toks, at - 1)?, store, relaxed })
}

/// The nearest named segment of the receiver chain ending at the `.`
/// token `dot`: `ready.load` → `ready`, `self.enabled.load` →
/// `enabled`, `cells[i].count.fetch_add` → `count`.
fn receiver_of(toks: &[Token], dot: usize) -> Option<String> {
    let mut at = dot;
    while at > 0 {
        at -= 1;
        match &toks[at].tok {
            Tok::Ident(s) if s != "self" && !crate::parser::is_keyword(s) => {
                return Some(s.clone())
            }
            Tok::Ident(_) | Tok::Punct('.') => {}
            Tok::Punct(')' | ']') => {
                // Jump backwards over the balanced group.
                let mut depth = 1usize;
                while at > 0 && depth > 0 {
                    at -= 1;
                    match &toks[at].tok {
                        Tok::Punct(')' | ']') => depth += 1,
                        Tok::Punct('(' | '[') => depth -= 1,
                        _ => {}
                    }
                }
            }
            _ => return None,
        }
    }
    None
}

/// Half-open token range inside the group opened at `open`.
fn group_range(toks: &[Token], open: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    for (at, t) in toks.iter().enumerate().skip(open) {
        match &t.tok {
            Tok::Punct('(' | '[') => depth += 1,
            Tok::Punct(')' | ']') => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some((open + 1, at));
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let model = Model::build(&files, &Config::default());
        let mut out = Vec::new();
        AtomicRelaxedHandoff.check(&model, &mut out);
        out
    }

    #[test]
    fn relaxed_store_with_cross_fn_load_is_flagged() {
        let src = "pub fn build(xs: &[u64], ready: &AtomicBool) {\n\
                       par_map(xs, |x| {\n\
                           ready.store(true, Ordering::Relaxed);\n\
                           *x\n\
                       });\n\
                   }\n\
                   pub fn reader(ready: &AtomicBool) -> bool {\n\
                       ready.load(Ordering::Acquire)\n\
                   }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
        assert!(out[0].path.len() >= 3, "{:?}", out[0].path);
        assert!(out[0].path.iter().any(|h| h.contains("store(true")));
        assert!(out[0].path.last().expect("path").contains("load(Ordering::Acquire)"));
    }

    #[test]
    fn fetch_add_counters_are_exempt() {
        let src = "pub fn build(xs: &[u64], hits: &AtomicU64) -> u64 {\n\
                       par_map(xs, |_| hits.fetch_add(1, Ordering::Relaxed));\n\
                       hits.load(Ordering::Relaxed)\n\
                   }\n";
        // The `load` here is in `build`, outside the par cone? No —
        // `build` is not par-reached (only the closure is), and the
        // closure's access is an RMW, so nothing flags.
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn acquire_release_pairs_are_fine() {
        let src = "pub fn build(xs: &[u64], ready: &AtomicBool) {\n\
                       par_map(xs, |x| {\n\
                           ready.store(true, Ordering::Release);\n\
                           *x\n\
                       });\n\
                   }\n\
                   pub fn reader(ready: &AtomicBool) -> bool {\n\
                       ready.load(Ordering::Acquire)\n\
                   }\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn relaxed_without_counterpart_is_fine() {
        let src = "pub fn build(xs: &[u64], gen: &AtomicU64) {\n\
                       par_map(xs, |_| gen.load(Ordering::Relaxed));\n\
                   }\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }
}
