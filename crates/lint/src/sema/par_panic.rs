//! `par-panic-reachable` — panics reachable from closures handed to the
//! `fbox-par` fan-out entry points.
//!
//! A panic inside a worker closure tears down the whole thread pool and
//! turns a recoverable data problem into an aborted run; `fbox-par`
//! deliberately has no panic recovery so that serial and parallel
//! execution stay observably identical. Roots are every closure passed
//! to `par_map` / `par_chunks` / `scope` / `with_threads`; sinks are
//! `panic!` / `todo!` / `unimplemented!`, `.unwrap()`, and `.expect(…)`
//! whose argument is *not* a single non-empty string literal — the
//! workspace's sanctioned invariant style, `.expect("named invariant")`,
//! stays allowed.

use crate::lexer::Tok;
use crate::rules::{Finding, Severity};
use crate::sema::{for_each_own_token, Model, SemaRule};

/// See the module docs.
pub struct ParPanicReachable;

/// Macros that unconditionally panic.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

impl SemaRule for ParPanicReachable {
    fn id(&self) -> &'static str {
        "par-panic-reachable"
    }

    fn summary(&self) -> &'static str {
        "panic/unwrap/bare-expect reachable from a parallel worker closure"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for_each_own_token(model, |node_id, i| {
            if !model.par.reached(node_id) {
                return;
            }
            let node = &model.nodes[node_id];
            let file = &model.files[node.file];
            let toks = &file.lexed.tokens;
            if !is_panic_sink(toks, i) {
                return;
            }
            let path =
                model.par.path_to(node_id).map(|p| model.render_path(&p)).unwrap_or_default();
            model.emit(self, node.file, toks[i].line, path, out);
        });
    }
}

/// Whether the token at `i` starts a panic sink.
fn is_panic_sink(toks: &[crate::lexer::Token], i: usize) -> bool {
    let Tok::Ident(name) = &toks[i].tok else { return false };
    // `panic!(` / `todo!(` / `unimplemented!(`.
    if PANIC_MACROS.contains(&name.as_str()) && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('!'))
    {
        return true;
    }
    let after_dot = i >= 1 && toks[i - 1].tok.is_punct('.');
    if !after_dot || !toks.get(i + 1).is_some_and(|t| t.tok.is_punct('(')) {
        return false;
    }
    match name.as_str() {
        "unwrap" => true,
        "expect" => {
            // Sanctioned: `.expect("non-empty literal")` — exactly one
            // non-empty string literal argument.
            !matches!(
                (toks.get(i + 2).map(|t| &t.tok), toks.get(i + 3).map(|t| &t.tok)),
                (Some(Tok::Str(n)), Some(Tok::Punct(')'))) if *n > 0
            )
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let model = Model::build(&files, &Config::default());
        let mut out = Vec::new();
        ParPanicReachable.check(&model, &mut out);
        out
    }

    #[test]
    fn unwrap_inside_a_par_closure_is_flagged() {
        let src = "pub fn build(xs: &[u64]) {\n\
                       par_map(xs, |x| x.checked_mul(2).unwrap());\n\
                   }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].path[0].contains("build"), "{:?}", out[0].path);
        assert!(out[0].path.last().expect("non-empty path").contains("{closure@2}"));
    }

    #[test]
    fn transitive_panic_through_a_helper_is_flagged() {
        let src = "pub fn build(xs: &[u64]) {\n\
                       par_chunks(xs, 8, |c| step(c));\n\
                   }\n\
                   fn step(c: &[u64]) -> u64 { inner(c) }\n\
                   fn inner(c: &[u64]) -> u64 { panic!(\"bad chunk: {c:?}\") }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 5);
        assert!(out[0].path.len() >= 3, "{:?}", out[0].path);
    }

    #[test]
    fn named_invariant_expect_is_sanctioned() {
        let src = "pub fn build(xs: &[u64]) {\n\
                       par_map(xs, |x| x.checked_mul(2).expect(\"shares are bounded\"));\n\
                   }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn empty_or_computed_expect_is_flagged() {
        let src = "pub fn build(xs: &[u64]) {\n\
                       par_map(xs, |x| x.checked_mul(2).expect(\"\"));\n\
                   }\n";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn panic_outside_any_par_closure_is_ignored() {
        let src = "pub fn serial(xs: &[u64]) -> u64 { xs.first().copied().unwrap() }\n";
        assert!(findings(src).is_empty());
    }
}
