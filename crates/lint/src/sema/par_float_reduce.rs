//! `par-float-reduce-order` — float accumulation over values collected
//! in worker *completion* order.
//!
//! Float addition is not associative: `(a + b) + c` and `a + (b + c)`
//! differ in the last ulps, so a sum over values that arrive in
//! scheduling order produces run-to-run different cubes. The dangerous
//! shape is a parallel closure pushing task results into a captured
//! container (`partials.lock().unwrap().push(v)`, `tx.send(v)`) whose
//! contents a parent function then reduces with `+=` / `.sum()` /
//! `.fold(…)`. The safe shape — reducing the *return value* of
//! `par_map`, which is merged back in input order — is exempt because no
//! captured container is mutated.
//!
//! Findings carry the path root closure → completion-order write →
//! reducing statement.

use crate::flow::stmt::{Stmt, StmtKind};
use crate::lexer::{Tok, Token};
use crate::rules::{Finding, Severity};
use crate::sema::{Model, SemaRule};

/// See the module docs.
pub struct ParFloatReduceOrder;

/// Container mutators that append in completion order.
const ORDER_SINKS: &[&str] = &["push", "extend", "send", "insert"];

impl SemaRule for ParFloatReduceOrder {
    fn id(&self) -> &'static str {
        "par-float-reduce-order"
    }

    fn summary(&self) -> &'static str {
        "f64 reduction over a container filled in parallel completion order"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for &root in &model.par_roots {
            if model.nodes[root].in_test {
                continue;
            }
            let Some(flow) = &model.flows[root] else { continue };
            let toks = &model.files[model.nodes[root].file].lexed.tokens;
            let local = flow.bound_locals();
            // Captured containers the closure appends to.
            for stmt in &flow.tree.stmts {
                let Some(container) = completion_order_write(toks, stmt, &local) else {
                    continue;
                };
                // Walk the ancestor chain looking for a float reduction
                // that reads the container (directly or one def away).
                let mut at = model.nodes[root].parent;
                while let Some(parent) = at {
                    if let Some((reduce_node, reduce_stmt)) =
                        find_reduction(model, parent, &container)
                    {
                        let mut path = model
                            .par
                            .path_to(root)
                            .map(|p| model.render_path(&p))
                            .unwrap_or_default();
                        path.push(model.stmt_hop(root, stmt));
                        if let Some(rf) = model.flows[reduce_node].as_ref() {
                            let rs = rf.stmt(reduce_stmt);
                            path.push(model.stmt_hop(reduce_node, rs));
                            model.emit(self, model.nodes[reduce_node].file, rs.line, path, out);
                        }
                        break;
                    }
                    at = model.nodes[parent].parent;
                }
            }
        }
    }
}

/// If `stmt` appends to a captured container (`c.push(…)`,
/// `c.lock().unwrap().push(…)`, `tx.send(…)`), the container's base name.
fn completion_order_write(toks: &[Token], stmt: &Stmt, local: &[&str]) -> Option<String> {
    let (lo, hi) = (stmt.tokens.0, stmt.tokens.1.min(toks.len()));
    let has_sink = (lo..hi).any(|at| {
        matches!(&toks[at].tok, Tok::Ident(m) if ORDER_SINKS.contains(&m.as_str()))
            && at >= 1
            && toks[at - 1].tok.is_punct('.')
    });
    if !has_sink {
        return None;
    }
    let base = crate::flow::defuse::first_ident(toks, lo, hi)?;
    (!local.contains(&base.as_str())).then_some(base)
}

/// A float-reduction statement over `container` inside `node`'s own
/// statements (closure children own their tokens and are excluded by the
/// statement tree's ranges being scanned per statement of *this* flow).
fn find_reduction(model: &Model, node: usize, container: &str) -> Option<(usize, usize)> {
    let flow = model.flows[node].as_ref()?;
    if !flow.defines(container) {
        return None;
    }
    let toks = &model.files[model.nodes[node].file].lexed.tokens;
    let closure_ranges: Vec<(usize, usize)> = model.nodes[node]
        .children
        .iter()
        .filter(|&&c| model.nodes[c].is_closure)
        .filter_map(|&c| model.nodes[c].body)
        .collect();
    for (id, stmt) in flow.tree.stmts.iter().enumerate() {
        // Reads the container, directly or through one intermediate
        // binding (`let drained = partials.lock()…; total += drained…`).
        let reads = stmt.uses.iter().any(|u| u == container)
            || stmt.uses.iter().any(|u| {
                flow.reaching_defs(id, u)
                    .iter()
                    .any(|&d| flow.stmt(d).uses.iter().any(|du| du == container))
            });
        if !reads {
            continue;
        }
        if is_float_reduce(toks, stmt, &closure_ranges) {
            return Some((node, id));
        }
    }
    None
}

/// Whether the statement reduces floats: a compound `+=`/`*=`, or a
/// `.sum()` / `.fold(…)` call, with float evidence (an `f64`/`f32`
/// turbofish or a float literal) in the statement's own tokens. Tokens
/// inside child closures of the *enclosing function* are skipped so a
/// reduction inside the parallel worker itself does not satisfy the
/// parent-side check.
fn is_float_reduce(toks: &[Token], stmt: &Stmt, closure_ranges: &[(usize, usize)]) -> bool {
    let (lo, hi) = (stmt.tokens.0, stmt.tokens.1.min(toks.len()));
    let own = |at: usize| !closure_ranges.iter().any(|&(clo, chi)| (clo..chi).contains(&at));
    let mut reduces = matches!(&stmt.kind, StmtKind::Assign { compound: true, .. });
    let mut float = false;
    for at in (lo..hi).filter(|&at| own(at)) {
        match &toks[at].tok {
            Tok::Ident(s) if matches!(s.as_str(), "sum" | "fold" | "product") => reduces = true,
            Tok::Ident(s) if matches!(s.as_str(), "f64" | "f32") => float = true,
            Tok::Float(_) => float = true,
            _ => {}
        }
    }
    reduces && float
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let model = Model::build(&files, &Config::default());
        let mut out = Vec::new();
        ParFloatReduceOrder.check(&model, &mut out);
        out
    }

    #[test]
    fn completion_order_sum_is_flagged() {
        let src = "pub fn build(xs: &[f64]) -> f64 {\n\
                       let partials = Mutex::new(Vec::new());\n\
                       par_map(xs, |x| partials.lock().unwrap().push(x * 2.0));\n\
                       let total: f64 = partials.into_inner().unwrap().iter().sum::<f64>();\n\
                       total\n\
                   }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].path.len() >= 3, "{:?}", out[0].path);
        assert!(out[0].path[0].contains("{closure@3}"));
        assert!(out[0].path.iter().any(|h| h.contains("push")));
        assert!(out[0].path.last().expect("path").contains("sum"));
    }

    #[test]
    fn compound_add_over_drained_channel_is_flagged() {
        let src = "pub fn build(xs: &[f64], tx: Sender<f64>) -> f64 {\n\
                       par_map(xs, |x| tx.send(*x));\n\
                       let mut total = 0.0;\n\
                       total += tx.drain().iter().sum::<f64>();\n\
                       total\n\
                   }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn input_order_merge_of_par_map_results_is_safe() {
        let src = "pub fn build(xs: &[f64]) -> f64 {\n\
                       let doubled = par_map(xs, |x| x * 2.0);\n\
                       let total: f64 = doubled.iter().sum::<f64>();\n\
                       total\n\
                   }\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn integer_counters_are_not_float_reductions() {
        let src = "pub fn build(xs: &[u64]) -> usize {\n\
                       let hits = Mutex::new(Vec::new());\n\
                       par_map(xs, |x| hits.lock().unwrap().push(*x));\n\
                       let n = hits.into_inner().unwrap().len();\n\
                       n\n\
                   }\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }
}
