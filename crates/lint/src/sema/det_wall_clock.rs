//! `det-wall-clock` — wall-clock reads reachable from a determinism
//! root.
//!
//! The lexical `instant-outside-telemetry` rule flags `Instant::now()`
//! where it is written; this rule upgrades it transitively: a timing
//! call hidden inside a helper is a violation the moment that helper
//! becomes reachable from a cube build, crawl, study, or report root.
//! Timing belongs in `fbox-telemetry` spans (carved out via
//! `[rule.det-wall-clock] allow-paths`), never in result-producing code.

use crate::lexer::Tok;
use crate::rules::{Finding, Severity};
use crate::sema::{for_each_own_token, Model, SemaRule};

/// See the module docs.
pub struct DetWallClock;

/// Types whose `now()` observes the wall clock.
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

impl SemaRule for DetWallClock {
    fn id(&self) -> &'static str {
        "det-wall-clock"
    }

    fn summary(&self) -> &'static str {
        "wall-clock read in code reachable from a determinism root"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for_each_own_token(model, |node_id, i| {
            if !model.det.reached(node_id) {
                return;
            }
            let node = &model.nodes[node_id];
            let file = &model.files[node.file];
            let toks = &file.lexed.tokens;
            let Tok::Ident(ty) = &toks[i].tok else { return };
            if !CLOCK_TYPES.contains(&ty.as_str())
                || !toks.get(i + 1).is_some_and(|t| t.tok.is_op("::"))
                || !toks.get(i + 2).is_some_and(|t| t.tok.is_ident("now"))
            {
                return;
            }
            let path =
                model.det.path_to(node_id).map(|p| model.render_path(&p)).unwrap_or_default();
            model.emit(self, node.file, toks[i].line, path, out);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(src: &str, roots: &[&str]) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let cfg = Config {
            sema_roots: roots.iter().map(|s| (*s).to_owned()).collect(),
            ..Config::default()
        };
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        DetWallClock.check(&model, &mut out);
        out
    }

    #[test]
    fn transitive_clock_read_is_flagged() {
        let src = "pub fn crawl() { step(); }\n\
                   fn step() { stamp(); }\n\
                   fn stamp() { let _t = std::time::Instant::now(); }\n";
        let out = findings(src, &["crawl"]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert_eq!(out[0].path.len(), 3);
    }

    #[test]
    fn clock_read_outside_the_cone_is_ignored() {
        let src = "pub fn crawl() {}\n\
                   fn stamp() { let _t = std::time::SystemTime::now(); }\n";
        assert!(findings(src, &["crawl"]).is_empty());
    }
}
