//! A small hand-rolled Rust lexer: enough fidelity for line-accurate,
//! comment/string/attribute-aware pattern rules, with no attempt at a
//! full parse.
//!
//! The token stream drops comments (they are collected separately as
//! [`Comment`] trivia so rules like `unsafe-needs-safety-comment` and the
//! inline `// fbox-lint: allow(...)` suppressions can still see them) and
//! collapses every literal's text it does not need. What it does keep
//! precise is the thing the rules depend on: float vs. integer literals,
//! lifetimes vs. char literals, raw/byte strings, nested block comments,
//! and multi-character operators such as `==`, `::` and `->`.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token payload kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `partial_cmp`, ...).
    Ident(String),
    /// Lifetime such as `'a` (label or lifetime position).
    Lifetime(String),
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int(String),
    /// Float literal (`0.0`, `1.`, `2e-3`, `1f64`).
    Float(String),
    /// Any string literal (`"..."`, `r#"..."#`, `b"..."`). The content is
    /// elided; only its character count is kept (rules distinguish
    /// `expect("named invariant")` from `expect("")` by emptiness).
    Str(usize),
    /// Char or byte literal (`'x'`, `b'\n'`); content elided.
    Char,
    /// Multi-character operator (`==`, `!=`, `::`, `->`, `..`, ...).
    Op(&'static str),
    /// Single punctuation character (`.`, `(`, `#`, `{`, ...).
    Punct(char),
}

impl Tok {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == name)
    }

    /// Whether this token is the multi-char operator `op`.
    pub fn is_op(&self, op: &str) -> bool {
        matches!(self, Tok::Op(s) if *s == op)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A comment, kept out-of-band from the token stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the token stream plus comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into tokens and comments. Unterminated constructs are
/// tolerated (the remainder of the file is consumed as that construct);
/// a lexical analyzer for a linter must never panic on weird input.
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_literal() => {}
                '\'' => self.lifetime_or_char(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                _ => self.operator(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.comments.push(Comment { line, end_line: line, text });
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some('\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.comments.push(Comment { line, end_line: self.line, text });
    }

    /// Skips a `\x` escape, counting the line when the escaped character
    /// is a newline (string-literal line continuations).
    fn skip_escape(&mut self) {
        self.pos += 1;
        if self.peek(0) == Some('\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Consumes a `"..."` string body (opening quote at `self.pos`).
    fn string(&mut self) {
        let line = self.line;
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.skip_escape(),
                '"' => break,
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let len = self.pos - start;
        self.pos += 1; // closing quote (or EOF)
        self.push(Tok::Str(len), line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`.
    /// Returns `false` when the `r`/`b` is just an identifier start.
    fn raw_or_byte_literal(&mut self) -> bool {
        let mut i = 1; // chars after the leading r/b
        let first = self.peek(0).unwrap_or(' ');
        if first == 'b' && self.peek(1) == Some('r') {
            i = 2;
        }
        if first == 'b' && self.peek(1) == Some('\'') {
            // byte char literal b'x'
            let line = self.line;
            self.pos += 2;
            while let Some(c) = self.peek(0) {
                match c {
                    '\\' => self.skip_escape(),
                    '\'' => {
                        self.pos += 1;
                        break;
                    }
                    _ => self.pos += 1,
                }
            }
            self.push(Tok::Char, line);
            return true;
        }
        // Count `#`s between the prefix and the opening quote.
        let mut hashes = 0usize;
        while self.peek(i + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(i + hashes) != Some('"') {
            return false; // plain identifier like `radius` or `bins`
        }
        let raw = first == 'r' || self.peek(1) == Some('r');
        let line = self.line;
        self.pos += i + hashes + 1;
        let content_start = self.pos;
        let mut len = None;
        // Scan until closing quote followed by the same number of hashes.
        while let Some(c) = self.peek(0) {
            match c {
                '\\' if !raw => self.skip_escape(),
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                '"' => {
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        len = Some(self.pos - content_start);
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        // Unterminated literal: the rest of the file is the content.
        let len = len.unwrap_or_else(|| self.pos.saturating_sub(content_start));
        self.push(Tok::Str(len), line);
        true
    }

    /// Disambiguates lifetimes (`'a`) from char literals (`'a'`, `'\n'`).
    fn lifetime_or_char(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c.is_alphabetic() || c == '_' => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            let start = self.pos;
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let name: String = self.chars[start..self.pos].iter().collect();
            self.push(Tok::Lifetime(name), line);
        } else {
            self.pos += 1;
            while let Some(c) = self.peek(0) {
                match c {
                    '\\' => self.skip_escape(),
                    '\'' => {
                        self.pos += 1;
                        break;
                    }
                    '\n' => break, // stray quote; bail rather than eat the file
                    _ => self.pos += 1,
                }
            }
            self.push(Tok::Char, line);
        }
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.pos += 2;
            while matches!(self.peek(0), Some(c) if c.is_ascii_hexdigit() || c == '_') {
                self.pos += 1;
            }
        } else {
            self.digits();
            // A `.` continues the float only when NOT `..` (range) and NOT
            // `.ident` (method call / field access on an integer).
            if self.peek(0) == Some('.') {
                let after = self.peek(1);
                let method_or_range =
                    matches!(after, Some(c) if c.is_alphabetic() || c == '_' || c == '.');
                if !method_or_range {
                    is_float = true;
                    self.pos += 1;
                    self.digits();
                }
            }
            if matches!(self.peek(0), Some('e' | 'E'))
                && matches!(self.peek(1), Some(c) if c.is_ascii_digit() || c == '+' || c == '-')
            {
                is_float = true;
                self.pos += 1;
                if matches!(self.peek(0), Some('+' | '-')) {
                    self.pos += 1;
                }
                self.digits();
            }
        }
        // Type suffix (`u64`, `f32`, `usize`, ...).
        let suffix_start = self.pos;
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
        if suffix.starts_with('f') {
            is_float = true;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(if is_float { Tok::Float(text) } else { Tok::Int(text) }, line);
    }

    fn digits(&mut self) {
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
            self.pos += 1;
        }
    }

    fn ident(&mut self) {
        let (start, line) = (self.pos, self.line);
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        let name: String = self.chars[start..self.pos].iter().collect();
        self.push(Tok::Ident(name), line);
    }

    fn operator(&mut self) {
        let line = self.line;
        for op in OPS {
            if op.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c)) {
                self.pos += op.len();
                self.push(Tok::Op(op), line);
                return;
            }
        }
        let c = self.chars[self.pos];
        self.pos += 1;
        self.push(Tok::Punct(c), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).tokens.into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn floats_vs_ints_vs_ranges_vs_methods() {
        assert_eq!(
            toks("1.0 1. 2e-3 1f64 42 0xff 0..10 1.max(2)"),
            vec![
                Tok::Float("1.0".into()),
                Tok::Float("1.".into()),
                Tok::Float("2e-3".into()),
                Tok::Float("1f64".into()),
                Tok::Int("42".into()),
                Tok::Int("0xff".into()),
                Tok::Int("0".into()),
                Tok::Op(".."),
                Tok::Int("10".into()),
                Tok::Int("1".into()),
                Tok::Punct('.'),
                Tok::Ident("max".into()),
                Tok::Punct('('),
                Tok::Int("2".into()),
                Tok::Punct(')'),
            ]
        );
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let lexed =
            lex("let x = \"a == 0.0 //\"; // trailing == 1.0\n/* block\n0.0 == y */ fn f() {}");
        assert!(!lexed.tokens.iter().any(|t| matches!(t.tok, Tok::Float(_))));
        assert!(!lexed.tokens.iter().any(|t| t.tok.is_op("==")));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[1].end_line, 3);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let lexed = lex("r#\"raw \" quote\"# b\"bytes\" 'a' '\\n' fn f<'a>(x: &'a str) {}");
        let strs = lexed.tokens.iter().filter(|t| matches!(t.tok, Tok::Str(_))).count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        let lifetimes = lexed.tokens.iter().filter(|t| matches!(t.tok, Tok::Lifetime(_))).count();
        assert_eq!((strs, chars, lifetimes), (2, 2, 2));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        assert_eq!(
            toks("a == b != c :: d -> e => f"),
            vec![
                Tok::Ident("a".into()),
                Tok::Op("=="),
                Tok::Ident("b".into()),
                Tok::Op("!="),
                Tok::Ident("c".into()),
                Tok::Op("::"),
                Tok::Ident("d".into()),
                Tok::Op("->"),
                Tok::Ident("e".into()),
                Tok::Op("=>"),
                Tok::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn escaped_newline_in_string_still_counts_the_line() {
        // `"a\` + newline + `b"` — a line-continuation escape.
        let lexed = lex("\"a\\\nb\"\nx");
        assert_eq!(lexed.tokens[1].line, 3);
    }

    #[test]
    fn lines_are_tracked_through_every_construct() {
        let lexed = lex("a\n\"multi\nline\"\n/* c\n*/\nb");
        let a = &lexed.tokens[0];
        let b = &lexed.tokens[2];
        assert_eq!((a.line, b.line), (1, 6));
    }

    #[test]
    fn string_literals_carry_their_content_length() {
        let lexed = lex("\"\" \"abc\" r#\"xy\"# b\"q\"");
        let lens: Vec<usize> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Str(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(lens, vec![0, 3, 2, 1]);
    }
}
