//! A tolerant abstract *expression* evaluator over statement-head token
//! ranges. It mirrors Rust's precedence (postfix > unary > `as` >
//! arithmetic > shifts > bitwise > comparisons > lazy boolean > range),
//! maps every construct it understands to an [`AbsVal`] transfer
//! function, and maps everything else to ⊤ after skipping it with
//! balanced-delimiter recovery — an unknown construct can only *lose*
//! precision, never produce an unsound bound.
//!
//! While evaluating, the cursor emits [`Event`]s at the token positions
//! the absint rules care about: unsigned subtractions, typed add/mul
//! results escaping their type, `as` casts with their provenness, and
//! call sites with their abstract argument values. Events are positional
//! facts; whether one becomes a finding is entirely the rules' decision.

use std::collections::BTreeMap;

use crate::lexer::{Tok, Token};
use crate::parser::is_keyword;

use super::domain::{AbsVal, FloatFacts, IntKind, Interval};

/// Variable environment: name → abstract value. Missing names are
/// uninitialized-on-this-path (treated as absent at joins) and evaluate
/// to ⊤.
pub type Env = BTreeMap<String, AbsVal>;

/// A positional fact the evaluator observed. `at` is a token index into
/// the file's token stream; the line is `toks[at].line`.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `lhs - rhs` where the inferred kind is unsigned: wraps below zero
    /// in release, panics in debug. The names (when the operands were
    /// simple idents or consts) let rules consult must-compared facts.
    UncheckedSub {
        /// Token index of the `-`.
        at: usize,
        /// Abstract left operand.
        lhs: AbsVal,
        /// Abstract right operand.
        rhs: AbsVal,
        /// Simple name of the left operand, when it was one.
        lhs_name: Option<String>,
        /// Simple name of the right operand, when it was one.
        rhs_name: Option<String>,
    },
    /// A typed `+`/`*` whose mathematically-exact result interval
    /// escapes the operand type's range.
    Overflow {
        /// Token index of the operator.
        at: usize,
        /// `'+'` or `'*'`.
        op: char,
        /// The operand machine type.
        kind: IntKind,
        /// Left operand interval.
        lhs: Interval,
        /// Right operand interval.
        rhs: Interval,
        /// The exact (pre-wrap) result interval.
        result: Interval,
    },
    /// An `as` cast to an integer type.
    Cast {
        /// Token index of the `as`.
        at: usize,
        /// Abstract source value.
        from: AbsVal,
        /// Target integer type.
        to: IntKind,
        /// Whether the interval/facts prove the cast lossless.
        proven: bool,
        /// Whether the source was a float (the lexical-rule refinement
        /// only applies to float→int casts).
        from_float: bool,
    },
    /// A call site with evaluated argument values. `at` is the callee
    /// name token, which keys into the model's resolved call-site map.
    Call {
        /// Token index of the callee name.
        at: usize,
        /// Abstract argument values in order.
        args: Vec<AbsVal>,
    },
}

impl Event {
    /// The token index the event anchors to.
    pub fn at(&self) -> usize {
        match self {
            Event::UncheckedSub { at, .. }
            | Event::Overflow { at, .. }
            | Event::Cast { at, .. }
            | Event::Call { at, .. } => *at,
        }
    }
}

/// An evaluated expression: its value plus, when the expression was a
/// single identifier (possibly parenthesized), that name — used to tie
/// subtraction operands back to must-compared guard facts.
#[derive(Debug, Clone)]
pub struct Evaled {
    /// The abstract value.
    pub val: AbsVal,
    /// Simple source name, when the expression was one identifier.
    pub name: Option<String>,
}

impl Evaled {
    fn anon(val: AbsVal) -> Evaled {
        Evaled { val, name: None }
    }
}

/// Parses an integer literal's text (`42`, `0xff`, `1_000u64`) into its
/// value and suffix kind. Values past `i128::MAX` saturate to the +∞
/// sentinel (only reachable via u128 literals).
pub fn parse_int_literal(text: &str) -> Option<(i128, Option<IntKind>)> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    // Split a trailing type suffix: the earliest `u`/`i` followed only by
    // digits/`size` to the end. Hex digits collide with nothing: suffixes
    // never start mid-number because we scan from the first non-digit of
    // the radix.
    let (radix, digits) = match clean.as_bytes() {
        [b'0', b'x', ..] => (16, &clean[2..]),
        [b'0', b'o', ..] => (8, &clean[2..]),
        [b'0', b'b', ..] => (2, &clean[2..]),
        _ => (10, clean.as_str()),
    };
    let is_digit = |c: char| c.is_digit(radix);
    let split = digits.find(|c: char| !is_digit(c)).unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(split);
    let kind = IntKind::from_name(suffix);
    if !suffix.is_empty() && kind.is_none() {
        return None; // malformed suffix; not a literal we understand
    }
    let value = match u128::from_str_radix(num, radix) {
        Ok(v) => i128::try_from(v).unwrap_or(i128::MAX),
        Err(_) => return None,
    };
    Some((value, kind))
}

/// Parses a float literal's text (`1.0`, `1.`, `2e-3`, `1_000f64`).
pub fn parse_float_literal(text: &str) -> Option<f64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let clean = clean.strip_suffix("f64").or_else(|| clean.strip_suffix("f32")).unwrap_or(&clean);
    clean.parse::<f64>().ok()
}

/// Infix binding powers (higher binds tighter). `as` casts sit above all
/// of these and are handled in the postfix/cast layer.
fn precedence(tok: &Tok) -> Option<u8> {
    Some(match tok {
        Tok::Punct('*') | Tok::Punct('/') | Tok::Punct('%') => 10,
        Tok::Punct('+') | Tok::Punct('-') => 9,
        Tok::Op("<<") | Tok::Op(">>") => 8,
        Tok::Punct('&') => 7,
        Tok::Punct('^') => 6,
        Tok::Punct('|') => 5,
        Tok::Op("==") | Tok::Op("!=") | Tok::Op("<=") | Tok::Op(">=") => 4,
        Tok::Punct('<') | Tok::Punct('>') => 4,
        Tok::Op("&&") => 3,
        Tok::Op("||") => 2,
        Tok::Op("..") | Tok::Op("..=") => 1,
        _ => return None,
    })
}

/// The abstract evaluator. One instance is scoped to a single function
/// body; `skip` holds child-closure token ranges (closures are separate
/// call-graph nodes with their own analysis — evaluating them inline
/// would double-report their events).
pub struct Evaluator<'a> {
    toks: &'a [Token],
    consts: &'a BTreeMap<String, AbsVal>,
    skip: &'a [(usize, usize)],
    /// Resolves a call at name-token `at` with evaluated args.
    oracle: &'a mut dyn FnMut(usize, &str, &[AbsVal]) -> AbsVal,
    /// Events observed since construction, in evaluation order.
    pub events: Vec<Event>,
    pos: usize,
    end: usize,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over `toks` with const values and an oracle
    /// for workspace calls.
    pub fn new(
        toks: &'a [Token],
        consts: &'a BTreeMap<String, AbsVal>,
        skip: &'a [(usize, usize)],
        oracle: &'a mut dyn FnMut(usize, &str, &[AbsVal]) -> AbsVal,
    ) -> Evaluator<'a> {
        Evaluator { toks, consts, skip, oracle, events: Vec::new(), pos: 0, end: 0 }
    }

    /// Evaluates the token range `[lo, hi)` as one expression under
    /// `env`. Unparseable leftovers are ignored (the range then
    /// contributes ⊤).
    pub fn eval(&mut self, env: &Env, lo: usize, hi: usize) -> Evaled {
        self.pos = lo;
        self.end = hi.min(self.toks.len());
        if self.pos >= self.end {
            return Evaled::anon(AbsVal::Top);
        }
        self.expr(env, 0)
    }

    fn tok(&self, at: usize) -> Option<&'a Tok> {
        if at < self.end {
            self.toks.get(at).map(|t| &t.tok)
        } else {
            None
        }
    }

    fn peek(&self) -> Option<&'a Tok> {
        self.tok(self.pos)
    }

    /// Jumps over any child-closure range containing the cursor.
    fn skip_closure_range(&mut self) -> bool {
        if let Some(&(_, hi)) = self.skip.iter().find(|&&(lo, hi)| lo <= self.pos && self.pos < hi)
        {
            self.pos = hi.min(self.end);
            return true;
        }
        false
    }

    /// Skips one balanced `(…)` / `[…]` / `{…}` group with the opener at
    /// the cursor.
    fn skip_group(&mut self) {
        let mut depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct('(' | '[' | '{') => depth += 1,
                Tok::Punct(')' | ']' | '}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips a `<…>` generic-argument group with the `<` at the cursor.
    fn skip_angles(&mut self) {
        let mut depth = 0isize;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                Tok::Op("<<") => depth += 2,
                Tok::Op(">>") => depth -= 2,
                _ => {}
            }
            self.pos += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    /// Precedence-climbing expression parse.
    fn expr(&mut self, env: &Env, min_prec: u8) -> Evaled {
        let mut lhs = self.cast_level(env);
        while let Some(tok) = self.peek() {
            let Some(prec) = precedence(tok) else { break };
            if prec < min_prec {
                break;
            }
            let op_at = self.pos;
            self.pos += 1;
            // Range ends are optional (`..`, `a..`, `..b`): an absent or
            // unparseable right side is fine, ranges are ⊤ anyway.
            let rhs = self.expr(env, prec + 1);
            lhs = self.apply_bin(op_at, lhs, rhs);
        }
        lhs
    }

    /// The `as`-cast level: a unary operand followed by zero or more
    /// `as Type` casts.
    fn cast_level(&mut self, env: &Env) -> Evaled {
        let mut out = self.unary(env);
        while matches!(self.peek(), Some(t) if t.is_ident("as")) {
            let as_at = self.pos;
            self.pos += 1;
            out = self.apply_cast(as_at, out);
        }
        out
    }

    /// Consumes the type tokens after `as` and applies the cast transfer.
    fn apply_cast(&mut self, as_at: usize, operand: Evaled) -> Evaled {
        // Type grammar (tolerant): pointer/ref sigils, then a path whose
        // last ident names the type; generics skipped.
        let mut last_ident: Option<&str> = None;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct('*' | '&') => self.pos += 1,
                Tok::Ident(s) if matches!(s.as_str(), "const" | "mut" | "dyn") => self.pos += 1,
                Tok::Ident(s) => {
                    last_ident = Some(s.as_str());
                    self.pos += 1;
                    if matches!(self.peek(), Some(t) if t.is_op("::")) {
                        self.pos += 1;
                        continue;
                    }
                    if matches!(self.peek(), Some(t) if t.is_punct('<')) {
                        self.skip_angles();
                    }
                    break;
                }
                _ => break,
            }
        }
        let Some(type_name) = last_ident else { return Evaled::anon(AbsVal::Top) };
        if let Some(kind) = IntKind::from_name(type_name) {
            return Evaled::anon(self.cast_to_int(as_at, &operand.val, kind));
        }
        if matches!(type_name, "f64" | "f32") {
            return Evaled::anon(match operand.val {
                AbsVal::Int { iv, .. } => AbsVal::Float(FloatFacts {
                    finite: true,
                    non_negative: iv.lo >= 0,
                    le_one: iv.hi <= 1,
                    non_zero: !iv.contains(0),
                    int_valued: true,
                }),
                AbsVal::Float(facts) => AbsVal::Float(facts),
                _ => AbsVal::float_top(),
            });
        }
        Evaled::anon(AbsVal::Top)
    }

    /// Int-target cast transfer + event.
    fn cast_to_int(&mut self, as_at: usize, from: &AbsVal, to: IntKind) -> AbsVal {
        let range = to.range();
        match from {
            AbsVal::Int { iv, .. } => {
                let proven = iv.within(&range);
                self.events.push(Event::Cast {
                    at: as_at,
                    from: *from,
                    to,
                    proven,
                    from_float: false,
                });
                let iv = if proven { *iv } else { range };
                AbsVal::Int { iv, kind: Some(to) }
            }
            AbsVal::Float(facts) => {
                // `as` float→int saturates since Rust 1.45, so the result
                // is always in range; losslessness needs finiteness and,
                // for unsigned targets, non-negativity.
                let proven = facts.finite && (!to.is_unsigned() || facts.non_negative);
                self.events.push(Event::Cast {
                    at: as_at,
                    from: *from,
                    to,
                    proven,
                    from_float: true,
                });
                let lo = if facts.non_negative { 0.max(range.lo) } else { range.lo };
                let hi =
                    if facts.le_one && facts.non_negative { 1.min(range.hi) } else { range.hi };
                AbsVal::Int { iv: Interval::new(lo, hi), kind: Some(to) }
            }
            // Bool/char/enum casts are always in range; unknown sources
            // stay unknown-but-typed without an event (we cannot tell a
            // numeric narrowing from a `b as usize`).
            _ => AbsVal::int_of_kind(to),
        }
    }

    /// Prefix operators, then a postfix chain.
    fn unary(&mut self, env: &Env) -> Evaled {
        match self.peek() {
            Some(Tok::Punct('-')) => {
                self.pos += 1;
                let operand = self.unary(env);
                Evaled::anon(match operand.val {
                    AbsVal::Int { iv, kind } => {
                        let raw = iv.neg();
                        let fence = kind.map(IntKind::range).unwrap_or(Interval::TOP);
                        AbsVal::Int { iv: raw.meet(&fence).unwrap_or(fence), kind }
                    }
                    AbsVal::Float(f) => AbsVal::Float(FloatFacts {
                        finite: f.finite,
                        non_negative: false,
                        le_one: f.non_negative,
                        non_zero: f.non_zero,
                        int_valued: f.int_valued,
                    }),
                    _ => AbsVal::Top,
                })
            }
            Some(Tok::Punct('!')) => {
                self.pos += 1;
                let operand = self.unary(env);
                Evaled::anon(match operand.val {
                    AbsVal::Bool => AbsVal::Bool,
                    AbsVal::Int { kind, .. } => {
                        AbsVal::Int { iv: kind.map_or(Interval::TOP, IntKind::range), kind }
                    }
                    _ => AbsVal::Top,
                })
            }
            // References and derefs are value-transparent here.
            Some(Tok::Punct('*' | '&')) | Some(Tok::Op("&&")) => {
                self.pos += 1;
                if matches!(self.peek(), Some(t) if t.is_ident("mut")) {
                    self.pos += 1;
                }
                self.unary(env)
            }
            _ => self.postfix(env),
        }
    }

    /// A primary followed by method calls, fields, indexing, `?`, and
    /// struct-literal tails.
    fn postfix(&mut self, env: &Env) -> Evaled {
        let mut out = self.primary(env);
        loop {
            match self.peek() {
                Some(Tok::Punct('.')) => {
                    self.pos += 1;
                    match self.peek() {
                        Some(Tok::Ident(name)) if matches!(self.tok(self.pos + 1), Some(t) if t.is_punct('(')) =>
                        {
                            let name = name.clone();
                            let name_at = self.pos;
                            self.pos += 1;
                            let args = self.parse_args(env);
                            self.events.push(Event::Call { at: name_at, args: args.clone() });
                            let val = self
                                .builtin_method(&name, &out.val, &args)
                                .unwrap_or_else(|| (self.oracle)(name_at, &name, &args));
                            out = Evaled::anon(val);
                        }
                        Some(Tok::Ident(_)) | Some(Tok::Int(_)) | Some(Tok::Float(_)) => {
                            // Field access / tuple index / `x.0.1` / `.await`.
                            self.pos += 1;
                            out = Evaled::anon(AbsVal::Top);
                        }
                        _ => return out,
                    }
                }
                Some(Tok::Punct('[')) => {
                    // Evaluate the index expression for its events (an
                    // `xs[i - 1]` underflow is still an underflow), then
                    // resync at the matching bracket.
                    let open = self.pos;
                    self.pos += 1;
                    self.expr(env, 0);
                    self.pos = open;
                    self.skip_group();
                    out = Evaled::anon(AbsVal::Top);
                }
                Some(Tok::Punct('?')) => {
                    self.pos += 1;
                    out = Evaled::anon(AbsVal::Top);
                }
                Some(Tok::Punct('{')) => {
                    // `Name { … }` struct literal after an uppercase path;
                    // any other `{` belongs to an enclosing construct.
                    let looks_like_struct = out
                        .name
                        .as_deref()
                        .is_some_and(|n| n.chars().next().is_some_and(char::is_uppercase));
                    if !looks_like_struct {
                        return out;
                    }
                    self.skip_group();
                    out = Evaled::anon(AbsVal::Top);
                }
                Some(Tok::Punct('(')) => {
                    // Calling a non-path value (closure variable, fn
                    // pointer): evaluate args for events, result unknown.
                    let args = self.parse_args(env);
                    let _ = args;
                    out = Evaled::anon(AbsVal::Top);
                }
                _ => return out,
            }
        }
    }

    /// Argument list with the cursor at `(`. Tolerant: each argument is
    /// evaluated, then the cursor resyncs to the next top-level `,`/`)`.
    fn parse_args(&mut self, env: &Env) -> Vec<AbsVal> {
        let mut args = Vec::new();
        if !matches!(self.peek(), Some(t) if t.is_punct('(')) {
            return args;
        }
        self.pos += 1;
        loop {
            if self.skip_closure_range() {
                args.push(AbsVal::Top);
                // The closure may be trailed by `)` or `,`; fall through
                // to the resync below.
            } else {
                match self.peek() {
                    None => return args,
                    Some(Tok::Punct(')')) => {
                        self.pos += 1;
                        return args;
                    }
                    _ => args.push(self.expr(env, 0).val),
                }
            }
            // Resync: skip whatever the expression parse did not consume.
            let mut depth = 0usize;
            loop {
                if self.skip_closure_range() {
                    continue;
                }
                match self.peek() {
                    None => return args,
                    Some(Tok::Punct('(' | '[' | '{')) => depth += 1,
                    Some(Tok::Punct(')' | ']' | '}')) => {
                        if depth == 0 {
                            self.pos += 1;
                            return args;
                        }
                        depth -= 1;
                    }
                    Some(Tok::Punct(',')) if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    Some(_) => {}
                }
                self.pos += 1;
            }
        }
    }

    /// Atoms: literals, paths, calls, parens, opaque constructs.
    fn primary(&mut self, env: &Env) -> Evaled {
        if self.skip_closure_range() {
            return Evaled::anon(AbsVal::Top);
        }
        let Some(tok) = self.peek() else { return Evaled::anon(AbsVal::Top) };
        match tok {
            Tok::Int(text) => {
                let text = text.clone();
                self.pos += 1;
                match parse_int_literal(&text) {
                    Some((v, kind)) => Evaled::anon(AbsVal::Int { iv: Interval::exact(v), kind }),
                    None => Evaled::anon(AbsVal::int_top()),
                }
            }
            Tok::Float(text) => {
                let text = text.clone();
                self.pos += 1;
                match parse_float_literal(&text) {
                    Some(v) => Evaled::anon(AbsVal::Float(FloatFacts::of_value(v))),
                    None => Evaled::anon(AbsVal::float_top()),
                }
            }
            Tok::Str(_) | Tok::Char | Tok::Lifetime(_) => {
                self.pos += 1;
                Evaled::anon(AbsVal::Top)
            }
            Tok::Punct('(') => {
                self.pos += 1;
                let inner = self.expr(env, 0);
                match self.peek() {
                    Some(Tok::Punct(')')) => {
                        self.pos += 1;
                        inner // parens preserve the value *and* the name
                    }
                    _ => {
                        // Tuple or unparsed remainder: resync at `)`.
                        let mut depth = 0usize;
                        while let Some(tok) = self.peek() {
                            match tok {
                                Tok::Punct('(' | '[' | '{') => depth += 1,
                                Tok::Punct(')' | ']' | '}') => {
                                    if depth == 0 {
                                        self.pos += 1;
                                        break;
                                    }
                                    depth -= 1;
                                }
                                _ => {}
                            }
                            self.pos += 1;
                        }
                        Evaled::anon(AbsVal::Top)
                    }
                }
            }
            Tok::Punct('[') => {
                self.skip_group();
                Evaled::anon(AbsVal::Top)
            }
            Tok::Punct('|') | Tok::Op("||") => {
                // A closure not registered as a child range (macro-body
                // closures): skip its parameter list, give up on the rest.
                self.pos += 1;
                while let Some(tok) = self.peek() {
                    let done = tok.is_punct('|');
                    self.pos += 1;
                    if done {
                        break;
                    }
                }
                Evaled::anon(AbsVal::Top)
            }
            Tok::Ident(name) => {
                let name = name.clone();
                match name.as_str() {
                    "true" | "false" => {
                        self.pos += 1;
                        Evaled::anon(AbsVal::Bool)
                    }
                    "if" | "match" | "loop" | "while" | "unsafe" | "for" => {
                        self.opaque_construct();
                        Evaled::anon(AbsVal::Top)
                    }
                    "move" => {
                        self.pos += 1;
                        self.primary(env)
                    }
                    "return" | "break" | "continue" => {
                        self.pos += 1;
                        Evaled::anon(AbsVal::Top)
                    }
                    _ if is_keyword(&name) && name != "self" && name != "Self" => {
                        self.pos += 1;
                        Evaled::anon(AbsVal::Top)
                    }
                    _ => self.path_or_call(env),
                }
            }
            _ => {
                self.pos += 1;
                Evaled::anon(AbsVal::Top)
            }
        }
    }

    /// Skips an `if`/`match`/`loop`/`while`/`for`/`unsafe` *expression*:
    /// consumes up to and including its brace block(s), `else` chains
    /// included. Values from such constructs are ⊤ (their inner
    /// statements are analyzed when they appear in statement position —
    /// the flow parser splits them there; here they are mid-expression).
    fn opaque_construct(&mut self) {
        self.pos += 1; // the keyword
        loop {
            // Head tokens to the opening brace.
            let mut depth = 0usize;
            while let Some(tok) = self.peek() {
                match tok {
                    Tok::Punct('(' | '[') => depth += 1,
                    Tok::Punct(')' | ']') => {
                        if depth == 0 {
                            return; // enclosing closer: malformed, bail
                        }
                        depth -= 1;
                    }
                    Tok::Punct('{') if depth == 0 => break,
                    Tok::Punct(';') if depth == 0 => return,
                    _ => {}
                }
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(t) if t.is_punct('{')) {
                return;
            }
            self.skip_group();
            if matches!(self.peek(), Some(t) if t.is_ident("else")) {
                self.pos += 1;
                if matches!(self.peek(), Some(t) if t.is_ident("if")) {
                    self.pos += 1;
                    continue;
                }
                if matches!(self.peek(), Some(t) if t.is_punct('{')) {
                    self.skip_group();
                }
            }
            return;
        }
    }

    /// Path expressions: `ident`, `a::b::c`, `Type::CONST`, and calls.
    fn path_or_call(&mut self, env: &Env) -> Evaled {
        let mut segments: Vec<String> = Vec::new();
        let mut last_at = self.pos;
        while let Some(Tok::Ident(seg)) = self.peek() {
            segments.push(seg.clone());
            last_at = self.pos;
            self.pos += 1;
            match self.peek() {
                Some(t) if t.is_op("::") => {
                    self.pos += 1;
                    if matches!(self.peek(), Some(t) if t.is_punct('<')) {
                        self.skip_angles(); // turbofish
                        if matches!(self.peek(), Some(t) if t.is_op("::")) {
                            self.pos += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(name) = segments.last().cloned() else { return Evaled::anon(AbsVal::Top) };

        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if matches!(self.peek(), Some(t) if t.is_punct('!')) {
            self.pos += 1;
            if matches!(self.peek(), Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
            {
                self.skip_group();
            }
            return Evaled::anon(AbsVal::Top);
        }

        // Call: arguments, then conversion builtins or the oracle.
        if matches!(self.peek(), Some(t) if t.is_punct('(')) {
            let args = self.parse_args(env);
            self.events.push(Event::Call { at: last_at, args: args.clone() });
            if segments.len() == 2 && name == "from" {
                if let Some(kind) = IntKind::from_name(&segments[0]) {
                    // `u64::from(x)`: a `From` int conversion only widens.
                    let val = match args.first() {
                        Some(AbsVal::Int { iv, .. }) => AbsVal::Int {
                            iv: iv.meet(&kind.range()).unwrap_or(kind.range()),
                            kind: Some(kind),
                        },
                        _ => AbsVal::int_of_kind(kind),
                    };
                    return Evaled::anon(val);
                }
                if matches!(segments[0].as_str(), "f64" | "f32") {
                    let val = match args.first() {
                        Some(AbsVal::Int { iv, .. }) => AbsVal::Float(FloatFacts {
                            finite: true,
                            non_negative: iv.lo >= 0,
                            le_one: iv.hi <= 1,
                            non_zero: !iv.contains(0),
                            int_valued: true,
                        }),
                        Some(AbsVal::Float(f)) => AbsVal::Float(*f),
                        _ => AbsVal::float_top(),
                    };
                    return Evaled::anon(val);
                }
            }
            let val = (self.oracle)(last_at, &name, &args);
            return Evaled::anon(val);
        }

        // Plain path value.
        if segments.len() == 1 {
            let val =
                env.get(&name).or_else(|| self.consts.get(&name)).copied().unwrap_or(AbsVal::Top);
            return Evaled { val, name: Some(name) };
        }
        let n_segs = segments.len();
        if n_segs >= 2 {
            let type_seg = &segments[n_segs - 2];
            if let Some(kind) = IntKind::from_name(type_seg) {
                let range = kind.range();
                match name.as_str() {
                    "MAX" => {
                        return Evaled {
                            val: AbsVal::Int { iv: Interval::exact(range.hi), kind: Some(kind) },
                            name: Some(name),
                        };
                    }
                    "MIN" => {
                        return Evaled {
                            val: AbsVal::Int { iv: Interval::exact(range.lo), kind: Some(kind) },
                            name: Some(name),
                        };
                    }
                    _ => {}
                }
            }
            if matches!(type_seg.as_str(), "f64" | "f32") {
                let value = match name.as_str() {
                    "INFINITY" => Some(f64::INFINITY),
                    "NEG_INFINITY" => Some(f64::NEG_INFINITY),
                    "NAN" => Some(f64::NAN),
                    "MAX" => Some(f64::MAX),
                    "MIN" => Some(f64::MIN),
                    "MIN_POSITIVE" => Some(f64::MIN_POSITIVE),
                    "EPSILON" => Some(f64::EPSILON),
                    _ => None,
                };
                if let Some(v) = value {
                    return Evaled {
                        val: AbsVal::Float(FloatFacts::of_value(v)),
                        name: Some(name),
                    };
                }
            }
        }
        // Qualified const (`config::LIMIT`): the const map is keyed by
        // simple name (collisions join), so the last segment suffices.
        let val = self.consts.get(&name).copied().unwrap_or(AbsVal::Top);
        Evaled { val, name: Some(name) }
    }

    /// Standard-library method transfer functions. `None` falls through
    /// to the oracle (workspace method summaries).
    fn builtin_method(&mut self, name: &str, recv: &AbsVal, args: &[AbsVal]) -> Option<AbsVal> {
        let arg = |i: usize| args.get(i).copied().unwrap_or(AbsVal::Top);
        Some(match (name, recv) {
            ("max", AbsVal::Int { iv, kind }) => match arg(0) {
                AbsVal::Int { iv: b, .. } => AbsVal::Int { iv: iv.int_max(&b), kind: *kind },
                _ => AbsVal::Int {
                    iv: Interval::new(iv.lo, kind.map_or(Interval::TOP, IntKind::range).hi),
                    kind: *kind,
                },
            },
            ("min", AbsVal::Int { iv, kind }) => match arg(0) {
                AbsVal::Int { iv: b, .. } => AbsVal::Int { iv: iv.int_min(&b), kind: *kind },
                _ => AbsVal::Int {
                    iv: Interval::new(kind.map_or(Interval::TOP, IntKind::range).lo, iv.hi),
                    kind: *kind,
                },
            },
            ("max", AbsVal::Float(f)) => {
                let b = match arg(0) {
                    AbsVal::Float(b) => b,
                    _ => FloatFacts::TOP,
                };
                // f64::max ignores a NaN operand, so the other side's
                // lower-bound facts win; upper-bound facts need both.
                AbsVal::Float(FloatFacts {
                    finite: f.finite && b.finite,
                    non_negative: f.non_negative || b.non_negative,
                    le_one: f.le_one && b.le_one,
                    non_zero: f.non_zero && b.non_zero,
                    int_valued: f.int_valued && b.int_valued,
                })
            }
            ("min", AbsVal::Float(f)) => {
                let b = match arg(0) {
                    AbsVal::Float(b) => b,
                    _ => FloatFacts::TOP,
                };
                AbsVal::Float(FloatFacts {
                    finite: f.finite && b.finite,
                    non_negative: f.non_negative && b.non_negative,
                    le_one: f.le_one || b.le_one,
                    non_zero: f.non_zero && b.non_zero,
                    int_valued: f.int_valued && b.int_valued,
                })
            }
            ("clamp", AbsVal::Int { kind, .. }) => {
                let (lo, hi) = match (arg(0), arg(1)) {
                    (AbsVal::Int { iv: a, .. }, AbsVal::Int { iv: b, .. }) => (a.lo, b.hi),
                    _ => {
                        return Some(AbsVal::Int {
                            iv: kind.map_or(Interval::TOP, IntKind::range),
                            kind: *kind,
                        })
                    }
                };
                if lo <= hi {
                    AbsVal::Int { iv: Interval::new(lo, hi), kind: *kind }
                } else {
                    AbsVal::Int { iv: kind.map_or(Interval::TOP, IntKind::range), kind: *kind }
                }
            }
            ("clamp", AbsVal::Float(f)) => {
                // NaN passes through f64::clamp, so `finite` survives only
                // from the receiver; the bound facts come from the bounds.
                let (lo, hi) = match (arg(0), arg(1)) {
                    (AbsVal::Float(a), AbsVal::Float(b)) => (a, b),
                    _ => return Some(AbsVal::float_top()),
                };
                AbsVal::Float(FloatFacts {
                    finite: f.finite && lo.finite && hi.finite,
                    non_negative: lo.non_negative,
                    le_one: hi.le_one,
                    non_zero: f.non_zero && lo.non_negative && lo.non_zero,
                    int_valued: false,
                })
            }
            ("abs", AbsVal::Int { iv, kind }) => AbsVal::Int { iv: iv.abs(), kind: *kind },
            ("abs", AbsVal::Float(f)) => AbsVal::Float(FloatFacts {
                finite: f.finite,
                non_negative: true,
                le_one: f.le_one && f.non_negative,
                non_zero: f.non_zero,
                int_valued: f.int_valued,
            }),
            ("floor" | "ceil" | "round" | "trunc", AbsVal::Float(f)) => AbsVal::Float(FloatFacts {
                finite: f.finite,
                non_negative: f.non_negative,
                le_one: f.le_one,
                non_zero: false,
                int_valued: true,
            }),
            ("sqrt", AbsVal::Float(f)) => AbsVal::Float(FloatFacts {
                finite: f.finite && f.non_negative,
                non_negative: true,
                le_one: f.le_one && f.non_negative,
                non_zero: false,
                int_valued: false,
            }),
            ("exp", AbsVal::Float(f)) => AbsVal::Float(FloatFacts {
                finite: false,
                non_negative: true,
                le_one: false,
                non_zero: f.finite,
                int_valued: false,
            }),
            ("len" | "count", _) => AbsVal::Int {
                // Slice/collection lengths are bounded by isize::MAX.
                iv: Interval::new(0, i64::MAX as i128),
                kind: Some(IntKind::Usize),
            },
            ("signum", AbsVal::Int { kind, .. }) => {
                AbsVal::Int { iv: Interval::new(-1, 1), kind: *kind }
            }
            ("saturating_sub", AbsVal::Int { iv, kind }) => {
                self.saturating(iv.sub(&arg(0).interval().unwrap_or(Interval::TOP)), *kind)
            }
            ("saturating_add", AbsVal::Int { iv, kind }) => {
                self.saturating(iv.add(&arg(0).interval().unwrap_or(Interval::TOP)), *kind)
            }
            ("saturating_mul", AbsVal::Int { iv, kind }) => {
                self.saturating(iv.mul(&arg(0).interval().unwrap_or(Interval::TOP)), *kind)
            }
            (
                "wrapping_add" | "wrapping_sub" | "wrapping_mul" | "pow",
                AbsVal::Int { kind, .. },
            ) => AbsVal::Int { iv: kind.map_or(Interval::TOP, IntKind::range), kind: *kind },
            ("div_ceil", AbsVal::Int { iv, kind }) => {
                let raw =
                    iv.div(&arg(0).interval().unwrap_or(Interval::TOP)).add(&Interval::new(0, 1));
                self.saturating(raw, *kind)
            }
            ("rem_euclid", AbsVal::Int { iv, kind }) => {
                let d = arg(0).interval().unwrap_or(Interval::TOP);
                if d.lo > 0 && d.is_bounded() {
                    AbsVal::Int { iv: Interval::new(0, d.hi - 1), kind: *kind }
                } else {
                    let _ = iv;
                    AbsVal::Int { iv: kind.map_or(Interval::TOP, IntKind::range), kind: *kind }
                }
            }
            ("clone" | "to_owned" | "copied" | "cloned", _) => *recv,
            (n, _) if n.starts_with("is_") => AbsVal::Bool,
            ("contains" | "starts_with" | "ends_with" | "eq" | "ne" | "any" | "all", _) => {
                AbsVal::Bool
            }
            _ => return None,
        })
    }

    /// Clamps a raw interval into a kind's range (saturating-op results).
    fn saturating(&self, raw: Interval, kind: Option<IntKind>) -> AbsVal {
        match kind {
            Some(k) => {
                let r = k.range();
                AbsVal::Int {
                    iv: Interval::new(raw.lo.clamp(r.lo, r.hi), raw.hi.clamp(r.lo, r.hi)),
                    kind,
                }
            }
            None => AbsVal::Int { iv: Interval::TOP, kind: None },
        }
    }

    /// Binary operator transfer + events.
    fn apply_bin(&mut self, op_at: usize, lhs: Evaled, rhs: Evaled) -> Evaled {
        let op = &self.toks[op_at].tok;
        // Comparisons and lazy booleans.
        if matches!(op, Tok::Op("==" | "!=" | "<=" | ">=" | "&&" | "||") | Tok::Punct('<' | '>')) {
            return Evaled::anon(AbsVal::Bool);
        }
        if matches!(op, Tok::Op(".." | "..=")) {
            return Evaled::anon(AbsVal::Top);
        }

        // Arithmetic. Promote ⊤ against a typed integer operand: both
        // sides of a Rust arithmetic op share one type, so an unknown
        // operand still has the known side's type (full range).
        let (a, b) = (lhs.val, rhs.val);
        let (a, b) = match (a, b) {
            (AbsVal::Int { iv, kind: Some(k) }, AbsVal::Top) => {
                (AbsVal::Int { iv, kind: Some(k) }, AbsVal::int_of_kind(k))
            }
            (AbsVal::Top, AbsVal::Int { iv, kind: Some(k) }) => {
                (AbsVal::int_of_kind(k), AbsVal::Int { iv, kind: Some(k) })
            }
            (AbsVal::Float(f), AbsVal::Top) => (AbsVal::Float(f), AbsVal::float_top()),
            (AbsVal::Top, AbsVal::Float(f)) => (AbsVal::float_top(), AbsVal::Float(f)),
            other => other,
        };
        match (a, b) {
            (AbsVal::Int { iv: ia, kind: ka }, AbsVal::Int { iv: ib, kind: kb }) => {
                let kind = ka.or(kb);
                Evaled::anon(self.int_bin(op_at, kind, ia, ib, &lhs.name, &rhs.name))
            }
            (AbsVal::Float(fa), AbsVal::Float(fb)) => {
                Evaled::anon(AbsVal::Float(self.float_bin(op_at, fa, fb)))
            }
            _ => Evaled::anon(AbsVal::Top),
        }
    }

    /// Integer arithmetic transfer with wrap semantics and events.
    fn int_bin(
        &mut self,
        op_at: usize,
        kind: Option<IntKind>,
        a: Interval,
        b: Interval,
        a_name: &Option<String>,
        b_name: &Option<String>,
    ) -> AbsVal {
        let op = &self.toks[op_at].tok;
        let fence = kind.map(IntKind::range);
        let raw = match op {
            Tok::Punct('+') => a.add(&b),
            Tok::Punct('-') => a.sub(&b),
            Tok::Punct('*') => a.mul(&b),
            Tok::Punct('/') => a.div(&b),
            Tok::Punct('%') => a.rem(&b),
            Tok::Op("<<") => a.shl(&b),
            Tok::Op(">>") => a.shr(&b),
            Tok::Punct('&') => a.bitand(&b),
            Tok::Punct('^') | Tok::Punct('|') => a.bitor_xor(&b),
            _ => Interval::TOP,
        };
        let Some(fence) = fence else {
            return AbsVal::Int { iv: raw, kind: None };
        };
        let kind = kind.expect("fence implies kind");
        if matches!(op, Tok::Punct('-')) && kind.is_unsigned() {
            self.events.push(Event::UncheckedSub {
                at: op_at,
                lhs: AbsVal::Int { iv: a, kind: Some(kind) },
                rhs: AbsVal::Int { iv: b, kind: Some(kind) },
                lhs_name: a_name.clone(),
                rhs_name: b_name.clone(),
            });
        }
        if raw.within(&fence) {
            AbsVal::Int { iv: raw, kind: Some(kind) }
        } else {
            if matches!(op, Tok::Punct('+' | '*')) {
                self.events.push(Event::Overflow {
                    at: op_at,
                    op: if matches!(op, Tok::Punct('+')) { '+' } else { '*' },
                    kind,
                    lhs: a,
                    rhs: b,
                    result: raw,
                });
            }
            // Wrapping lands the result somewhere in the type's range.
            AbsVal::Int { iv: fence, kind: Some(kind) }
        }
    }

    /// Float arithmetic fact transfer (sound under NaN/±∞ per the fact
    /// definitions in [`FloatFacts`]).
    fn float_bin(&mut self, op_at: usize, a: FloatFacts, b: FloatFacts) -> FloatFacts {
        let unit = |f: FloatFacts| f.in_unit_range();
        match &self.toks[op_at].tok {
            Tok::Punct('+') => FloatFacts {
                // Two [0,1] values sum within [0,2]: finite, but not ≤1.
                finite: unit(a) && unit(b),
                non_negative: a.non_negative && b.non_negative,
                le_one: false,
                non_zero: false,
                int_valued: a.int_valued && b.int_valued,
            },
            Tok::Punct('-') => FloatFacts {
                finite: unit(a) && unit(b),
                non_negative: false,
                le_one: a.le_one && b.non_negative,
                non_zero: false,
                int_valued: a.int_valued && b.int_valued,
            },
            Tok::Punct('*') => FloatFacts {
                // |x·y| ≤ |y| when x ∈ [0,1] (and vice versa).
                finite: (unit(a) && b.finite) || (unit(b) && a.finite),
                non_negative: a.non_negative && b.non_negative,
                le_one: unit(a) && unit(b),
                non_zero: false, // underflow can hit zero
                int_valued: a.int_valued && b.int_valued,
            },
            Tok::Punct('/') => FloatFacts {
                finite: false, // divisor may be subnormal → ±∞
                non_negative: a.non_negative && b.non_negative,
                le_one: false,
                non_zero: false,
                int_valued: false,
            },
            Tok::Punct('%') => FloatFacts {
                finite: false,
                non_negative: a.non_negative,
                le_one: false,
                non_zero: false,
                int_valued: a.int_valued && b.int_valued,
            },
            _ => FloatFacts::TOP,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn eval_str(src: &str, env: &[(&str, AbsVal)]) -> (AbsVal, Vec<Event>) {
        let lexed = lex(src);
        let consts = BTreeMap::new();
        let mut oracle = |_: usize, _: &str, _: &[AbsVal]| AbsVal::Top;
        let mut ev = Evaluator::new(&lexed.tokens, &consts, &[], &mut oracle);
        let env: Env = env.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect();
        let out = ev.eval(&env, 0, lexed.tokens.len());
        (out.val, ev.events)
    }

    fn iv(lo: i128, hi: i128) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn literals_and_precedence() {
        let (v, _) = eval_str("1 + 2 * 3", &[]);
        assert_eq!(v, AbsVal::Int { iv: iv(7, 7), kind: None });
        let (v, _) = eval_str("(1 + 2) * 3", &[]);
        assert_eq!(v, AbsVal::Int { iv: iv(9, 9), kind: None });
        let (v, _) = eval_str("1u64 << 32", &[]);
        assert_eq!(v, AbsVal::Int { iv: iv(1 << 32, 1 << 32), kind: Some(IntKind::U64) });
        let (v, _) = eval_str("0xff & 0x0f", &[]);
        assert_eq!(v, AbsVal::Int { iv: iv(0, 15), kind: None });
    }

    #[test]
    fn env_lookup_and_typed_promotion() {
        let x = AbsVal::Int { iv: iv(0, 10), kind: Some(IntKind::U64) };
        let (v, _) = eval_str("x + 1", &[("x", x)]);
        assert_eq!(v, AbsVal::Int { iv: iv(1, 11), kind: Some(IntKind::U64) });
        // Unknown operand against a typed one: full type range, wraps.
        let (v, events) = eval_str("x + y", &[("x", x)]);
        assert_eq!(v, AbsVal::Int { iv: IntKind::U64.range(), kind: Some(IntKind::U64) });
        assert!(
            events.iter().any(|e| matches!(e, Event::Overflow { op: '+', .. })),
            "u64 + unknown u64 may overflow: {events:?}"
        );
    }

    #[test]
    fn unsigned_sub_emits_event_with_names() {
        let x = AbsVal::Int { iv: iv(0, 100), kind: Some(IntKind::U32) };
        let y = AbsVal::Int { iv: iv(0, 50), kind: Some(IntKind::U32) };
        let (_, events) = eval_str("x - y", &[("x", x), ("y", y)]);
        let [Event::UncheckedSub { lhs_name, rhs_name, .. }] = &events[..] else {
            panic!("one sub event, got {events:?}");
        };
        assert_eq!(lhs_name.as_deref(), Some("x"));
        assert_eq!(rhs_name.as_deref(), Some("y"));
        // Provable case still emits (the rule filters on provability).
        let a = AbsVal::Int { iv: iv(50, 100), kind: Some(IntKind::U32) };
        let (v, events) = eval_str("a - b", &[("a", a), ("b", y)]);
        assert!(matches!(&events[..], [Event::UncheckedSub { .. }]));
        assert_eq!(v, AbsVal::Int { iv: iv(0, 100), kind: Some(IntKind::U32) });
    }

    #[test]
    fn casts_prove_with_intervals_and_facts() {
        let small = AbsVal::Int { iv: iv(0, 255), kind: Some(IntKind::U64) };
        let (v, events) = eval_str("x as u8", &[("x", small)]);
        assert!(matches!(&events[..], [Event::Cast { proven: true, from_float: false, .. }]));
        assert_eq!(v, AbsVal::Int { iv: iv(0, 255), kind: Some(IntKind::U8) });

        let big = AbsVal::Int { iv: iv(0, 65536), kind: Some(IntKind::U64) };
        let (_, events) = eval_str("x as u16", &[("x", big)]);
        assert!(matches!(&events[..], [Event::Cast { proven: false, .. }]));

        // Shift+mask proofs: `(h >> 32) as u32` is lossless.
        let h = AbsVal::int_of_kind(IntKind::U64);
        let (_, events) = eval_str("(h >> 32) as u32", &[("h", h)]);
        assert!(matches!(&events[..], [Event::Cast { proven: true, .. }]));

        // Float→int: unproven without facts, proven with them.
        let (_, events) = eval_str("f as u64", &[("f", AbsVal::float_top())]);
        assert!(matches!(&events[..], [Event::Cast { proven: false, from_float: true, .. }]));
        let good =
            AbsVal::Float(FloatFacts { finite: true, non_negative: true, ..FloatFacts::TOP });
        let (v, events) = eval_str("f as u64", &[("f", good)]);
        assert!(matches!(&events[..], [Event::Cast { proven: true, from_float: true, .. }]));
        assert_eq!(v, AbsVal::Int { iv: IntKind::U64.range(), kind: Some(IntKind::U64) });
    }

    #[test]
    fn method_transfer_max_clamp_len() {
        let f = AbsVal::float_top();
        let (v, _) = eval_str("x.max(0.0)", &[("x", f)]);
        let AbsVal::Float(facts) = v else { panic!("{v:?}") };
        assert!(facts.non_negative && !facts.finite, "max(0.0) proves >=0 only");

        let (v, _) = eval_str("x.clamp(0.0, 1.0)", &[("x", f)]);
        let AbsVal::Float(facts) = v else { panic!("{v:?}") };
        assert!(facts.non_negative && facts.le_one, "clamp proves the bounds");
        assert!(!facts.finite, "NaN passes through clamp");

        let (v, _) = eval_str("xs.len()", &[]);
        assert_eq!(v, AbsVal::Int { iv: iv(0, i64::MAX as i128), kind: Some(IntKind::Usize) });

        let x = AbsVal::int_of_kind(IntKind::U64);
        let (v, _) = eval_str("x.min(16)", &[("x", x)]);
        assert_eq!(v, AbsVal::Int { iv: iv(0, 16), kind: Some(IntKind::U64) });

        let (v, _) = eval_str("x.saturating_sub(1)", &[("x", x)]);
        // Even on a full-range operand the transfer is exact: the
        // maximum u64 minus one cannot reach u64::MAX again.
        assert_eq!(v, AbsVal::Int { iv: iv(0, (u64::MAX - 1) as i128), kind: Some(IntKind::U64) });
        let small = AbsVal::Int { iv: iv(0, 10), kind: Some(IntKind::U64) };
        let (v, events) = eval_str("x.saturating_sub(1)", &[("x", small)]);
        assert_eq!(v, AbsVal::Int { iv: iv(0, 9), kind: Some(IntKind::U64) });
        assert!(
            !events.iter().any(|e| matches!(e, Event::UncheckedSub { .. })),
            "saturating_sub is not an unchecked subtraction"
        );
    }

    #[test]
    fn type_consts_and_conversions() {
        let (v, _) = eval_str("u32::MAX", &[]);
        assert_eq!(
            v,
            AbsVal::Int { iv: iv(u32::MAX as i128, u32::MAX as i128), kind: Some(IntKind::U32) }
        );
        let (v, _) = eval_str("f64::NAN", &[]);
        let AbsVal::Float(facts) = v else { panic!() };
        assert!(!facts.finite && facts.non_negative, "NaN is not negative");
        let n = AbsVal::Int { iv: iv(1, 5), kind: Some(IntKind::U32) };
        let (v, _) = eval_str("u64::from(n)", &[("n", n)]);
        assert_eq!(v, AbsVal::Int { iv: iv(1, 5), kind: Some(IntKind::U64) });
        let (v, _) = eval_str("f64::from(n)", &[("n", n)]);
        let AbsVal::Float(facts) = v else { panic!() };
        assert!(facts.finite && facts.non_negative && facts.non_zero && facts.int_valued);
    }

    #[test]
    fn float_arithmetic_fact_transfer() {
        let p = AbsVal::Float(FloatFacts::of_value(0.25));
        let q = AbsVal::Float(FloatFacts {
            finite: true,
            non_negative: true,
            le_one: true,
            non_zero: false,
            int_valued: false,
        });
        let (v, _) = eval_str("p * q", &[("p", p), ("q", q)]);
        let AbsVal::Float(f) = v else { panic!() };
        assert!(f.finite && f.non_negative && f.le_one, "[0,1]×[0,1] stays in [0,1]");
        let (v, _) = eval_str("p + q", &[("p", p), ("q", q)]);
        let AbsVal::Float(f) = v else { panic!() };
        assert!(f.finite && f.non_negative && !f.le_one, "[0,1]+[0,1] is [0,2]");
        let (v, _) = eval_str("p / q", &[("p", p), ("q", q)]);
        let AbsVal::Float(f) = v else { panic!() };
        assert!(!f.finite && f.non_negative, "division may blow up");
    }

    #[test]
    fn tolerance_unknown_constructs_are_top() {
        let (v, _) = eval_str("if c { 1 } else { 2 }", &[]);
        assert_eq!(v, AbsVal::Top);
        let (v, _) = eval_str("Foo { a: 1, b: 2 }", &[]);
        assert_eq!(v, AbsVal::Top);
        let (v, _) = eval_str("matches!(x, Some(_))", &[]);
        assert_eq!(v, AbsVal::Top);
        let (v, _) = eval_str("xs.iter().map(|v| v + 1).sum::<u64>()", &[]);
        assert_eq!(v, AbsVal::Top);
        // Events still fire inside an index expression.
        let i = AbsVal::int_of_kind(IntKind::Usize);
        let (_, events) = eval_str("xs[i - 1]", &[("i", i)]);
        assert!(events.iter().any(|e| matches!(e, Event::UncheckedSub { .. })));
    }

    #[test]
    fn call_events_carry_argument_values() {
        let lexed = lex("weigh(share, 1.0)");
        let consts = BTreeMap::new();
        let mut seen = Vec::new();
        let mut oracle = |at: usize, name: &str, args: &[AbsVal]| {
            seen.push((at, name.to_owned(), args.to_vec()));
            AbsVal::Top
        };
        let mut ev = Evaluator::new(&lexed.tokens, &consts, &[], &mut oracle);
        let env: Env =
            [("share".to_owned(), AbsVal::Float(FloatFacts::of_value(0.5)))].into_iter().collect();
        ev.eval(&env, 0, lexed.tokens.len());
        let has_call_event = ev.events.iter().any(|e| matches!(e, Event::Call { at: 0, .. }));
        drop(ev);
        assert!(has_call_event);
        assert_eq!(seen.len(), 1);
        let (at, name, args) = &seen[0];
        assert_eq!((*at, name.as_str()), (0, "weigh"));
        assert_eq!(args.len(), 2);
        assert!(matches!(args[0], AbsVal::Float(f) if f.in_unit_range()));
    }

    #[test]
    fn literal_parsers() {
        assert_eq!(parse_int_literal("42"), Some((42, None)));
        assert_eq!(parse_int_literal("0xff"), Some((255, None)));
        assert_eq!(parse_int_literal("1_000u64"), Some((1000, Some(IntKind::U64))));
        assert_eq!(parse_int_literal("0b1010"), Some((10, None)));
        assert_eq!(parse_int_literal("7usize"), Some((7, Some(IntKind::Usize))));
        assert_eq!(parse_float_literal("1."), Some(1.0));
        assert_eq!(parse_float_literal("2e-3"), Some(0.002));
        assert_eq!(parse_float_literal("1_0.5f64"), Some(10.5));
    }
}
