//! The four interval-powered rules riding the determinism/parallel
//! cones. Each one consumes the events the reporting pass collected and
//! keeps only what the converged intervals *cannot* prove safe — the
//! finding's final path hop renders the offending intervals, so the
//! report shows exactly what the analysis knew at the site.

use crate::rules::{Finding, Severity};
use crate::sema::{Model, SemaRule};

use super::domain::{AbsVal, IntKind};
use super::eval::Event;
use super::pair_key;

/// `arith-unchecked-sub` — unsigned subtraction the intervals cannot
/// prove non-wrapping (the `normalize_to_units` bug class: panics in
/// debug, wraps to ~2⁶⁴ in release).
pub struct ArithUncheckedSub;

/// `arith-widening-needed` — a 64-bit `+`/`*` whose operands are both
/// genuinely bounded yet whose result interval still escapes the type,
/// so the expression needs an i128 widening, not a shrug.
pub struct ArithWideningNeeded;

/// `range-invariant-escape` — an argument flowing into a function whose
/// leading asserts demand a range (`[0, 1]` shares, finite weights) the
/// caller's interval cannot prove, through a path with no clamp.
pub struct RangeInvariantEscape;

/// `cast-truncating-unproven` — the interval-refined successor of the
/// lexical `float-int-cast` rule: an `as` cast is silenced when the
/// operand's range proves it lossless and flagged with that range
/// rendered otherwise.
pub struct CastTruncatingUnproven;

/// Shared per-node iteration: cone gate, event loop, path assembly.
fn for_each_event(model: &Model, mut visit: impl FnMut(usize, usize, &Event, Vec<String>)) {
    for id in 0..model.nodes.len() {
        let node = &model.nodes[id];
        if node.in_test || !(model.det.reached(id) || model.par.reached(id)) {
            continue;
        }
        let Some(fa) = model.absint.fns[id].as_ref() else { continue };
        let Some(flow) = model.flows[id].as_ref() else { continue };
        let file = &model.files[node.file];
        for &(stmt_id, ref event) in &fa.events {
            let line = file.lexed.tokens[event.at()].line;
            if file.in_test_span(line) {
                continue;
            }
            let ids =
                model.det.path_to(id).or_else(|| model.par.path_to(id)).unwrap_or_else(|| vec![id]);
            let mut path = model.render_path(&ids);
            path.push(model.stmt_hop(id, flow.stmt(stmt_id)));
            visit(id, stmt_id, event, path);
        }
    }
}

impl SemaRule for ArithUncheckedSub {
    fn id(&self) -> &'static str {
        "arith-unchecked-sub"
    }

    fn summary(&self) -> &'static str {
        "unsigned subtraction whose operand intervals cannot prove lhs >= rhs"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for_each_event(model, |id, stmt_id, event, mut path| {
            let Event::UncheckedSub { at, lhs, rhs, lhs_name, rhs_name } = event else { return };
            // Interval proof: the smallest lhs is at least the largest rhs.
            if let (Some(li), Some(ri)) = (lhs.interval(), rhs.interval()) {
                if li.lo >= ri.hi {
                    return;
                }
            }
            // Guard proof: a dominating `lhs >= rhs` comparison.
            if let (Some(l), Some(r)) = (lhs_name, rhs_name) {
                let proven = model.absint.fns[id]
                    .as_ref()
                    .and_then(|fa| fa.envs.get(stmt_id).and_then(Option::as_ref))
                    .is_some_and(|env| env.contains_key(&pair_key(l, r)));
                if proven {
                    return;
                }
            }
            path.push(format!(
                "cannot prove lhs >= rhs: lhs in {}, rhs in {}",
                lhs.render(),
                rhs.render()
            ));
            let node = &model.nodes[id];
            let line = model.files[node.file].lexed.tokens[*at].line;
            model.emit(self, node.file, line, path, out);
        });
    }
}

impl SemaRule for ArithWideningNeeded {
    fn id(&self) -> &'static str {
        "arith-widening-needed"
    }

    fn summary(&self) -> &'static str {
        "64-bit add/mul of bounded operands whose result interval escapes the type without i128 widening"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for_each_event(model, |id, _stmt_id, event, mut path| {
            let Event::Overflow { at, op, kind, lhs, rhs, result } = event else { return };
            // Only the widest native types: narrower ones have an obvious
            // in-language fix (use the next size up) that the compiler's
            // own lints already push toward, and usize/isize arithmetic
            // is dominated by indexing, where i128 widening is noise.
            if kind.bits() != 64 || matches!(kind, IntKind::Usize | IntKind::Isize) {
                return;
            }
            // Both operands must be *genuinely* bounded below the type
            // fence — an operand the analysis knows nothing about always
            // "escapes", and flagging every unknown u64 would be noise,
            // not analysis.
            let fence = kind.range();
            if lhs.hi >= fence.hi || rhs.hi >= fence.hi {
                return;
            }
            path.push(format!(
                "{} {op} {} gives {result}, escaping {}; widen to i128",
                lhs,
                rhs,
                kind.name()
            ));
            let node = &model.nodes[id];
            let line = model.files[node.file].lexed.tokens[*at].line;
            model.emit(self, node.file, line, path, out);
        });
    }
}

impl SemaRule for RangeInvariantEscape {
    fn id(&self) -> &'static str {
        "range-invariant-escape"
    }

    fn summary(&self) -> &'static str {
        "argument cannot prove the documented range a callee's leading asserts require"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for_each_event(model, |id, _stmt_id, event, path| {
            let Event::Call { at, args } = event else { return };
            let node = &model.nodes[id];
            let toks = &model.files[node.file].lexed.tokens;
            // Unique resolution only: over-approximated method candidates
            // would blame a caller for every same-named method's asserts.
            let Ok(pos) = model.call_sites[id].binary_search_by_key(at, |e| e.0) else { return };
            let [callee] = model.call_sites[id][pos].1[..] else { return };
            let Some(summary) = model.absint.summaries[callee].as_ref() else { return };
            if summary.requires.is_empty() {
                return;
            }
            // Method calls pass the receiver outside the argument list.
            let offset = usize::from(summary.params.first().is_some_and(|p| p == "self"));
            for (idx, name, required) in &summary.requires {
                let Some(arg_pos) = idx.checked_sub(offset) else { continue };
                let Some(arg) = args.get(arg_pos) else { continue };
                let satisfied = match (arg, required) {
                    (AbsVal::Float(have), AbsVal::Float(want)) => have.implies(want),
                    (AbsVal::Int { iv: have, .. }, AbsVal::Int { iv: want, .. }) => {
                        have.within(want)
                    }
                    // Type confusion between caller and summary means the
                    // name-based resolution guessed wrong; stay quiet.
                    (AbsVal::Top, _) => false,
                    _ => true,
                };
                if satisfied {
                    continue;
                }
                let mut path = path.clone();
                path.push(format!(
                    "argument `{name}` in {} cannot prove {} required by {}",
                    arg.render(),
                    required.render(),
                    model.nodes[callee].qname
                ));
                model.emit(self, node.file, toks[*at].line, path, out);
            }
        });
    }
}

impl SemaRule for CastTruncatingUnproven {
    fn id(&self) -> &'static str {
        "cast-truncating-unproven"
    }

    fn summary(&self) -> &'static str {
        "`as` cast the operand's computed interval does not prove lossless"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, model: &Model, out: &mut Vec<Finding>) {
        for_each_event(model, |id, _stmt_id, event, mut path| {
            let Event::Cast { at, from, to, proven, from_float } = event else { return };
            if *proven {
                return;
            }
            // Float sources are always in scope (the PR 2 rule's beat);
            // int sources only when the cast actually narrows — an
            // unknown u32 "failing" to prove a u32→u64 widening is a
            // vacuous finding.
            if !*from_float {
                let narrows = matches!(
                    from,
                    AbsVal::Int { kind: Some(k), .. } if k.bits() > to.bits()
                );
                if !narrows {
                    return;
                }
            }
            path.push(format!("cast of {} to {} not proven lossless", from.render(), to.name()));
            let node = &model.nodes[id];
            let line = model.files[node.file].lexed.tokens[*at].line;
            model.emit(self, node.file, line, path, out);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(rule: &dyn SemaRule, src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let cfg = Config { sema_roots: vec!["run_study".into()], ..Default::default() };
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        rule.check(&model, &mut out);
        out
    }

    #[test]
    fn unguarded_unsigned_sub_is_flagged_with_intervals() {
        let out =
            findings(&ArithUncheckedSub, "pub fn run_study(a: u64, b: u64) -> u64 { a - b }\n");
        assert_eq!(out.len(), 1, "{out:?}");
        let last = out[0].path.last().expect("interval hop");
        assert!(last.contains("cannot prove lhs >= rhs"), "{last}");
        assert!(last.contains("u64 [0, 18446744073709551615]"), "{last}");
    }

    #[test]
    fn guard_or_interval_proofs_silence_the_sub() {
        let guarded = "pub fn run_study(a: u64, b: u64) -> u64 {\n\
                           if a >= b { a - b } else { 0 }\n\
                       }\n";
        // The whole `if` is a tail expression — statement-level analysis
        // sees the guarded subtraction only when it is a statement:
        let stmt_guarded = "pub fn run_study(a: u64, b: u64) -> u64 {\n\
                                if a < b { return 0; }\n\
                                let d = a - b;\n\
                                d\n\
                            }\n";
        let clamped = "pub fn run_study(a: u64, b: u64) -> u64 {\n\
                           let lo = b.min(10);\n\
                           let hi = a.max(10);\n\
                           hi - lo\n\
                       }\n";
        assert!(findings(&ArithUncheckedSub, guarded).is_empty());
        assert!(findings(&ArithUncheckedSub, stmt_guarded).is_empty(), "negated guard proves it");
        assert!(findings(&ArithUncheckedSub, clamped).is_empty(), "hi in [10,inf], lo in [0,10]");
    }

    #[test]
    fn bounded_mul_escaping_u64_wants_widening() {
        let out = findings(
            &ArithWideningNeeded,
            "pub fn run_study(a: u64, b: u64) -> u64 {\n\
                 let x = a.min(1_000_000_000_000);\n\
                 let y = b.min(1_000_000_000_000);\n\
                 x * y\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].path.last().expect("hop").contains("widen to i128"));
        let safe = findings(
            &ArithWideningNeeded,
            "pub fn run_study(a: u64, b: u64) -> u64 {\n\
                 let x = a.min(1_000_000);\n\
                 let y = b.min(1_000_000);\n\
                 x * y\n\
             }\n",
        );
        assert!(safe.is_empty(), "{safe:?}");
    }

    #[test]
    fn assert_requirements_catch_unproven_arguments() {
        let src = "fn weigh(share: f64) -> f64 {\n\
                       debug_assert!(share.is_finite() && share >= 0.0 && share <= 1.0);\n\
                       share\n\
                   }\n\
                   pub fn run_study(x: f64) -> f64 { weigh(x) }\n";
        let out = findings(&RangeInvariantEscape, src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].path.last().expect("hop").contains("`share`"));
        // `clamp` alone cannot prove finiteness (NaN passes through), so
        // the caller needs the guard too.
        let clamped = "fn weigh(share: f64) -> f64 {\n\
                           debug_assert!(share.is_finite() && share >= 0.0 && share <= 1.0);\n\
                           share\n\
                       }\n\
                       pub fn run_study(x: f64) -> f64 {\n\
                           if !x.is_finite() { return 0.0; }\n\
                           weigh(x.clamp(0.0, 1.0))\n\
                       }\n";
        let out = findings(&RangeInvariantEscape, clamped);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn casts_are_silenced_exactly_when_proven() {
        let unproven = "pub fn run_study(x: f64) -> u64 { x as u64 }\n";
        let out = findings(&CastTruncatingUnproven, unproven);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].path.last().expect("hop").contains("not proven lossless"));
        let proven = "pub fn run_study(x: f64) -> u64 {\n\
                          debug_assert!(x.is_finite() && x >= 0.0);\n\
                          x.max(0.0).floor() as u64\n\
                      }\n";
        assert!(findings(&CastTruncatingUnproven, proven).is_empty());
        let narrowing = "pub fn run_study(n: u64) -> u32 { n as u32 }\n";
        assert_eq!(findings(&CastTruncatingUnproven, narrowing).len(), 1);
        let bounded = "pub fn run_study(n: u64) -> u32 { n.min(65_535) as u32 }\n";
        assert!(findings(&CastTruncatingUnproven, bounded).is_empty());
    }
}
