//! The abstract domains: signed-128-bit integer intervals with widening,
//! machine-integer kinds, and a finite lattice of float range facts.
//!
//! Intervals use `i128::MIN` / `i128::MAX` as the ±∞ sentinels and
//! saturate toward them, so "unbounded" and "at the i128 extreme" are
//! deliberately conflated — the workspace's arithmetic lives at u64 scale
//! and below, and saturation only ever *widens* an interval, never
//! narrows it, so every approximation stays sound (the differential
//! oracle in `crates/lint/tests/absint_oracle.rs` fuzzes exactly this
//! contract). Floats get a fact set rather than an interval: the measure
//! kernels' invariants are "is a probability", "is finite", "can't be
//! zero" — range *shapes*, not ranges.

use std::fmt;

/// Negative-infinity sentinel for interval bounds.
pub const NEG_INF: i128 = i128::MIN;
/// Positive-infinity sentinel for interval bounds.
pub const POS_INF: i128 = i128::MAX;

/// A closed integer interval `[lo, hi]` over i128 with ±∞ sentinels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound ([`NEG_INF`] = unbounded below).
    pub lo: i128,
    /// Upper bound ([`POS_INF`] = unbounded above).
    pub hi: i128,
}

/// Saturating addition that keeps the infinity sentinels absorbing.
fn sat_add(a: i128, b: i128) -> i128 {
    if a == NEG_INF || b == NEG_INF {
        NEG_INF
    } else if a == POS_INF || b == POS_INF {
        POS_INF
    } else {
        a.saturating_add(b)
    }
}

/// Saturating multiplication with absorbing infinities (sign-aware).
fn sat_mul(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let inf = a == NEG_INF || a == POS_INF || b == NEG_INF || b == POS_INF;
    if inf {
        if (a < 0) == (b < 0) {
            POS_INF
        } else {
            NEG_INF
        }
    } else {
        a.saturating_mul(b)
    }
}

impl Interval {
    /// The full interval `[-∞, +∞]`.
    pub const TOP: Interval = Interval { lo: NEG_INF, hi: POS_INF };

    /// The singleton interval `[v, v]`.
    pub fn exact(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; callers must keep `lo <= hi`.
    pub fn new(lo: i128, hi: i128) -> Interval {
        debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether every value of `self` lies inside `other`.
    pub fn within(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// Whether both bounds are finite (no ±∞ sentinel).
    pub fn is_bounded(&self) -> bool {
        self.lo != NEG_INF && self.hi != POS_INF
    }

    /// Least upper bound: the convex hull of both intervals.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Greatest lower bound, `None` when the intervals are disjoint.
    pub fn meet(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Classic interval widening: a bound that moved since `prev` jumps
    /// to the matching bound of `fence` (the variable's type range when
    /// known, ±∞ otherwise), so loop fixpoints terminate in two hops per
    /// bound instead of walking the lattice one unit at a time.
    pub fn widen(&self, prev: &Interval, fence: &Interval) -> Interval {
        let lo = if self.lo < prev.lo {
            if self.lo >= fence.lo {
                fence.lo
            } else {
                NEG_INF
            }
        } else {
            self.lo
        };
        let hi = if self.hi > prev.hi {
            if self.hi <= fence.hi {
                fence.hi
            } else {
                POS_INF
            }
        } else {
            self.hi
        };
        Interval { lo, hi }
    }

    /// `self + other`.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval { lo: sat_add(self.lo, other.lo), hi: sat_add(self.hi, other.hi) }
    }

    /// `self - other` (plain mathematical subtraction — machine wrapping
    /// is applied by the caller when a kind is known).
    pub fn sub(&self, other: &Interval) -> Interval {
        let neg = other.neg();
        self.add(&neg)
    }

    /// `-self`.
    pub fn neg(&self) -> Interval {
        let lo = if self.hi == POS_INF { NEG_INF } else { self.hi.saturating_neg() };
        let hi = if self.lo == NEG_INF { POS_INF } else { self.lo.saturating_neg() };
        Interval { lo, hi }
    }

    /// `self * other` via the four corner products.
    pub fn mul(&self, other: &Interval) -> Interval {
        let c = [
            sat_mul(self.lo, other.lo),
            sat_mul(self.lo, other.hi),
            sat_mul(self.hi, other.lo),
            sat_mul(self.hi, other.hi),
        ];
        Interval {
            lo: c.iter().copied().min().expect("corner set is non-empty"),
            hi: c.iter().copied().max().expect("corner set is non-empty"),
        }
    }

    /// `self / other` (truncating). [`Interval::TOP`] when the divisor
    /// may be zero — the division itself is the flow rules' business.
    pub fn div(&self, other: &Interval) -> Interval {
        if other.contains(0) || !other.is_bounded() && (other.lo <= 0 || other.hi >= 0) {
            // A divisor interval touching zero (or unbounded toward it)
            // yields no usable quotient bound.
            if other.contains(0) {
                return Interval::TOP;
            }
        }
        let safe_div = |a: i128, b: i128| -> i128 {
            if a == NEG_INF || a == POS_INF {
                if (a > 0) == (b > 0) {
                    POS_INF
                } else {
                    NEG_INF
                }
            } else if b == NEG_INF || b == POS_INF {
                0
            } else {
                a / b
            }
        };
        let c = [
            safe_div(self.lo, other.lo),
            safe_div(self.lo, other.hi),
            safe_div(self.hi, other.lo),
            safe_div(self.hi, other.hi),
        ];
        Interval {
            lo: c.iter().copied().min().expect("corner set is non-empty"),
            hi: c.iter().copied().max().expect("corner set is non-empty"),
        }
    }

    /// `self % other`. For a positive bounded divisor the remainder lies
    /// in `[-(m-1), m-1]`, tightened to `[0, m-1]` for a non-negative
    /// dividend; anything else is [`Interval::TOP`].
    pub fn rem(&self, other: &Interval) -> Interval {
        if other.lo > 0 && other.hi != POS_INF {
            let m = other.hi - 1;
            if self.lo >= 0 {
                Interval { lo: 0, hi: if self.hi < m { self.hi } else { m } }
            } else {
                Interval { lo: -m, hi: m }
            }
        } else {
            Interval::TOP
        }
    }

    /// `self << other` for an exact in-range shift amount; TOP otherwise.
    pub fn shl(&self, other: &Interval) -> Interval {
        if other.lo == other.hi && (0..=126).contains(&other.lo) && self.is_bounded() {
            let k = other.lo as u32;
            let lo = self.lo.checked_shl(k).filter(|v| v >> k == self.lo);
            let hi = self.hi.checked_shl(k).filter(|v| v >> k == self.hi);
            if let (Some(lo), Some(hi)) = (lo, hi) {
                return Interval { lo, hi };
            }
        }
        Interval::TOP
    }

    /// `self >> other` for an exact in-range shift amount; TOP otherwise.
    pub fn shr(&self, other: &Interval) -> Interval {
        if other.lo == other.hi && (0..=126).contains(&other.lo) && self.is_bounded() {
            Interval { lo: self.lo >> other.lo, hi: self.hi >> other.lo }
        } else {
            Interval::TOP
        }
    }

    /// `self & other`: for non-negative operands the result is bounded by
    /// the smaller upper bound (masking can only clear bits).
    pub fn bitand(&self, other: &Interval) -> Interval {
        if self.lo >= 0 && other.lo >= 0 {
            Interval { lo: 0, hi: self.hi.min(other.hi) }
        } else {
            Interval::TOP
        }
    }

    /// `self | other` / `self ^ other`: for non-negative operands both
    /// are bounded by `hi₁ + hi₂` (`x|y = x + y − (x&y)` and
    /// `x^y = x + y − 2(x&y)`).
    pub fn bitor_xor(&self, other: &Interval) -> Interval {
        if self.lo >= 0 && other.lo >= 0 {
            Interval { lo: 0, hi: sat_add(self.hi, other.hi) }
        } else {
            Interval::TOP
        }
    }

    /// `self.min(other)` / `self.max(other)` (pointwise order ops).
    pub fn int_min(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.min(other.hi) }
    }

    /// See [`Interval::int_min`].
    pub fn int_max(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.max(other.lo), hi: self.hi.max(other.hi) }
    }

    /// `self.abs()`.
    pub fn abs(&self) -> Interval {
        if self.lo >= 0 {
            *self
        } else if self.hi <= 0 {
            self.neg()
        } else {
            let neg = self.neg();
            Interval { lo: 0, hi: self.hi.max(neg.hi) }
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            NEG_INF => write!(f, "[-inf, ")?,
            lo => write!(f, "[{lo}, ")?,
        }
        match self.hi {
            POS_INF => write!(f, "+inf]"),
            hi => write!(f, "{hi}]"),
        }
    }
}

/// A machine integer type. `usize`/`isize` are modeled as 64-bit (the
/// container targets x86-64; a 32-bit port would only make the modeled
/// ranges *wider* than reality on no axis that matters to soundness,
/// since every rule uses ranges to *suppress* findings, never to prove
/// a wrap can happen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IntKind {
    /// `u8`
    U8,
    /// `u16`
    U16,
    /// `u32`
    U32,
    /// `u64`
    U64,
    /// `usize` (modeled as 64-bit)
    Usize,
    /// `u128` (upper bound saturates at the i128 sentinel)
    U128,
    /// `i8`
    I8,
    /// `i16`
    I16,
    /// `i32`
    I32,
    /// `i64`
    I64,
    /// `isize` (modeled as 64-bit)
    Isize,
    /// `i128`
    I128,
}

impl IntKind {
    /// Parses a type name (`"u64"`) into a kind.
    pub fn from_name(name: &str) -> Option<IntKind> {
        Some(match name {
            "u8" => IntKind::U8,
            "u16" => IntKind::U16,
            "u32" => IntKind::U32,
            "u64" => IntKind::U64,
            "usize" => IntKind::Usize,
            "u128" => IntKind::U128,
            "i8" => IntKind::I8,
            "i16" => IntKind::I16,
            "i32" => IntKind::I32,
            "i64" => IntKind::I64,
            "isize" => IntKind::Isize,
            "i128" => IntKind::I128,
            _ => return None,
        })
    }

    /// The type's spelling.
    pub fn name(self) -> &'static str {
        match self {
            IntKind::U8 => "u8",
            IntKind::U16 => "u16",
            IntKind::U32 => "u32",
            IntKind::U64 => "u64",
            IntKind::Usize => "usize",
            IntKind::U128 => "u128",
            IntKind::I8 => "i8",
            IntKind::I16 => "i16",
            IntKind::I32 => "i32",
            IntKind::I64 => "i64",
            IntKind::Isize => "isize",
            IntKind::I128 => "i128",
        }
    }

    /// Whether the kind is unsigned.
    pub fn is_unsigned(self) -> bool {
        matches!(
            self,
            IntKind::U8
                | IntKind::U16
                | IntKind::U32
                | IntKind::U64
                | IntKind::Usize
                | IntKind::U128
        )
    }

    /// The kind's full value range as an interval (u128's upper bound
    /// saturates at the +∞ sentinel).
    pub fn range(self) -> Interval {
        match self {
            IntKind::U8 => Interval::new(0, u8::MAX as i128),
            IntKind::U16 => Interval::new(0, u16::MAX as i128),
            IntKind::U32 => Interval::new(0, u32::MAX as i128),
            IntKind::U64 | IntKind::Usize => Interval::new(0, u64::MAX as i128),
            IntKind::U128 => Interval::new(0, POS_INF),
            IntKind::I8 => Interval::new(i8::MIN as i128, i8::MAX as i128),
            IntKind::I16 => Interval::new(i16::MIN as i128, i16::MAX as i128),
            IntKind::I32 => Interval::new(i32::MIN as i128, i32::MAX as i128),
            IntKind::I64 | IntKind::Isize => Interval::new(i64::MIN as i128, i64::MAX as i128),
            IntKind::I128 => Interval::TOP,
        }
    }

    /// Bit width, for rule scoping.
    pub fn bits(self) -> u32 {
        match self {
            IntKind::U8 | IntKind::I8 => 8,
            IntKind::U16 | IntKind::I16 => 16,
            IntKind::U32 | IntKind::I32 => 32,
            IntKind::U64 | IntKind::Usize | IntKind::I64 | IntKind::Isize => 64,
            IntKind::U128 | IntKind::I128 => 128,
        }
    }
}

/// Range facts about an f64 value. Each `true` is a *proof*; `false`
/// means unknown, so the join is the conjunction and the empty fact set
/// is ⊤. NaN is handled by negation — `non_negative` literally means
/// "`v < 0.0` is false", which holds for NaN — so facts stay sound
/// without a separate NaN bit; `finite` is the fact that excludes NaN
/// and the infinities at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FloatFacts {
    /// `v.is_finite()` — excludes NaN and ±∞.
    pub finite: bool,
    /// `!(v < 0.0)` — non-negative, vacuously true for NaN.
    pub non_negative: bool,
    /// `!(v > 1.0)` — at most one, vacuously true for NaN.
    pub le_one: bool,
    /// `v != 0.0`.
    pub non_zero: bool,
    /// `!v.is_finite() || v.fract() == 0.0` — integer-valued.
    pub int_valued: bool,
}

impl FloatFacts {
    /// No facts — the float ⊤.
    pub const TOP: FloatFacts = FloatFacts {
        finite: false,
        non_negative: false,
        le_one: false,
        non_zero: false,
        int_valued: false,
    };

    /// Facts of a known literal value.
    pub fn of_value(v: f64) -> FloatFacts {
        FloatFacts {
            finite: v.is_finite(),
            // NaN carries both order facts: the facts assert "never
            // observed on the wrong side", which NaN vacuously satisfies.
            non_negative: v >= 0.0 || v.is_nan(),
            le_one: v <= 1.0 || v.is_nan(),
            // Exact comparisons are the point: these classify the literal
            // bit-pattern (±0.0, integral), not a computed quantity.
            non_zero: v != 0.0, // fbox-lint: allow(float-eq)
            int_valued: !v.is_finite() || v.fract() == 0.0, // fbox-lint: allow(float-eq)
        }
    }

    /// Whether the value is a proven probability-shaped quantity: finite
    /// and inside `[0, 1]`.
    pub fn in_unit_range(&self) -> bool {
        self.finite && self.non_negative && self.le_one
    }

    /// Join: a fact survives only when both sides prove it.
    pub fn join(&self, other: &FloatFacts) -> FloatFacts {
        FloatFacts {
            finite: self.finite && other.finite,
            non_negative: self.non_negative && other.non_negative,
            le_one: self.le_one && other.le_one,
            non_zero: self.non_zero && other.non_zero,
            int_valued: self.int_valued && other.int_valued,
        }
    }

    /// Meet: union of proofs (used by guard refinement).
    pub fn meet(&self, other: &FloatFacts) -> FloatFacts {
        FloatFacts {
            finite: self.finite || other.finite,
            non_negative: self.non_negative || other.non_negative,
            le_one: self.le_one || other.le_one,
            non_zero: self.non_zero || other.non_zero,
            int_valued: self.int_valued || other.int_valued,
        }
    }

    /// Whether every fact `required` proves is also proven here.
    pub fn implies(&self, required: &FloatFacts) -> bool {
        (!required.finite || self.finite)
            && (!required.non_negative || self.non_negative)
            && (!required.le_one || self.le_one)
            && (!required.non_zero || self.non_zero)
            && (!required.int_valued || self.int_valued)
    }
}

impl fmt::Display for FloatFacts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<&str> = Vec::new();
        if self.finite {
            parts.push("finite");
        }
        if self.non_negative {
            parts.push(">=0");
        }
        if self.le_one {
            parts.push("<=1");
        }
        if self.non_zero {
            parts.push("!=0");
        }
        if self.int_valued {
            parts.push("integer");
        }
        if parts.is_empty() {
            write!(f, "{{no facts}}")
        } else {
            write!(f, "{{{}}}", parts.join(", "))
        }
    }
}

/// One abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Unknown (any value of any type).
    Top,
    /// An integer with its interval and, when known, its machine type.
    Int {
        /// Value bounds.
        iv: Interval,
        /// Machine type, when the analysis could infer it.
        kind: Option<IntKind>,
    },
    /// A float with its fact set.
    Float(FloatFacts),
    /// A boolean (value untracked).
    Bool,
}

impl AbsVal {
    /// The unconstrained integer.
    pub fn int_top() -> AbsVal {
        AbsVal::Int { iv: Interval::TOP, kind: None }
    }

    /// An exact (singleton-interval) integer.
    pub fn int_exact(v: i128) -> AbsVal {
        AbsVal::Int { iv: Interval::exact(v), kind: None }
    }

    /// A typed integer spanning its type's full range.
    pub fn int_of_kind(kind: IntKind) -> AbsVal {
        AbsVal::Int { iv: kind.range(), kind: Some(kind) }
    }

    /// The factless float.
    pub fn float_top() -> AbsVal {
        AbsVal::Float(FloatFacts::TOP)
    }

    /// The interval, viewing a typed integer's missing bounds as its
    /// type bounds (`None` for non-integers).
    pub fn interval(&self) -> Option<Interval> {
        match self {
            AbsVal::Int { iv, .. } => Some(*iv),
            _ => None,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Int { iv: a, kind: ka }, AbsVal::Int { iv: b, kind: kb }) => {
                AbsVal::Int { iv: a.join(b), kind: if ka == kb { *ka } else { None } }
            }
            (AbsVal::Float(a), AbsVal::Float(b)) => AbsVal::Float(a.join(b)),
            (AbsVal::Bool, AbsVal::Bool) => AbsVal::Bool,
            _ => AbsVal::Top,
        }
    }

    /// Widening join against the previous state at a loop head.
    pub fn widen(&self, prev: &AbsVal) -> AbsVal {
        match (prev, self) {
            (AbsVal::Int { iv: old, kind: ka }, AbsVal::Int { iv: new, kind: kb }) => {
                let kind = if ka == kb { *ka } else { None };
                let fence = kind.map(IntKind::range).unwrap_or(Interval::TOP);
                AbsVal::Int { iv: new.join(old).widen(old, &fence), kind }
            }
            // Float facts and Bool form finite lattices: the plain join
            // already terminates.
            _ => self.join(prev),
        }
    }

    /// Renders the value for finding messages.
    pub fn render(&self) -> String {
        match self {
            AbsVal::Top => "unknown".to_owned(),
            AbsVal::Int { iv, kind: Some(k) } => format!("{} {iv}", k.name()),
            AbsVal::Int { iv, kind: None } => format!("{iv}"),
            AbsVal::Float(facts) => format!("f64 {facts}"),
            AbsVal::Bool => "bool".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_corner_arithmetic() {
        let a = Interval::new(2, 5);
        let b = Interval::new(-3, 4);
        assert_eq!(a.add(&b), Interval::new(-1, 9));
        assert_eq!(a.sub(&b), Interval::new(-2, 8));
        assert_eq!(a.mul(&b), Interval::new(-15, 20));
        assert_eq!(a.neg(), Interval::new(-5, -2));
        assert_eq!(a.abs(), a);
        assert_eq!(b.abs(), Interval::new(0, 4));
    }

    #[test]
    fn infinities_absorb_and_saturate() {
        let top = Interval::TOP;
        let one = Interval::exact(1);
        assert_eq!(top.add(&one), top);
        assert_eq!(top.mul(&one), top);
        assert_eq!(Interval::exact(0).mul(&top), Interval::exact(0));
        let up = Interval::new(0, POS_INF);
        assert_eq!(up.neg(), Interval::new(NEG_INF, 0));
        assert_eq!(up.add(&one), Interval::new(1, POS_INF));
    }

    #[test]
    fn div_and_rem_are_guarded() {
        let a = Interval::new(10, 20);
        assert_eq!(a.div(&Interval::new(2, 5)), Interval::new(2, 10));
        assert_eq!(a.div(&Interval::new(0, 5)), Interval::TOP, "divisor may be zero");
        assert_eq!(a.rem(&Interval::new(3, 3)), Interval::new(0, 2));
        assert_eq!(Interval::new(-5, 20).rem(&Interval::new(3, 3)), Interval::new(-2, 2));
    }

    #[test]
    fn shifts_and_masks() {
        assert_eq!(Interval::exact(1).shl(&Interval::exact(32)), Interval::exact(1 << 32));
        assert_eq!(
            Interval::new(0, u64::MAX as i128).shr(&Interval::exact(32)),
            Interval::new(0, u32::MAX as i128)
        );
        assert_eq!(
            Interval::new(0, u64::MAX as i128).bitand(&Interval::exact(0xff)),
            Interval::new(0, 0xff)
        );
        assert_eq!(Interval::new(0, 4).bitor_xor(&Interval::new(0, 3)), Interval::new(0, 7));
    }

    #[test]
    fn widening_hits_the_type_fence_then_infinity() {
        let prev = Interval::new(0, 10);
        let grown = Interval::new(0, 11);
        let fence = IntKind::U32.range();
        assert_eq!(grown.widen(&prev, &fence), Interval::new(0, u32::MAX as i128));
        let past = Interval::new(0, u64::MAX as i128);
        assert_eq!(past.widen(&prev, &fence), Interval::new(0, POS_INF));
        // A stable bound is left alone.
        assert_eq!(prev.widen(&prev, &fence), prev);
    }

    #[test]
    fn float_facts_join_meet_and_render() {
        let p = FloatFacts::of_value(0.5);
        assert!(p.in_unit_range() && p.non_zero && !p.int_valued);
        let z = FloatFacts::of_value(0.0);
        assert!(z.int_valued && !z.non_zero);
        let joined = p.join(&z);
        assert!(joined.in_unit_range() && !joined.non_zero && !joined.int_valued);
        assert!(FloatFacts::of_value(f64::NAN).non_negative, "NaN is not negative");
        assert!(!FloatFacts::of_value(f64::NAN).finite);
        assert_eq!(format!("{}", p), "{finite, >=0, <=1, !=0}");
    }

    #[test]
    fn absval_join_and_widen() {
        let a = AbsVal::Int { iv: Interval::new(0, 5), kind: Some(IntKind::U64) };
        let b = AbsVal::Int { iv: Interval::new(3, 9), kind: Some(IntKind::U64) };
        let j = a.join(&b);
        assert_eq!(j, AbsVal::Int { iv: Interval::new(0, 9), kind: Some(IntKind::U64) });
        let w = b.widen(&a);
        assert_eq!(
            w,
            AbsVal::Int { iv: Interval::new(0, u64::MAX as i128), kind: Some(IntKind::U64) }
        );
        assert_eq!(a.join(&AbsVal::float_top()), AbsVal::Top);
        assert_eq!(AbsVal::Int { iv: Interval::exact(1), kind: None }.render(), "[1, 1]");
    }
}
