//! The fourth analysis pass: abstract interpretation over the
//! per-function CFGs from [`crate::flow`], with interprocedural
//! summaries over the [`crate::sema`] call graph.
//!
//! Per function, a forward worklist computes an abstract environment
//! (variable → [`AbsVal`]) at every statement entry: integer intervals
//! with widening at loop heads (bound jumps go to the variable's type
//! fence first, then ±∞) followed by a bounded narrowing sweep that
//! recovers over-widened bounds, plus float range facts. Branch and
//! assert conditions refine environments edge-sensitively — `if sum <
//! SCALE` really does bound `sum` inside the branch — and guard
//! comparisons between two locals are tracked as directed `a ≥ b` facts
//! so `if a >= b { a - b }` proves the subtraction even when neither
//! interval is bounded.
//!
//! Interprocedurally, functions are condensed into call-graph SCCs and
//! fixpointed bottom-up: a function's summary (return interval plus
//! assert-derived argument preconditions) is available to every caller
//! in a later SCC, and calls *within* an SCC — recursion — are cut at ⊤.
//! SCC levels with no edges between them are analyzed in parallel with
//! `fbox_par::par_map`, which preserves item order, so the analysis is
//! byte-identical at any `FBOX_THREADS`.
//!
//! The engine deliberately evaluates *twice*: fixpoint iterations
//! discard events, and a single post-convergence reporting pass over the
//! stable environments collects them in statement order — so event
//! streams never depend on worklist scheduling.

pub mod domain;
pub mod eval;
pub mod rules;

use std::collections::BTreeMap;

use crate::flow::stmt::{StmtId, StmtKind};
use crate::flow::FnFlow;
use crate::lexer::{Tok, Token};
use crate::sema::FnNode;
use crate::source::SourceFile;

use domain::{AbsVal, FloatFacts, IntKind, Interval, NEG_INF, POS_INF};
use eval::{Env, Evaled, Evaluator, Event};

/// Joins at a loop head before widening kicks in.
const WIDEN_AFTER: u32 = 3;
/// Narrowing sweeps after the widening fixpoint.
const NARROW_PASSES: usize = 2;

/// Key prefix for directed guard facts in an [`Env`]: `"#ge a b"` means
/// `a >= b` holds on every path into the statement. `#` cannot start an
/// identifier, so these never collide with variables; unlike variable
/// entries they are dropped at joins when either side lacks them.
const PAIR_PREFIX: &str = "#ge ";

pub(crate) fn pair_key(hi: &str, lo: &str) -> String {
    format!("{PAIR_PREFIX}{hi} {lo}")
}

/// One function's converged analysis.
#[derive(Debug)]
pub struct FnAbsint {
    /// Entry environment per statement; `None` = not abstractly reached.
    pub envs: Vec<Option<Env>>,
    /// Events from the reporting pass, in statement order.
    pub events: Vec<(StmtId, Event)>,
    /// Worklist statement visits until convergence.
    pub iterations: usize,
    /// Whether the iteration cap fired before convergence (a bug: the
    /// self-analysis test pins this to `false` workspace-wide).
    pub diverged: bool,
}

/// A function's interprocedural summary.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Abstract return value (declared-type information included).
    pub ret: AbsVal,
    /// Assert-derived preconditions: `(param index, name, required)`.
    /// The required value is what the leading `assert!`s of the body
    /// refine the parameter to — a caller whose argument cannot prove it
    /// is handing the function a value it documents as rejecting.
    pub requires: Vec<(usize, String, AbsVal)>,
    /// Parameter names, for caller-side index alignment (`self` first
    /// for methods).
    pub params: Vec<String>,
}

/// The whole-workspace abstract interpretation result, indexed like
/// [`crate::sema::Model::nodes`].
#[derive(Debug, Default)]
pub struct Analysis {
    /// Per-node converged environments/events (`None` for bodiless fns).
    pub fns: Vec<Option<FnAbsint>>,
    /// Per-node summaries (`None` only while the fixpoint is running).
    pub summaries: Vec<Option<FnSummary>>,
    /// Workspace `const`/immutable-`static` values by simple name
    /// (cross-file collisions joined).
    pub consts: BTreeMap<String, AbsVal>,
    /// Number of call-graph SCCs (telemetry).
    pub scc_count: usize,
    /// Largest SCC size — recursion cycles cut at ⊤ (telemetry).
    pub max_scc_len: usize,
}

/// Runs the interprocedural analysis. `call_sites[node]` maps the token
/// index of each callee name to its resolved node ids, sorted by token.
pub fn analyze(
    files: &[SourceFile],
    nodes: &[FnNode],
    graph: &[Vec<usize>],
    flows: &[Option<FnFlow>],
    call_sites: &[Vec<(usize, Vec<usize>)>],
) -> Analysis {
    let consts = collect_consts(files);
    let sccs = condense(graph);
    let scc_count = sccs.len();
    let max_scc_len = sccs.iter().map(Vec::len).max().unwrap_or(0);

    // SCC levels: level(S) = 1 + max level of any callee SCC. `condense`
    // emits callees first, so one ordered pass suffices. Levels have no
    // edges inside them except within one SCC, so every already-computed
    // summary a node can reach is final when its level runs — and a call
    // into a summary still missing is exactly a same-SCC (recursive)
    // call, which the oracle cuts at ⊤.
    let mut scc_of = vec![0usize; graph.len()];
    for (i, scc) in sccs.iter().enumerate() {
        for &n in scc {
            scc_of[n] = i;
        }
    }
    let mut level_of = vec![0usize; sccs.len()];
    let mut levels: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, scc) in sccs.iter().enumerate() {
        let mut level = 0;
        for &n in scc {
            for &callee in &graph[n] {
                if scc_of[callee] != i {
                    level = level.max(level_of[scc_of[callee]] + 1);
                }
            }
        }
        level_of[i] = level;
        levels.entry(level).or_default().extend(scc.iter().copied());
    }

    let mut out = Analysis {
        fns: (0..nodes.len()).map(|_| None).collect(),
        summaries: vec![None; nodes.len()],
        consts,
        scc_count,
        max_scc_len,
    };
    for (_, mut batch) in levels {
        batch.sort_unstable();
        let results = fbox_par::par_map(&batch, |&id| {
            analyze_node(id, files, nodes, flows, call_sites, &out.summaries, &out.consts)
        });
        for (&id, (fa, summary)) in batch.iter().zip(results) {
            out.fns[id] = fa;
            out.summaries[id] = Some(summary);
        }
    }
    out
}

/// Tarjan's SCC algorithm (iterative), emitting components in reverse
/// topological order of the condensation: callees before callers.
fn condense(graph: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = graph.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next edge position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut edge)) = frames.last_mut() {
            if let Some(&w) = graph[v].get(*edge) {
                *edge += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Evaluates every workspace `const` / immutable `static` into the
/// simple-name value map. Two passes let consts reference each other in
/// any order; name collisions across files are joined.
fn collect_consts(files: &[SourceFile]) -> BTreeMap<String, AbsVal> {
    let mut consts: BTreeMap<String, AbsVal> = BTreeMap::new();
    for _ in 0..2 {
        let prev = consts.clone();
        consts.clear();
        for file in files {
            let toks = &file.lexed.tokens;
            file.items.walk(&mut |item| {
                let immutable_static =
                    matches!(&item.kind, crate::parser::ItemKind::Static { mutable: false, .. });
                if !matches!(item.kind, crate::parser::ItemKind::Const) && !immutable_static {
                    return;
                }
                let (lo, hi) = item.tokens;
                let Some(eq) = find_depth0_angles(toks, lo, hi, |t| t.is_punct('=')) else {
                    return;
                };
                let ty = find_depth0_angles(toks, lo, eq, |t| t.is_punct(':'))
                    .and_then(|colon| type_name_at(toks, colon + 1, eq));
                let env = Env::new();
                let mut oracle = |_: usize, _: &str, _: &[AbsVal]| AbsVal::Top;
                let mut ev = Evaluator::new(toks, &prev, &[], &mut oracle);
                let val = ev.eval(&env, eq + 1, hi).val;
                let val = apply_decl_type(val, ty.as_deref());
                consts.entry(item.name.clone()).and_modify(|v| *v = v.join(&val)).or_insert(val);
            });
        }
    }
    consts
}

/// Analyzes one node: the intraprocedural fixpoint plus its summary.
fn analyze_node(
    id: usize,
    files: &[SourceFile],
    nodes: &[FnNode],
    flows: &[Option<FnFlow>],
    call_sites: &[Vec<(usize, Vec<usize>)>],
    summaries: &[Option<FnSummary>],
    consts: &BTreeMap<String, AbsVal>,
) -> (Option<FnAbsint>, FnSummary) {
    let node = &nodes[id];
    let toks = &files[node.file].lexed.tokens;
    let sig = (node.tokens.0, node.body.map(|b| b.0).unwrap_or(node.tokens.1));
    let Some(flow) = flows[id].as_ref() else {
        // Bodiless (trait declaration): the declared return type is the
        // whole summary.
        let ret = apply_decl_type(AbsVal::Top, declared_ret(toks, sig).as_deref());
        return (None, FnSummary { ret, requires: Vec::new(), params: Vec::new() });
    };
    let skip: Vec<(usize, usize)> = node
        .children
        .iter()
        .filter(|&&c| nodes[c].body.is_some())
        .map(|&c| nodes[c].tokens)
        .collect();
    let cx = FnCx {
        toks,
        flow,
        consts,
        skip,
        sites: &call_sites[id],
        summaries,
        sig,
        is_closure: node.is_closure,
    };
    let (envs, iterations, diverged) = cx.fixpoint();
    let events = cx.report(&envs);
    let summary = cx.summarize(&envs);
    (Some(FnAbsint { envs, events, iterations, diverged }), summary)
}

/// Per-function analysis context.
struct FnCx<'a> {
    toks: &'a [Token],
    flow: &'a FnFlow,
    consts: &'a BTreeMap<String, AbsVal>,
    /// Child item token ranges the evaluator must jump over.
    skip: Vec<(usize, usize)>,
    /// `(name token index, resolved callee ids)`, sorted by token.
    sites: &'a [(usize, Vec<usize>)],
    summaries: &'a [Option<FnSummary>],
    sig: (usize, usize),
    is_closure: bool,
}

impl<'a> FnCx<'a> {
    /// Resolves a call event through the summaries: join of every
    /// resolved callee's return value; ⊤ for out-of-workspace calls and
    /// for same-SCC callees (whose summary is still `None` — the
    /// recursion cut).
    fn resolve_ret(&self, at: usize) -> AbsVal {
        let Ok(pos) = self.sites.binary_search_by_key(&at, |e| e.0) else { return AbsVal::Top };
        let callees = &self.sites[pos].1;
        let mut out: Option<AbsVal> = None;
        for &callee in callees {
            let ret = match &self.summaries[callee] {
                Some(s) => s.ret,
                None => AbsVal::Top,
            };
            out = Some(match out {
                Some(v) => v.join(&ret),
                None => ret,
            });
        }
        out.unwrap_or(AbsVal::Top)
    }

    /// Evaluates `[lo, hi)` under `env`, appending events to `sink`.
    fn eval_range(&self, env: &Env, lo: usize, hi: usize, sink: &mut Vec<Event>) -> Evaled {
        let mut oracle = |at: usize, _: &str, _: &[AbsVal]| self.resolve_ret(at);
        let mut ev = Evaluator::new(self.toks, self.consts, &self.skip, &mut oracle);
        let out = ev.eval(env, lo, hi);
        sink.append(&mut ev.events);
        out
    }

    /// Evaluates `[lo, hi)` for its value only (events discarded) — used
    /// by refinement and summaries, which must not duplicate events.
    fn eval_quiet(&self, env: &Env, lo: usize, hi: usize) -> Evaled {
        let mut sink = Vec::new();
        self.eval_range(env, lo, hi, &mut sink)
    }

    /// The entry environment: parameters at their signature-declared
    /// types (⊤ where the type is not a scalar we track).
    fn param_env(&self) -> Env {
        let mut env = Env::new();
        for name in &self.flow.params {
            let ty = param_type(self.toks, self.sig, name, self.is_closure);
            env.insert(name.clone(), apply_decl_type(AbsVal::Top, ty.as_deref()));
        }
        env
    }

    /// The widening worklist followed by bounded narrowing. Returns the
    /// per-statement entry environments.
    fn fixpoint(&self) -> (Vec<Option<Env>>, usize, bool) {
        let n = self.flow.tree.stmts.len();
        let mut ins: Vec<Option<Env>> = vec![None; n];
        let mut joins = vec![0u32; n];
        let entry = self.flow.cfg.entry;
        let mut iterations = 0usize;
        let mut diverged = false;
        if entry >= n {
            return (ins, 0, false); // empty body
        }
        ins[entry] = Some(self.param_env());
        let cap = 64 * n + 256;
        let mut worklist: Vec<usize> = vec![entry];
        while let Some(s) = worklist.pop() {
            iterations += 1;
            if iterations > cap {
                diverged = true;
                break;
            }
            let env = ins[s].clone().expect("worklisted statements have environments");
            let out = self.transfer(s, &env, None);
            for (t, flowed) in self.flow_into(s, &out) {
                if t >= n {
                    continue; // virtual exit
                }
                let widen = matches!(self.flow.tree.stmts[t].kind, StmtKind::Loop { .. })
                    && joins[t] >= WIDEN_AFTER;
                let next = match &ins[t] {
                    None => flowed,
                    Some(old) => {
                        let joined = join_envs(old, &flowed);
                        if widen {
                            widen_envs(old, &joined)
                        } else {
                            joined
                        }
                    }
                };
                if ins[t].as_ref() != Some(&next) {
                    joins[t] += 1;
                    ins[t] = Some(next);
                    if !worklist.contains(&t) {
                        worklist.push(t);
                    }
                }
            }
        }

        // Narrowing: recompute each reached statement's entry from its
        // predecessors and pull over-widened infinite bounds back down.
        // The recomputed state is sound (transfer of sound states), and
        // narrowing only ever replaces an infinite bound with it.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, succs) in self.flow.cfg.succ.iter().enumerate().take(n) {
            for &t in succs {
                if t < n {
                    preds[t].push(s);
                }
            }
        }
        for _ in 0..NARROW_PASSES {
            let mut changed = false;
            for t in 0..n {
                if ins[t].is_none() {
                    continue;
                }
                let mut fresh: Option<Env> = (t == entry).then(|| self.param_env());
                for &p in &preds[t] {
                    let Some(p_env) = &ins[p] else { continue };
                    let out = self.transfer(p, p_env, None);
                    for (tt, flowed) in self.flow_into(p, &out) {
                        if tt != t {
                            continue;
                        }
                        fresh = Some(match fresh {
                            Some(f) => join_envs(&f, &flowed),
                            None => flowed,
                        });
                    }
                }
                let Some(fresh) = fresh else { continue };
                let old = ins[t].as_ref().expect("checked above");
                let narrowed = narrow_envs(old, &fresh);
                if &narrowed != old {
                    changed = true;
                    ins[t] = Some(narrowed);
                }
            }
            if !changed {
                break;
            }
        }
        (ins, iterations, diverged)
    }

    /// The post-convergence reporting pass: one transfer per reached
    /// statement, in statement order, collecting events.
    fn report(&self, ins: &[Option<Env>]) -> Vec<(StmtId, Event)> {
        let mut events = Vec::new();
        for (s, env) in ins.iter().enumerate() {
            let Some(env) = env else { continue };
            let mut sink = Vec::new();
            self.transfer(s, env, Some(&mut sink));
            events.extend(sink.into_iter().map(|e| (s, e)));
        }
        events
    }

    /// Builds the function summary from the converged environments.
    fn summarize(&self, ins: &[Option<Env>]) -> FnSummary {
        let declared = declared_ret(self.toks, self.sig);
        // Return value: join every `return expr` with the tail expression.
        let mut ret: Option<AbsVal> = None;
        let mut add = |v: AbsVal| {
            ret = Some(match ret.take() {
                Some(r) => r.join(&v),
                None => v,
            });
        };
        for (s, stmt) in self.flow.tree.stmts.iter().enumerate() {
            if !matches!(stmt.kind, StmtKind::Return) {
                continue;
            }
            let Some(env) = ins.get(s).and_then(Option::as_ref) else { continue };
            if stmt.tokens.0 >= stmt.tokens.1 {
                add(AbsVal::Top); // bare `return;`
            } else {
                add(self.eval_quiet(env, stmt.tokens.0, stmt.tokens.1).val);
            }
        }
        if let Some(&tail) = self.flow.tree.root.last() {
            let stmt = &self.flow.tree.stmts[tail];
            if matches!(stmt.kind, StmtKind::Expr) {
                if let Some(env) = ins.get(tail).and_then(Option::as_ref) {
                    add(self.eval_quiet(env, stmt.tokens.0, stmt.tokens.1).val);
                }
            }
        }
        let ret = constrain_ret(ret.unwrap_or(AbsVal::Top), declared.as_deref());

        // Preconditions: leading root `assert!`/`debug_assert!` statements
        // refine the pristine parameter environment; any parameter that
        // strictly improves becomes a requirement on callers.
        let initial = self.param_env();
        let mut refined = initial.clone();
        for &s in self.flow.tree.root.iter().skip(1) {
            let stmt = &self.flow.tree.stmts[s];
            if !matches!(stmt.kind, StmtKind::Expr) {
                break;
            }
            let Some(cond) = assert_cond_range(self.toks, stmt.tokens) else { break };
            refined = self.refine_cond(refined, cond.0, cond.1, true);
        }
        let mut requires = Vec::new();
        for (idx, name) in self.flow.params.iter().enumerate() {
            let (before, after) = (initial.get(name), refined.get(name));
            if let (Some(b), Some(a)) = (before, after) {
                if a != b {
                    requires.push((idx, name.clone(), *a));
                }
            }
        }
        FnSummary { ret, requires, params: self.flow.params.clone() }
    }

    /// The transfer function: out-environment of statement `s` given its
    /// entry environment. `sink` collects events when present (the
    /// reporting pass); fixpoint iterations pass `None`.
    fn transfer(&self, s: StmtId, env: &Env, sink: Option<&mut Vec<Event>>) -> Env {
        let stmt = &self.flow.tree.stmts[s];
        let (lo, hi) = stmt.tokens;
        let mut throwaway = Vec::new();
        let sink_ref: &mut Vec<Event> = match sink {
            Some(s) => s,
            None => &mut throwaway,
        };
        let mut out = env.clone();
        match &stmt.kind {
            StmtKind::Let => {
                if s == 0 && lo == hi {
                    return out; // synthetic parameter statement
                }
                let val = match find_depth0_angles(self.toks, lo, hi, |t| t.is_punct('=')) {
                    Some(eq) => {
                        let v = self.eval_with_sink(env, eq + 1, hi, sink_ref).val;
                        let ty = find_depth0_angles(self.toks, lo, eq, |t| t.is_punct(':'))
                            .and_then(|colon| type_name_at(self.toks, colon + 1, eq));
                        apply_decl_type(v, ty.as_deref())
                    }
                    None => AbsVal::Top, // `let x;` or unparsed
                };
                for def in &stmt.defs {
                    kill_pairs(&mut out, def);
                }
                if stmt.defs.len() == 1 {
                    out.insert(stmt.defs[0].clone(), val);
                } else {
                    for def in &stmt.defs {
                        out.insert(def.clone(), AbsVal::Top);
                    }
                }
            }
            StmtKind::Assign { compound, target } => {
                let op_at = find_depth0_angles(self.toks, lo, hi, |t| {
                    t.is_punct('=')
                        || matches!(t, Tok::Op(o) if o.ends_with('=')
                            && !matches!(*o, "==" | "<=" | ">=" | "!=" | "=>"))
                });
                let val = match op_at {
                    Some(op_at) => {
                        let rhs = self.eval_with_sink(env, op_at + 1, hi, sink_ref);
                        if *compound {
                            let cur = env.get(target).copied().unwrap_or(AbsVal::Top);
                            self.compound(op_at, target, cur, &rhs, sink_ref)
                        } else {
                            rhs.val
                        }
                    }
                    None => AbsVal::Top,
                };
                kill_pairs(&mut out, target);
                // `x = v` binds; `x.field = v` / `x[i] = v` invalidates.
                let simple = op_at == Some(lo + 1)
                    && matches!(&self.toks.get(lo).map(|t| &t.tok), Some(Tok::Ident(n)) if n == target);
                out.insert(target.clone(), if simple { val } else { AbsVal::Top });
            }
            StmtKind::Expr => {
                if let Some((clo, chi)) = assert_cond_range(self.toks, stmt.tokens) {
                    self.eval_with_sink(env, clo, chi, sink_ref);
                    out = self.refine_cond(out, clo, chi, true);
                } else if let Some(((alo, ahi), (blo, bhi))) =
                    assert_eq_ranges(self.toks, stmt.tokens)
                {
                    let a = self.eval_with_sink(env, alo, ahi, sink_ref);
                    let b = self.eval_with_sink(env, blo, bhi, sink_ref);
                    // `assert_eq!(a, b)`: each single-ident side meets the
                    // other side's value.
                    for (side, other) in [(&a, &b.val), (&b, &a.val)] {
                        if let Some(name) = &side.name {
                            if out.contains_key(name) {
                                let met = meet_vals(&side.val, other);
                                out.insert(name.clone(), met);
                            }
                        }
                    }
                } else {
                    self.eval_with_sink(env, lo, hi, sink_ref);
                }
            }
            StmtKind::If { .. } => {
                // Head is `if cond` (or `if let pat = expr`); the branch
                // environments are refined edge-wise in `flow_into`.
                if self.head_is_let(lo) {
                    if let Some(eq) = find_depth0_angles(self.toks, lo, hi, |t| t.is_punct('=')) {
                        self.eval_with_sink(env, eq + 1, hi, sink_ref);
                    }
                } else {
                    self.eval_with_sink(env, lo + 1, hi, sink_ref);
                }
            }
            StmtKind::Match { .. } => {
                self.eval_with_sink(env, lo + 1, hi, sink_ref);
            }
            StmtKind::Loop { .. } => {
                let kw = self.keyword_at(lo);
                match kw {
                    Some("while") if !self.head_is_let(lo) => {
                        self.eval_with_sink(env, lo + 1, hi, sink_ref);
                    }
                    Some("while") => {
                        if let Some(eq) = find_depth0_angles(self.toks, lo, hi, |t| t.is_punct('='))
                        {
                            self.eval_with_sink(env, eq + 1, hi, sink_ref);
                        }
                    }
                    Some("for") => {
                        if let Some(in_at) = find_depth0(self.toks, lo, hi, |t| t.is_ident("in")) {
                            self.eval_with_sink(env, in_at + 1, hi, sink_ref);
                        }
                    }
                    _ => {}
                }
            }
            StmtKind::Block { .. } => {}
            StmtKind::Return | StmtKind::Break | StmtKind::Continue => {
                if lo < hi {
                    self.eval_with_sink(env, lo, hi, sink_ref);
                }
            }
        }
        // Any definition the cases above did not model precisely
        // (if-let / while-let / for / match bindings) is unknown.
        if matches!(stmt.kind, StmtKind::If { .. } | StmtKind::Match { .. } | StmtKind::Loop { .. })
        {
            for def in &stmt.defs {
                kill_pairs(&mut out, def);
                out.insert(def.clone(), AbsVal::Top);
            }
        }
        // Mutation the evaluator cannot see: `&mut x` arguments and
        // assignments inside child closures invalidate the variable.
        self.invalidate_hidden_writes(&mut out, lo, hi);
        out
    }

    fn eval_with_sink(&self, env: &Env, lo: usize, hi: usize, sink: &mut Vec<Event>) -> Evaled {
        self.eval_range(env, lo, hi, sink)
    }

    /// Compound-assignment transfer (`x += e`, `x -= e`, …): same wrap
    /// semantics and events as the evaluator's binary operators.
    fn compound(
        &self,
        op_at: usize,
        target: &str,
        cur: AbsVal,
        rhs: &Evaled,
        sink: &mut Vec<Event>,
    ) -> AbsVal {
        let op = match &self.toks[op_at].tok {
            Tok::Op(o) => o.chars().next().unwrap_or('='),
            _ => return AbsVal::Top,
        };
        // Promote an untyped side against a typed one (one Rust type).
        let (a, b) = match (cur, rhs.val) {
            (AbsVal::Int { iv, kind: Some(k) }, AbsVal::Top) => {
                (AbsVal::Int { iv, kind: Some(k) }, AbsVal::int_of_kind(k))
            }
            (AbsVal::Top, AbsVal::Int { iv, kind: Some(k) }) => {
                (AbsVal::int_of_kind(k), AbsVal::Int { iv, kind: Some(k) })
            }
            other => other,
        };
        match (a, b) {
            (AbsVal::Int { iv: ia, kind: ka }, AbsVal::Int { iv: ib, kind: kb }) => {
                let kind = ka.or(kb);
                let raw = match op {
                    '+' => ia.add(&ib),
                    '-' => ia.sub(&ib),
                    '*' => ia.mul(&ib),
                    '/' => ia.div(&ib),
                    '%' => ia.rem(&ib),
                    '&' => ia.bitand(&ib),
                    '|' | '^' => ia.bitor_xor(&ib),
                    '<' => ia.shl(&ib),
                    '>' => ia.shr(&ib),
                    _ => Interval::TOP,
                };
                let Some(kind) = kind else { return AbsVal::Int { iv: raw, kind: None } };
                if op == '-' && kind.is_unsigned() {
                    sink.push(Event::UncheckedSub {
                        at: op_at,
                        lhs: AbsVal::Int { iv: ia, kind: Some(kind) },
                        rhs: AbsVal::Int { iv: ib, kind: Some(kind) },
                        lhs_name: Some(target.to_owned()),
                        rhs_name: rhs.name.clone(),
                    });
                }
                let fence = kind.range();
                if raw.within(&fence) {
                    AbsVal::Int { iv: raw, kind: Some(kind) }
                } else {
                    if matches!(op, '+' | '*') {
                        sink.push(Event::Overflow {
                            at: op_at,
                            op,
                            kind,
                            lhs: ia,
                            rhs: ib,
                            result: raw,
                        });
                    }
                    AbsVal::Int { iv: fence, kind: Some(kind) }
                }
            }
            (AbsVal::Float(fa), AbsVal::Float(fb)) => {
                let unit = |f: FloatFacts| f.in_unit_range();
                AbsVal::Float(match op {
                    '+' => FloatFacts {
                        finite: unit(fa) && unit(fb),
                        non_negative: fa.non_negative && fb.non_negative,
                        le_one: false,
                        non_zero: false,
                        int_valued: fa.int_valued && fb.int_valued,
                    },
                    '-' => FloatFacts {
                        finite: unit(fa) && unit(fb),
                        non_negative: false,
                        le_one: fa.le_one && fb.non_negative,
                        non_zero: false,
                        int_valued: fa.int_valued && fb.int_valued,
                    },
                    '*' => FloatFacts {
                        finite: (unit(fa) && fb.finite) || (unit(fb) && fa.finite),
                        non_negative: fa.non_negative && fb.non_negative,
                        le_one: unit(fa) && unit(fb),
                        non_zero: false,
                        int_valued: fa.int_valued && fb.int_valued,
                    },
                    '/' => FloatFacts {
                        finite: false,
                        non_negative: fa.non_negative && fb.non_negative,
                        le_one: false,
                        non_zero: false,
                        int_valued: false,
                    },
                    _ => FloatFacts::TOP,
                })
            }
            _ => AbsVal::Top,
        }
    }

    /// Successor environments of statement `s` with edge refinement:
    /// then-branches meet the positive condition, else-branches and
    /// else-less fall-throughs the negated (single-conjunct) condition,
    /// `while` bodies the loop condition, `for x in a..b` bodies the
    /// iteration range of `x`.
    fn flow_into(&self, s: StmtId, out: &Env) -> Vec<(usize, Env)> {
        let stmt = &self.flow.tree.stmts[s];
        let succ = &self.flow.cfg.succ[s];
        let (lo, hi) = stmt.tokens;
        let mut edges: Vec<(usize, Env)> = Vec::new();
        match &stmt.kind {
            StmtKind::If { branches, has_else } if !self.head_is_let(lo) => {
                let then_head = branches.first().and_then(|b| b.first()).copied();
                let else_head = (*has_else && branches.len() >= 2)
                    .then(|| branches.last().and_then(|b| b.first()).copied())
                    .flatten();
                // A target with two roles (empty branch) gets no refinement.
                let heads: Vec<usize> =
                    branches.iter().filter_map(|b| b.first().copied()).collect();
                for &t in succ {
                    let roles = usize::from(Some(t) == then_head)
                        + usize::from(Some(t) == else_head)
                        + usize::from(!heads.contains(&t)); // fall-through
                    let env = if roles != 1 {
                        out.clone()
                    } else if Some(t) == then_head {
                        self.refine_cond(out.clone(), lo + 1, hi, true)
                    } else if Some(t) == else_head || !*has_else {
                        self.refine_cond(out.clone(), lo + 1, hi, false)
                    } else {
                        out.clone()
                    };
                    edges.push((t, env));
                }
            }
            StmtKind::Loop { body, .. } => {
                let body_head = body.first().copied();
                let kw = self.keyword_at(lo);
                for &t in succ {
                    let mut env = out.clone();
                    if Some(t) == body_head && succ.iter().filter(|&&x| x == t).nth(1).is_none() {
                        match kw {
                            Some("while") if !self.head_is_let(lo) => {
                                env = self.refine_cond(env, lo + 1, hi, true);
                            }
                            Some("for") => {
                                env = self.refine_for(env, stmt);
                            }
                            _ => {}
                        }
                    }
                    edges.push((t, env));
                }
            }
            _ => {
                for &t in succ {
                    edges.push((t, out.clone()));
                }
            }
        }
        edges
    }

    /// `for PAT in a..b` body refinement: the (single) loop variable is
    /// bounded by the literal/evaluated range endpoints.
    fn refine_for(&self, mut env: Env, stmt: &crate::flow::stmt::Stmt) -> Env {
        if stmt.defs.len() != 1 {
            return env;
        }
        let (lo, hi) = stmt.tokens;
        let Some(in_at) = find_depth0(self.toks, lo, hi, |t| t.is_ident("in")) else { return env };
        let Some(dots) =
            find_depth0(self.toks, in_at + 1, hi, |t| matches!(t, Tok::Op(".." | "..=")))
        else {
            return env;
        };
        let inclusive = matches!(&self.toks[dots].tok, Tok::Op("..="));
        let start = self.eval_quiet(&env, in_at + 1, dots).val;
        let end = self.eval_quiet(&env, dots + 1, hi).val;
        let (Some(si), Some(ei)) = (start.interval(), end.interval()) else { return env };
        let kind = match (start, end) {
            (AbsVal::Int { kind: Some(k), .. }, _) | (_, AbsVal::Int { kind: Some(k), .. }) => {
                Some(k)
            }
            _ => None,
        };
        // An exclusive end shifts the bound down — unless it is already a
        // widened infinity, which must not wrap into a finite bound.
        let upper =
            if inclusive || ei.hi == POS_INF || ei.hi == NEG_INF { ei.hi } else { ei.hi - 1 };
        if si.lo > upper {
            return env; // empty range; body still analyzed conservatively
        }
        let var = stmt.defs[0].clone();
        kill_pairs(&mut env, &var);
        env.insert(var, AbsVal::Int { iv: Interval::new(si.lo, upper), kind });
        env
    }

    /// Refines `env` by the condition tokens `[lo, hi)`. Positive: every
    /// top-level `&&` conjunct is applied. Negative: only a single
    /// conjunct is negated (¬(a ∧ b) proves nothing about either alone).
    fn refine_cond(&self, env: Env, lo: usize, hi: usize, positive: bool) -> Env {
        let conjuncts = split_conjuncts(self.toks, lo, hi);
        if positive {
            let mut env = env;
            for &(clo, chi) in &conjuncts {
                env = self.refine_conjunct(env, clo, chi, true);
            }
            env
        } else if let [(clo, chi)] = conjuncts[..] {
            self.refine_conjunct(env, clo, chi, false)
        } else {
            env
        }
    }

    /// Applies one conjunct: comparisons, `x.is_finite()`, and
    /// `(a..=b).contains(&x)` shapes.
    fn refine_conjunct(&self, mut env: Env, lo: usize, hi: usize, positive: bool) -> Env {
        let toks = self.toks;
        // Strip one redundant paren layer.
        if hi > lo + 1 {
            let last = hi - 1;
            if toks[lo].tok.is_punct('(')
                && toks[last].tok.is_punct(')')
                && matching_close(toks, lo) == Some(last)
            {
                return self.refine_conjunct(env, lo + 1, last, positive);
            }
        }
        // `!inner`: flip polarity.
        if toks.get(lo).is_some_and(|t| t.tok.is_punct('!')) {
            return self.refine_conjunct(env, lo + 1, hi, !positive);
        }
        // `x.is_finite()` — only the positive direction carries a fact.
        if positive {
            if let Some(name) = method_test(toks, lo, hi, "is_finite") {
                if env.contains_key(&name) {
                    add_float_facts(
                        &mut env,
                        &name,
                        FloatFacts { finite: true, ..FloatFacts::TOP },
                    );
                }
                return env;
            }
            if let Some((name, range)) = contains_test(toks, lo, hi) {
                if env.contains_key(&name) {
                    return self.refine_contains(env, &name, range);
                }
                return env;
            }
        }
        // Comparison conjunct.
        let Some(cmp_at) = find_comparison(toks, lo, hi) else { return env };
        let op = cmp_text(&toks[cmp_at].tok);
        let op = if positive { op } else { negate_cmp(op) };
        let Some(op) = op else { return env };
        let lhs_name = single_ident(toks, lo, cmp_at);
        let rhs_name = single_ident(toks, cmp_at + 1, hi);
        let lhs = self.eval_quiet(&env, lo, cmp_at).val;
        let rhs = self.eval_quiet(&env, cmp_at + 1, hi).val;
        // Directed variable-pair facts: `a >= b` survives joins only if
        // proven on every path. Only *locals* (already bound in the env)
        // participate — refining a const's name would shadow its value.
        if let (Some(a), Some(b)) = (&lhs_name, &rhs_name) {
            if env.contains_key(a) && env.contains_key(b) {
                match op {
                    ">=" | ">" => {
                        env.insert(pair_key(a, b), AbsVal::Bool);
                    }
                    "<=" | "<" => {
                        env.insert(pair_key(b, a), AbsVal::Bool);
                    }
                    "==" => {
                        env.insert(pair_key(a, b), AbsVal::Bool);
                        env.insert(pair_key(b, a), AbsVal::Bool);
                    }
                    _ => {}
                }
            }
        }
        if let Some(name) = lhs_name.as_ref().filter(|n| env.contains_key(n.as_str())) {
            refine_by_cmp(&mut env, name, op, &rhs);
        }
        if let Some(name) = rhs_name.as_ref().filter(|n| env.contains_key(n.as_str())) {
            refine_by_cmp(&mut env, name, flip_cmp(op), &lhs);
        }
        env
    }

    /// `(a..=b).contains(&x)` being true bounds `x` on both sides — and
    /// excludes NaN, so bounded float ranges also prove finiteness.
    fn refine_contains(&self, mut env: Env, name: &str, range: (usize, usize)) -> Env {
        let (rlo, rhi) = range;
        let Some(dots) = find_depth0(self.toks, rlo, rhi, |t| matches!(t, Tok::Op(".." | "..=")))
        else {
            return env;
        };
        let start = self.eval_quiet(&env, rlo, dots).val;
        let end = self.eval_quiet(&env, dots + 1, rhi).val;
        match (start, end) {
            (AbsVal::Int { iv: s, kind }, AbsVal::Int { iv: e, .. }) => {
                let inclusive = matches!(&self.toks[dots].tok, Tok::Op("..="));
                let hi = if inclusive || e.hi == POS_INF { e.hi } else { e.hi - 1 };
                if s.lo <= hi {
                    let bound = AbsVal::Int { iv: Interval::new(s.lo, hi), kind };
                    let cur = env.get(name).copied().unwrap_or(AbsVal::Top);
                    env.insert(name.to_owned(), meet_vals(&cur, &bound));
                }
            }
            (AbsVal::Float(s), AbsVal::Float(e)) => {
                add_float_facts(
                    &mut env,
                    name,
                    FloatFacts {
                        finite: s.finite && e.finite,
                        non_negative: s.non_negative,
                        le_one: e.le_one,
                        non_zero: false,
                        int_valued: false,
                    },
                );
            }
            _ => {}
        }
        env
    }

    /// Variables written where the evaluator cannot see it — `&mut x`
    /// argument positions anywhere in the statement, and assignment
    /// targets inside child-closure token ranges — drop to ⊤.
    fn invalidate_hidden_writes(&self, env: &mut Env, lo: usize, hi: usize) {
        let toks = self.toks;
        for i in lo..hi.min(toks.len()) {
            // `& mut x` (also the first `&` of `&&mut x` via Op("&&")).
            let amp = toks[i].tok.is_punct('&') || toks[i].tok.is_op("&&");
            if amp && toks.get(i + 1).is_some_and(|t| t.tok.is_ident("mut")) {
                if let Some(Tok::Ident(name)) = toks.get(i + 2).map(|t| &t.tok) {
                    if env.contains_key(name.as_str()) {
                        kill_pairs(env, name);
                        env.insert(name.clone(), AbsVal::Top);
                    }
                }
            }
        }
        for &(slo, shi) in &self.skip {
            if shi <= lo || slo >= hi {
                continue;
            }
            for i in slo..shi.min(toks.len()) {
                let Tok::Ident(name) = &toks[i].tok else { continue };
                let writes = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Punct('=')) => {
                        // Assignment, not `==`/`=>` (those are Ops).
                        true
                    }
                    Some(Tok::Op(o)) => {
                        o.ends_with('=') && !matches!(*o, "==" | "<=" | ">=" | "!=" | "=>")
                    }
                    _ => false,
                };
                if writes && env.contains_key(name.as_str()) {
                    kill_pairs(env, name);
                    env.insert(name.clone(), AbsVal::Top);
                }
            }
        }
    }

    fn keyword_at(&self, at: usize) -> Option<&str> {
        match self.toks.get(at).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether an `if`/`while` head at `lo` is the `let`-pattern form.
    fn head_is_let(&self, lo: usize) -> bool {
        self.toks.get(lo + 1).is_some_and(|t| t.tok.is_ident("let"))
    }
}

// ---------------------------------------------------------------------
// Environment lattice operations.
// ---------------------------------------------------------------------

/// Join of two environments. A variable missing on one side is unbound
/// on that path (any use there is impossible), so the bound side's value
/// survives; `#ge` guard facts are *proofs* and survive only when both
/// sides carry them.
fn join_envs(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, va) in a {
        match b.get(k) {
            Some(vb) => {
                out.insert(k.clone(), va.join(vb));
            }
            None => {
                if !k.starts_with(PAIR_PREFIX) {
                    out.insert(k.clone(), *va);
                }
            }
        }
    }
    for (k, vb) in b {
        if !a.contains_key(k) && !k.starts_with(PAIR_PREFIX) {
            out.insert(k.clone(), *vb);
        }
    }
    out
}

/// Widening join at a loop head (see [`AbsVal::widen`]).
fn widen_envs(old: &Env, new: &Env) -> Env {
    let mut out = Env::new();
    for (k, vn) in new {
        let v = match old.get(k) {
            Some(vo) => vn.widen(vo),
            None => *vn,
        };
        out.insert(k.clone(), v);
    }
    out
}

/// Narrowing: keep `old`'s finite bounds, adopt `fresh`'s bound wherever
/// `old` was widened to ±∞ (and adopt `fresh` wholesale for the finite
/// float/bool lattices, where re-iteration is already exact).
fn narrow_envs(old: &Env, fresh: &Env) -> Env {
    let mut out = Env::new();
    for (k, vo) in old {
        let v = match fresh.get(k) {
            Some(vf) => narrow_val(vo, vf),
            None => *vo,
        };
        out.insert(k.clone(), v);
    }
    // Keys only in `fresh` (a variable bound later than the widened
    // snapshot saw) are adopted as-is.
    for (k, vf) in fresh {
        if !old.contains_key(k) {
            out.insert(k.clone(), *vf);
        }
    }
    out
}

fn narrow_val(old: &AbsVal, fresh: &AbsVal) -> AbsVal {
    match (old, fresh) {
        (AbsVal::Int { iv: o, kind: ko }, AbsVal::Int { iv: f, kind: kf }) => {
            let lo = if o.lo == NEG_INF { f.lo } else { o.lo };
            let hi = if o.hi == POS_INF { f.hi } else { o.hi };
            if lo <= hi {
                AbsVal::Int { iv: Interval::new(lo, hi), kind: if ko == kf { *ko } else { *kf } }
            } else {
                *fresh
            }
        }
        _ => *fresh,
    }
}

/// Pointwise meet used by refinement; an empty intersection keeps the
/// refining side (the branch is unreachable, but we never prune edges —
/// the self-analysis invariant "every CFG-reachable statement has an
/// environment" stays simple and over-approximation stays sound).
fn meet_vals(a: &AbsVal, b: &AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Int { iv: ia, kind: ka }, AbsVal::Int { iv: ib, kind: kb }) => {
            AbsVal::Int { iv: ia.meet(ib).unwrap_or(*ib), kind: ka.or(*kb) }
        }
        (AbsVal::Float(fa), AbsVal::Float(fb)) => AbsVal::Float(fa.meet(fb)),
        (AbsVal::Top, other) | (other, AbsVal::Top) => *other,
        _ => *b,
    }
}

/// Removes `#ge` facts mentioning `name` (called when it is redefined).
fn kill_pairs(env: &mut Env, name: &str) {
    env.retain(|k, _| {
        if !k.starts_with(PAIR_PREFIX) {
            return true;
        }
        let mut parts = k[PAIR_PREFIX.len()..].split(' ');
        parts.clone().next() != Some(name) && parts.nth(1) != Some(name)
    });
}

fn add_float_facts(env: &mut Env, name: &str, facts: FloatFacts) {
    let cur = env.get(name).copied().unwrap_or(AbsVal::Top);
    let next = match cur {
        AbsVal::Float(f) => AbsVal::Float(f.meet(&facts)),
        AbsVal::Top => AbsVal::Float(facts),
        other => other,
    };
    env.insert(name.to_owned(), next);
}

/// Meets `env[name]` against a comparison with abstract value `other`:
/// `name OP other` is known true.
fn refine_by_cmp(env: &mut Env, name: &str, op: &str, other: &AbsVal) {
    let cur = env.get(name).copied().unwrap_or(AbsVal::Top);
    match other {
        AbsVal::Int { iv, .. } => {
            let bound = match op {
                "<" if iv.hi != POS_INF && iv.hi != NEG_INF => Interval::new(NEG_INF, iv.hi - 1),
                "<" => Interval::TOP,
                "<=" => Interval::new(NEG_INF, iv.hi),
                ">" if iv.lo != NEG_INF && iv.lo != POS_INF => Interval::new(iv.lo + 1, POS_INF),
                ">" => Interval::TOP,
                ">=" => Interval::new(iv.lo, POS_INF),
                "==" => *iv,
                // `x != k` (singleton rhs) trims `k` off whichever end of
                // `x`'s interval it sits on — the workhorse behind the
                // `if x == 0 { break } x -= 1` idiom.
                // `x != k` (singleton rhs) trims `k` off whichever end of
                // `x`'s interval it sits on — the workhorse behind the
                // `if x == 0 { break } x -= 1` idiom. When the trim
                // contradicts the current interval entirely the edge is
                // infeasible, so the (vacuously sound) trimmed bound
                // still applies — `meet_vals` keeps it on empty meets.
                "!=" if iv.lo == iv.hi && iv.lo != NEG_INF && iv.lo != POS_INF => {
                    let k = iv.lo;
                    match cur {
                        AbsVal::Int { iv: c, .. } if c.lo == k => Interval::new(k + 1, POS_INF),
                        AbsVal::Int { iv: c, .. } if c.hi == k => Interval::new(NEG_INF, k - 1),
                        _ => Interval::TOP,
                    }
                }
                _ => Interval::TOP,
            };
            let kind = match other {
                AbsVal::Int { kind, .. } => *kind,
                _ => None,
            };
            let next = meet_vals(&cur, &AbsVal::Int { iv: bound, kind });
            env.insert(name.to_owned(), next);
        }
        AbsVal::Float(facts) => {
            let proven = match op {
                ">=" => FloatFacts {
                    non_negative: facts.non_negative,
                    non_zero: facts.non_negative && facts.non_zero,
                    ..FloatFacts::TOP
                },
                ">" => FloatFacts {
                    non_negative: facts.non_negative,
                    non_zero: facts.non_negative,
                    ..FloatFacts::TOP
                },
                "<=" | "<" => FloatFacts { le_one: facts.le_one, ..FloatFacts::TOP },
                "==" => *facts,
                _ => FloatFacts::TOP,
            };
            add_float_facts(env, name, proven);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Token-level helpers.
// ---------------------------------------------------------------------

/// First token in `[lo, hi)` at bracket depth 0 matching `pred`
/// (parens/brackets/braces only — use for conditions and operators).
fn find_depth0(toks: &[Token], lo: usize, hi: usize, pred: impl Fn(&Tok) -> bool) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in toks.iter().enumerate().take(hi.min(toks.len())).skip(lo) {
        match &tok.tok {
            Tok::Punct('(' | '[' | '{') => depth += 1,
            Tok::Punct(')' | ']' | '}') => depth = depth.saturating_sub(1),
            t if depth == 0 && pred(t) => return Some(i),
            _ => {}
        }
    }
    None
}

/// Like [`find_depth0`] but also counting `<`/`>` as nesting (for type
/// positions: the `=` of `let x: Option<u64> = …`).
fn find_depth0_angles(
    toks: &[Token],
    lo: usize,
    hi: usize,
    pred: impl Fn(&Tok) -> bool,
) -> Option<usize> {
    let mut depth = 0isize;
    for (i, tok) in toks.iter().enumerate().take(hi.min(toks.len())).skip(lo) {
        let t = &tok.tok;
        if depth == 0 && pred(t) {
            return Some(i);
        }
        match t {
            Tok::Punct('(' | '[' | '{' | '<') => depth += 1,
            Tok::Punct(')' | ']' | '}' | '>') => depth -= 1,
            Tok::Op("<<") => depth += 2,
            Tok::Op(">>") => depth -= 2,
            _ => {}
        }
    }
    None
}

/// Index of the `)`/`]`/`}` matching the opener at `open`.
fn matching_close(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match &t.tok {
            Tok::Punct('(' | '[' | '{') => depth += 1,
            Tok::Punct(')' | ']' | '}') => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits `[lo, hi)` at top-level `&&` into conjunct ranges.
fn split_conjuncts(toks: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = lo;
    let mut at = lo;
    while let Some(i) = find_depth0(toks, at, hi, |t| t.is_op("&&")) {
        // A `&&` directly after an operator or opener is a double
        // reference (`x == &&y` is not real code, but `f(&&x)` is).
        let prefix = i == start
            || matches!(
                toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('(' | '[' | '{' | ',' | '=')) | Some(Tok::Op(_))
            );
        if prefix {
            at = i + 1;
            continue;
        }
        out.push((start, i));
        start = i + 1;
        at = i + 1;
    }
    out.push((start, hi));
    out
}

/// The single identifier a range consists of, parens stripped.
fn single_ident(toks: &[Token], lo: usize, hi: usize) -> Option<String> {
    let hi = hi.min(toks.len());
    if hi > lo + 1 {
        let last = hi - 1;
        if toks[lo].tok.is_punct('(')
            && toks[last].tok.is_punct(')')
            && matching_close(toks, lo) == Some(last)
        {
            return single_ident(toks, lo + 1, last);
        }
    }
    if hi != lo + 1 {
        return None;
    }
    match &toks[lo].tok {
        Tok::Ident(name) if !crate::parser::is_keyword(name) => Some(name.clone()),
        _ => None,
    }
}

/// Finds a top-level comparison operator. `<`/`>` are accepted only when
/// not plausibly generics (`::<`).
fn find_comparison(toks: &[Token], lo: usize, hi: usize) -> Option<usize> {
    find_depth0(toks, lo, hi, |t| {
        matches!(t, Tok::Op("==" | "!=" | "<=" | ">=")) || matches!(t, Tok::Punct('<' | '>'))
    })
    .filter(|&i| !(i > 0 && toks[i - 1].tok.is_op("::")))
}

fn cmp_text(tok: &Tok) -> Option<&'static str> {
    Some(match tok {
        Tok::Op("==") => "==",
        Tok::Op("!=") => "!=",
        Tok::Op("<=") => "<=",
        Tok::Op(">=") => ">=",
        Tok::Punct('<') => "<",
        Tok::Punct('>') => ">",
        _ => return None,
    })
}

fn negate_cmp(op: Option<&'static str>) -> Option<&'static str> {
    Some(match op? {
        "==" => "!=",
        "!=" => "==",
        "<" => ">=",
        ">=" => "<",
        ">" => "<=",
        "<=" => ">",
        _ => return None,
    })
}

fn flip_cmp(op: &'static str) -> &'static str {
    match op {
        "<" => ">",
        ">" => "<",
        "<=" => ">=",
        ">=" => "<=",
        other => other,
    }
}

/// Matches `name.method()` over the whole range; returns `name`.
fn method_test(toks: &[Token], lo: usize, hi: usize, method: &str) -> Option<String> {
    let hi = hi.min(toks.len());
    if hi != lo + 5 {
        return None;
    }
    let Tok::Ident(name) = &toks[lo].tok else { return None };
    if toks[lo + 1].tok.is_punct('.')
        && toks[lo + 2].tok.is_ident(method)
        && toks[lo + 3].tok.is_punct('(')
        && toks[lo + 4].tok.is_punct(')')
    {
        Some(name.clone())
    } else {
        None
    }
}

/// Matches `(range).contains(&name)`; returns `(name, range tokens)`.
fn contains_test(toks: &[Token], lo: usize, hi: usize) -> Option<(String, (usize, usize))> {
    let hi = hi.min(toks.len());
    if !toks.get(lo)?.tok.is_punct('(') {
        return None;
    }
    let close = matching_close(toks, lo)?;
    if close + 5 >= hi
        || !toks[close + 1].tok.is_punct('.')
        || !toks[close + 2].tok.is_ident("contains")
        || !toks[close + 3].tok.is_punct('(')
        || !toks[close + 4].tok.is_punct('&')
    {
        return None;
    }
    let Tok::Ident(name) = &toks[close + 5].tok else { return None };
    if close + 6 < hi && toks[close + 6].tok.is_punct(')') {
        Some((name.clone(), (lo + 1, close)))
    } else {
        None
    }
}

/// If the statement is `assert!(cond, …)` / `debug_assert!(cond, …)`,
/// the token range of `cond` (up to the first top-level `,`).
fn assert_cond_range(toks: &[Token], range: (usize, usize)) -> Option<(usize, usize)> {
    let (lo, hi) = range;
    let name = match toks.get(lo).map(|t| &t.tok) {
        Some(Tok::Ident(n)) => n.as_str(),
        _ => return None,
    };
    if !matches!(name, "assert" | "debug_assert") {
        return None;
    }
    if !toks.get(lo + 1)?.tok.is_punct('!') || !toks.get(lo + 2)?.tok.is_punct('(') {
        return None;
    }
    let close = matching_close(toks, lo + 2)?.min(hi);
    let comma = find_depth0(toks, lo + 3, close, |t| t.is_punct(',')).unwrap_or(close);
    Some((lo + 3, comma))
}

/// If the statement is `assert_eq!(a, b, …)` / `debug_assert_eq!`, the
/// ranges of `a` and `b`.
fn assert_eq_ranges(
    toks: &[Token],
    range: (usize, usize),
) -> Option<((usize, usize), (usize, usize))> {
    let (lo, hi) = range;
    let name = match toks.get(lo).map(|t| &t.tok) {
        Some(Tok::Ident(n)) => n.as_str(),
        _ => return None,
    };
    if !matches!(name, "assert_eq" | "debug_assert_eq") {
        return None;
    }
    if !toks.get(lo + 1)?.tok.is_punct('!') || !toks.get(lo + 2)?.tok.is_punct('(') {
        return None;
    }
    let close = matching_close(toks, lo + 2)?.min(hi);
    let c1 = find_depth0(toks, lo + 3, close, |t| t.is_punct(','))?;
    let c2 = find_depth0(toks, c1 + 1, close, |t| t.is_punct(',')).unwrap_or(close);
    Some(((lo + 3, c1), (c1 + 1, c2)))
}

/// The scalar type name at a type position, skipping refs/`mut`/
/// lifetimes: `&mut u64` → `u64`, `Option<f64>` → `Option`.
fn type_name_at(toks: &[Token], mut at: usize, hi: usize) -> Option<String> {
    while at < hi.min(toks.len()) {
        match &toks[at].tok {
            Tok::Punct('&' | '*') | Tok::Lifetime(_) => at += 1,
            Tok::Op("&&") => at += 1,
            Tok::Ident(s) if matches!(s.as_str(), "mut" | "dyn" | "const" | "impl") => at += 1,
            Tok::Ident(s) => return Some(s.clone()),
            _ => return None,
        }
    }
    None
}

/// Meets an evaluated value with a declared scalar type.
fn apply_decl_type(val: AbsVal, ty: Option<&str>) -> AbsVal {
    let Some(ty) = ty else { return val };
    if let Some(kind) = IntKind::from_name(ty) {
        return match val {
            AbsVal::Int { iv, .. } => {
                AbsVal::Int { iv: iv.meet(&kind.range()).unwrap_or(kind.range()), kind: Some(kind) }
            }
            _ => AbsVal::int_of_kind(kind),
        };
    }
    match ty {
        "f64" | "f32" => match val {
            AbsVal::Float(_) => val,
            _ => AbsVal::float_top(),
        },
        "bool" => AbsVal::Bool,
        _ => val,
    }
}

/// Constrains a computed return value by the declared return type.
fn constrain_ret(val: AbsVal, ty: Option<&str>) -> AbsVal {
    match ty {
        Some(ty) if IntKind::from_name(ty).is_some() || matches!(ty, "f64" | "f32" | "bool") => {
            apply_decl_type(val, Some(ty))
        }
        // `Option<T>`, references, unit, generics: no constraint — and no
        // *value* either, since the summary would claim too much.
        Some(_) => AbsVal::Top,
        None => val,
    }
}

/// The declared return type name from a signature range (`-> u64`).
fn declared_ret(toks: &[Token], sig: (usize, usize)) -> Option<String> {
    let arrow = find_depth0(toks, sig.0, sig.1, |t| t.is_op("->"))?;
    type_name_at(toks, arrow + 1, sig.1)
}

/// The declared type of parameter `name` in the signature: finds
/// `name: TYPE` at parameter-list depth.
fn param_type(
    toks: &[Token],
    sig: (usize, usize),
    name: &str,
    _is_closure: bool,
) -> Option<String> {
    let (lo, hi) = (sig.0, sig.1.min(toks.len()));
    for i in lo..hi {
        let Tok::Ident(n) = &toks[i].tok else { continue };
        if n != name || !toks.get(i + 1).is_some_and(|t| t.tok.is_punct(':')) {
            continue;
        }
        // Not a struct-literal / path position.
        if i > 0 && toks[i - 1].tok.is_op("::") {
            continue;
        }
        return type_name_at(toks, i + 2, hi);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::sema::Model;
    use crate::source::SourceFile;

    fn model_of(src: &str) -> (Vec<SourceFile>, Config) {
        (
            vec![SourceFile::parse("crates/core/src/x.rs", src)],
            Config { sema_roots: vec!["run_study".into()], ..Config::default() },
        )
    }

    fn env_at<'m>(model: &'m Model, fn_name: &str, stmt: usize) -> &'m Env {
        let id = model.nodes.iter().position(|n| n.simple == fn_name).expect("node");
        model.absint.fns[id]
            .as_ref()
            .expect("analyzed")
            .envs
            .get(stmt)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("stmt {stmt} of {fn_name} unreached"))
    }

    fn summary<'m>(model: &'m Model, fn_name: &str) -> &'m FnSummary {
        let id = model.nodes.iter().position(|n| n.simple == fn_name).expect("node");
        model.absint.summaries[id].as_ref().expect("summary")
    }

    #[test]
    fn straight_line_intervals_and_types() {
        let (files, cfg) = model_of(
            "pub fn run_study(n: u64) -> u64 {\n\
                 let base: u64 = 100;\n\
                 let scaled = base / 4;\n\
                 scaled + 1\n\
             }\n",
        );
        let model = Model::build(&files, &cfg);
        let env = env_at(&model, "run_study", 3);
        assert_eq!(
            env.get("scaled"),
            Some(&AbsVal::Int { iv: Interval::exact(25), kind: Some(IntKind::U64) })
        );
        assert_eq!(
            env.get("n"),
            Some(&AbsVal::Int { iv: IntKind::U64.range(), kind: Some(IntKind::U64) })
        );
        let s = summary(&model, "run_study");
        assert_eq!(s.ret, AbsVal::Int { iv: Interval::exact(26), kind: Some(IntKind::U64) });
    }

    #[test]
    fn branch_refinement_bounds_the_variable() {
        let (files, cfg) = model_of(
            "const SCALE: u64 = 1000;\n\
             pub fn run_study(sum: u64) -> u64 {\n\
                 if sum < SCALE {\n\
                     let rest = SCALE - sum;\n\
                     rest\n\
                 } else {\n\
                     0\n\
                 }\n\
             }\n",
        );
        let model = Model::build(&files, &cfg);
        assert_eq!(
            model.absint.consts.get("SCALE"),
            Some(&AbsVal::Int { iv: Interval::exact(1000), kind: Some(IntKind::U64) })
        );
        let id = model.nodes.iter().position(|n| n.simple == "run_study").expect("node");
        let fa = model.absint.fns[id].as_ref().expect("analyzed");
        // Inside the branch `sum` is refined to [0, 999], so the
        // subtraction event is provable and the result is bounded.
        let let_stmt = fa
            .envs
            .iter()
            .position(|e| {
                e.as_ref().is_some_and(|env| {
                    env.get("sum")
                        == Some(&AbsVal::Int {
                            iv: Interval::new(0, 999),
                            kind: Some(IntKind::U64),
                        })
                })
            })
            .expect("refined branch env exists");
        let env = fa.envs[let_stmt].as_ref().expect("present");
        assert!(env.get("rest").is_none(), "rest is defined after this statement");
        let subs: Vec<_> = fa
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::UncheckedSub { lhs, rhs, .. } => Some((*lhs, *rhs)),
                _ => None,
            })
            .collect();
        assert_eq!(subs.len(), 1, "{:?}", fa.events);
        let (lhs, rhs) = subs[0];
        assert!(
            lhs.interval().expect("int").lo >= rhs.interval().expect("int").hi,
            "the refined operands prove the subtraction: {} - {}",
            lhs.render(),
            rhs.render()
        );
    }

    #[test]
    fn guard_pairs_survive_the_right_paths() {
        let (files, cfg) = model_of(
            "pub fn run_study(a: u64, b: u64) -> u64 {\n\
                 if a >= b {\n\
                     let d = a - b;\n\
                     return d;\n\
                 }\n\
                 let e = b - a;\n\
                 e\n\
             }\n",
        );
        let model = Model::build(&files, &cfg);
        let id = model.nodes.iter().position(|n| n.simple == "run_study").expect("node");
        let fa = model.absint.fns[id].as_ref().expect("analyzed");
        let pair_envs: Vec<(usize, bool, bool)> = fa
            .envs
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                e.as_ref().map(|env| {
                    (
                        i,
                        env.contains_key(&pair_key("a", "b")),
                        env.contains_key(&pair_key("b", "a")),
                    )
                })
            })
            .collect();
        assert!(
            pair_envs.iter().any(|&(_, ab, _)| ab),
            "the then-branch proves a >= b: {pair_envs:?}"
        );
        assert!(
            pair_envs.iter().any(|&(_, _, ba)| ba),
            "the fall-through proves b >= a (negated guard): {pair_envs:?}"
        );
    }

    #[test]
    fn neq_refinement_trims_the_interval_ends() {
        let (files, cfg) = model_of(
            "pub fn run_study(n: u64) -> u64 {\n\
                 let m = n.min(10);\n\
                 if m != 0 {\n\
                     let inside = m;\n\
                     return inside;\n\
                 }\n\
                 m\n\
             }\n",
        );
        let model = Model::build(&files, &cfg);
        let id = model.nodes.iter().position(|n| n.simple == "run_study").expect("node");
        let fa = model.absint.fns[id].as_ref().expect("analyzed");
        let intervals: Vec<Interval> = fa
            .envs
            .iter()
            .flatten()
            .filter_map(|env| env.get("m").and_then(AbsVal::interval))
            .collect();
        // `m != 0` on [0, 10] trims the matching end inside the branch …
        assert!(
            intervals.contains(&Interval::new(1, 10)),
            "then-branch trims the lower end: {intervals:?}"
        );
        // … and the negated edge pins the fall-through to the singleton.
        assert!(
            intervals.contains(&Interval::exact(0)),
            "fall-through keeps only the excluded point: {intervals:?}"
        );
    }

    #[test]
    fn loops_widen_to_the_type_fence_and_terminate() {
        let (files, cfg) = model_of(
            "pub fn run_study(xs: &[u64]) -> u64 {\n\
                 let mut total: u64 = 0;\n\
                 for x in 0..10 {\n\
                     total = total + x;\n\
                 }\n\
                 total\n\
             }\n",
        );
        let model = Model::build(&files, &cfg);
        let id = model.nodes.iter().position(|n| n.simple == "run_study").expect("node");
        let fa = model.absint.fns[id].as_ref().expect("analyzed");
        assert!(!fa.diverged, "widening terminates the loop");
        // The loop variable is range-refined inside the body.
        let body_env = fa
            .envs
            .iter()
            .flatten()
            .find(|env| env.get("x").and_then(AbsVal::interval) == Some(Interval::new(0, 9)));
        assert!(body_env.is_some(), "for-range refinement binds x to [0, 9]");
    }

    #[test]
    fn interprocedural_summaries_flow_to_callers() {
        let (files, cfg) = model_of(
            "fn cap(x: u64) -> u64 { x.min(16) }\n\
             pub fn run_study(n: u64) -> u64 {\n\
                 let c = cap(n);\n\
                 c + 1\n\
             }\n",
        );
        let model = Model::build(&files, &cfg);
        assert_eq!(
            summary(&model, "cap").ret,
            AbsVal::Int { iv: Interval::new(0, 16), kind: Some(IntKind::U64) }
        );
        assert_eq!(
            summary(&model, "run_study").ret,
            AbsVal::Int { iv: Interval::new(1, 17), kind: Some(IntKind::U64) }
        );
    }

    #[test]
    fn recursion_is_cut_at_top_not_diverging() {
        let (files, cfg) = model_of(
            "pub fn run_study(n: u64) -> u64 {\n\
                 if n == 0 { return 1; }\n\
                 run_study(n - 1) * 2\n\
             }\n",
        );
        let model = Model::build(&files, &cfg);
        assert!(model.absint.max_scc_len >= 1);
        let s = summary(&model, "run_study");
        // The recursive call is ⊤, so the product wraps to the type range
        // — but the summary still carries the type.
        assert_eq!(s.ret, AbsVal::Int { iv: IntKind::U64.range(), kind: Some(IntKind::U64) });
        let id = model.nodes.iter().position(|n| n.simple == "run_study").expect("node");
        assert!(!model.absint.fns[id].as_ref().expect("analyzed").diverged);
    }

    #[test]
    fn assert_preconditions_become_requirements() {
        let (files, cfg) = model_of(
            "pub fn weigh(share: f64) -> f64 {\n\
                 debug_assert!(share.is_finite() && share >= 0.0);\n\
                 share\n\
             }\n\
             pub fn run_study(x: f64) -> f64 { weigh(x) }\n",
        );
        let model = Model::build(&files, &cfg);
        let s = summary(&model, "weigh");
        assert_eq!(s.requires.len(), 1, "{:?}", s.requires);
        let (idx, name, req) = &s.requires[0];
        assert_eq!((*idx, name.as_str()), (0, "share"));
        let AbsVal::Float(f) = req else { panic!("{req:?}") };
        assert!(f.finite && f.non_negative, "{f}");
    }

    #[test]
    fn narrowing_recovers_a_widened_bound() {
        let (files, cfg) = model_of(
            "pub fn run_study(xs: &[u64]) -> usize {\n\
                 let mut i: usize = 0;\n\
                 while i < 10 {\n\
                     i += 1;\n\
                 }\n\
                 i\n\
             }\n",
        );
        let model = Model::build(&files, &cfg);
        let s = summary(&model, "run_study");
        let iv = s.ret.interval().expect("int return");
        assert_eq!(iv.lo, 0);
        assert!(
            iv.hi <= IntKind::Usize.range().hi,
            "the widened bound narrows back below the fence: {iv}"
        );
    }

    #[test]
    fn consts_cross_reference_and_join_collisions() {
        let files = vec![
            SourceFile::parse(
                "crates/core/src/a.rs",
                "pub const BASE: u64 = 250;\npub const LIMIT: u64 = BASE * 4;\n",
            ),
            SourceFile::parse("crates/core/src/b.rs", "pub const LIMIT: u64 = 2000;\n"),
        ];
        let cfg = Config { sema_roots: vec!["nothing".into()], ..Config::default() };
        let model = Model::build(&files, &cfg);
        assert_eq!(
            model.absint.consts.get("BASE").and_then(AbsVal::interval),
            Some(Interval::exact(250))
        );
        assert_eq!(
            model.absint.consts.get("LIMIT").and_then(AbsVal::interval),
            Some(Interval::new(1000, 2000)),
            "colliding names join"
        );
    }
}
