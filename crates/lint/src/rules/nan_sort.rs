//! `nan-unsafe-sort`: `partial_cmp(..).unwrap()` / `.expect(..)`
//! comparators.
//!
//! Every ranking path in this workspace sorts by f64 relevance or score.
//! `partial_cmp(...).unwrap()` panics the moment a NaN slips in (one bad
//! division in a bias model is enough), and `.expect("no NaN")` only
//! renames the crash. `f64::total_cmp` gives the IEEE 754 total order —
//! NaN sorts deterministically instead of killing the top-k query.

use crate::lexer::Tok;
use crate::rules::{emit, Finding, Rule, Severity};
use crate::source::SourceFile;

/// Flags `partial_cmp(...)` immediately chained into `.unwrap()` or
/// `.expect(...)`.
pub struct NanUnsafeSort;

impl Rule for NanUnsafeSort {
    fn id(&self) -> &'static str {
        "nan-unsafe-sort"
    }

    fn summary(&self) -> &'static str {
        "`partial_cmp(..).unwrap()/expect(..)`: use `f64::total_cmp` (NaN-total order)"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.tokens;
        for i in 0..toks.len() {
            if !toks[i].tok.is_ident("partial_cmp") {
                continue;
            }
            let Some(open) = toks.get(i + 1) else { continue };
            if !open.tok.is_punct('(') {
                continue;
            }
            // Find the matching close paren of the partial_cmp argument.
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // `.unwrap()` or `.expect(` directly after the call?
            let chained_panic = toks.get(j + 1).is_some_and(|t| t.tok.is_punct('.'))
                && toks
                    .get(j + 2)
                    .is_some_and(|t| t.tok.is_ident("unwrap") || t.tok.is_ident("expect"));
            if chained_panic && file.is_runtime_code(toks[i].line) {
                emit(self, file, toks[i].line, out);
            }
        }
    }
}
