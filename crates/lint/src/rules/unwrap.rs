//! `unwrap-in-lib` / `expect-in-lib`: panicking extractors in library
//! code.
//!
//! A single stray `unwrap()` in the measure or cube layer turns a
//! recoverable "this group has no observations" condition into a crash of
//! the whole study run. Library code must return `Result`/`Option` or use
//! a contextual `expect` whose message names the invariant; `expect` is a
//! separate, softer rule so the two can carry different severities in
//! `Lint.toml`.

use crate::lexer::Tok;
use crate::rules::{emit, Finding, Rule, Severity};
use crate::source::SourceFile;

/// Flags `.unwrap()` in library (non-test, non-bin) code.
pub struct UnwrapInLib;

impl Rule for UnwrapInLib {
    fn id(&self) -> &'static str {
        "unwrap-in-lib"
    }

    fn summary(&self) -> &'static str {
        "`.unwrap()` in library code: return Result/Option or use a contextual `expect`"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        check_method_call(self, file, "unwrap", out);
    }
}

/// Flags `.expect(...)` in library (non-test, non-bin) code.
pub struct ExpectInLib;

impl Rule for ExpectInLib {
    fn id(&self) -> &'static str {
        "expect-in-lib"
    }

    fn summary(&self) -> &'static str {
        "`.expect(...)` in library code: prefer Result, or document the invariant"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warn
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        check_method_call(self, file, "expect", out);
    }
}

/// Shared matcher: `.name(` method-call syntax in library code. The
/// leading `.` distinguishes calls from definitions (`fn unwrap`) and
/// paths (`Option::unwrap`); flagging only call sites keeps the rules
/// actionable.
fn check_method_call(rule: &dyn Rule, file: &SourceFile, name: &str, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for i in 1..toks.len() {
        if toks[i].tok.is_ident(name)
            && toks[i - 1].tok.is_punct('.')
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
            && file.is_library_code(toks[i].line)
        {
            emit(rule, file, toks[i].line, out);
        }
    }
}
