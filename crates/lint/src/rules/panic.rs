//! `panic-in-lib`: explicit panics in library code.
//!
//! `panic!`, `todo!`, and `unimplemented!` abort a whole unfairness-cube
//! build over one bad cell. `assert!`/`debug_assert!` are deliberately
//! *not* flagged — precondition checks that name their contract are how
//! the measure layer documents paper invariants (e.g. `p ∈ [0, 1]` for
//! the top-k distance), and `unreachable!` is allowed as the standard
//! marker for exhaustiveness the type system cannot see.

use crate::rules::{emit, Finding, Rule, Severity};
use crate::source::SourceFile;

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Flags `panic!` / `todo!` / `unimplemented!` in library code.
pub struct PanicInLib;

impl Rule for PanicInLib {
    fn id(&self) -> &'static str {
        "panic-in-lib"
    }

    fn summary(&self) -> &'static str {
        "`panic!`/`todo!`/`unimplemented!` in library code: return an error instead"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.tokens;
        for i in 0..toks.len().saturating_sub(1) {
            let is_macro = PANIC_MACROS.iter().any(|m| toks[i].tok.is_ident(m))
                && toks[i + 1].tok.is_punct('!');
            if is_macro && file.is_library_code(toks[i].line) {
                emit(self, file, toks[i].line, out);
            }
        }
    }
}
