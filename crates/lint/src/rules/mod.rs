//! The rule engine: the [`Rule`] trait, the [`Finding`] record, and the
//! registry of every shipped rule.
//!
//! Rules are lexical pattern matchers over [`SourceFile`] token streams —
//! deliberately so: the workspace is offline (no crates.io, so no dylint,
//! no clippy plugins, no syn) and the domain patterns that corrupt
//! fairness numbers (NaN-unsafe comparators, raw float equality, silent
//! float→int truncation) are all visible at token level.

use serde::{Deserialize, Serialize};

use crate::source::SourceFile;

mod cast;
mod float_eq;
mod instant;
mod must_use;
mod nan_sort;
mod panic;
mod process_exit;
mod unsafe_comment;
mod unwrap;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule identifier (e.g. `float-eq`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Trimmed source line, used both for display and for baseline
    /// matching (line-number-free, so pure code motion never goes stale).
    pub snippet: String,
    /// For semantic rules: the root → violation call path, one
    /// `qname (file:line)` hop per entry. Empty for lexical findings and
    /// for declaration-site findings.
    pub path: Vec<String>,
}

/// A domain-tailored static-analysis rule. `Sync` because the engine
/// fans the lexical pass out over `fbox_par::par_map` with one shared
/// rule set; rules are stateless (all state lives in `out`).
pub trait Rule: Sync {
    /// Stable kebab-case identifier, used in `Lint.toml`, baselines, and
    /// inline suppressions.
    fn id(&self) -> &'static str;

    /// One-line description for `--list-rules` and docs.
    fn summary(&self) -> &'static str;

    /// Default severity when `Lint.toml` says nothing.
    fn default_severity(&self) -> Severity;

    /// Emits findings for `file` into `out`. Implementations must do their
    /// own kind/test-span filtering via the `SourceFile` helpers; the
    /// engine applies severity, path scoping, suppressions, and baselines.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// How a finding is treated by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Not reported at all.
    Allow,
    /// Reported, never fails the build.
    Warn,
    /// Reported and fails `--deny` runs.
    Deny,
}

impl Severity {
    /// Parses a `Lint.toml` severity string.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }

    /// The `Lint.toml` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// Every shipped rule, in display order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(unwrap::UnwrapInLib),
        Box::new(unwrap::ExpectInLib),
        Box::new(panic::PanicInLib),
        Box::new(float_eq::FloatEq),
        Box::new(nan_sort::NanUnsafeSort),
        Box::new(instant::InstantOutsideTelemetry),
        Box::new(cast::FloatIntCast),
        Box::new(unsafe_comment::UnsafeNeedsSafetyComment),
        Box::new(process_exit::ProcessExit),
        Box::new(must_use::MissingMustUse),
    ]
}

/// Pushes a finding for `rule` at `line` unless suppressed inline.
pub(crate) fn emit(rule: &dyn Rule, file: &SourceFile, line: u32, out: &mut Vec<Finding>) {
    if file.is_suppressed(line, rule.id()) {
        return;
    }
    out.push(Finding {
        rule: rule.id().to_owned(),
        file: file.path.clone(),
        line,
        snippet: file.snippet(line),
        path: Vec::new(),
    });
}

/// Integer type names, for cast rules.
pub(crate) const INT_TYPES: &[&str] =
    &["usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_kebab_case() {
        let rules = all_rules();
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        assert!(ids.len() >= 8, "the tentpole promises at least 8 rules");
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate rule id");
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id {id} is not kebab-case"
            );
        }
    }

    #[test]
    fn severities_round_trip() {
        for sev in [Severity::Allow, Severity::Warn, Severity::Deny] {
            assert_eq!(Severity::parse(sev.as_str()), Some(sev));
        }
        assert_eq!(Severity::parse("forbid"), None);
    }
}
