//! `unsafe-needs-safety-comment`: every `unsafe` keyword must sit under
//! a `// SAFETY:` comment.
//!
//! The workspace currently has zero `unsafe` — this rule keeps it
//! honest if a future SIMD or arena optimisation introduces some: the
//! invariant being relied on must be written down within the three lines
//! above the keyword (or on its own line), matching the
//! `clippy::undocumented_unsafe_blocks` convention.

use crate::rules::{emit, Finding, Rule, Severity};
use crate::source::SourceFile;

/// Flags `unsafe` without a nearby `SAFETY:` comment.
pub struct UnsafeNeedsSafetyComment;

impl Rule for UnsafeNeedsSafetyComment {
    fn id(&self) -> &'static str {
        "unsafe-needs-safety-comment"
    }

    fn summary(&self) -> &'static str {
        "`unsafe` without a `// SAFETY:` comment in the 3 lines above"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for t in &file.lexed.tokens {
            if !t.tok.is_ident("unsafe") || file.in_test_span(t.line) {
                continue;
            }
            let documented = file.lexed.comments.iter().any(|c| {
                c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 3 >= t.line
            });
            if !documented {
                emit(self, file, t.line, out);
            }
        }
    }
}
