//! `instant-outside-telemetry`: ad-hoc timing outside the telemetry
//! crate.
//!
//! PR 1 centralised all wall-clock measurement in `fbox-telemetry`
//! (spans, histograms, and `Histogram::timer()`). Scattered
//! `Instant::now()` calls bypass the registry — their durations never
//! reach snapshots, reports, or `BENCH_*.json` diffs — and make hot
//! paths hard to audit. `Lint.toml` scopes the allowance to
//! `crates/telemetry`, the one place that is supposed to read the clock.

use crate::rules::{emit, Finding, Rule, Severity};
use crate::source::SourceFile;

/// Flags `Instant::now()` (the allowance for `crates/telemetry` comes
/// from `Lint.toml` path scoping, not from the rule itself).
pub struct InstantOutsideTelemetry;

impl Rule for InstantOutsideTelemetry {
    fn id(&self) -> &'static str {
        "instant-outside-telemetry"
    }

    fn summary(&self) -> &'static str {
        "`Instant::now()` outside crates/telemetry: use spans or `Histogram::timer()`"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.tokens;
        for i in 0..toks.len().saturating_sub(2) {
            if toks[i].tok.is_ident("Instant")
                && toks[i + 1].tok.is_op("::")
                && toks[i + 2].tok.is_ident("now")
                && file.is_runtime_code(toks[i].line)
            {
                emit(self, file, toks[i].line, out);
            }
        }
    }
}
