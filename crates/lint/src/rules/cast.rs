//! `float-int-cast`: silent float→integer truncation in rank arithmetic.
//!
//! `as usize`/`as u64` on a float expression truncates toward zero,
//! saturates on overflow, and maps NaN to 0 — all silently. In quota
//! allocation and EMD mass scaling those are exactly the conversions
//! that skew counts. Two lexically certain shapes are flagged:
//!
//! 1. a float *literal* cast to an integer type (`0.75 as usize`);
//! 2. a rounding-method call cast to an integer type
//!    (`x.floor() as usize`, `(m * S).round() as u64`).
//!
//! The fix is `fbox_core::measures::float::{floor_index, round_units}`,
//! the audited single conversion point (finiteness-checked, clamped).

use crate::lexer::Tok;
use crate::rules::{emit, Finding, Rule, Severity, INT_TYPES};
use crate::source::SourceFile;

const ROUNDING_METHODS: &[&str] = &["floor", "ceil", "round", "trunc"];

/// Flags float-literal and rounding-method casts to integer types.
pub struct FloatIntCast;

impl Rule for FloatIntCast {
    fn id(&self) -> &'static str {
        "float-int-cast"
    }

    fn summary(&self) -> &'static str {
        "float→int `as` cast in rank arithmetic: use measures::float conversion helpers"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.tokens;
        for i in 1..toks.len().saturating_sub(1) {
            if !toks[i].tok.is_ident("as") {
                continue;
            }
            let to_int = matches!(&toks[i + 1].tok,
                Tok::Ident(t) if INT_TYPES.contains(&t.as_str()));
            if !to_int || !file.is_runtime_code(toks[i].line) {
                continue;
            }
            let before = &toks[i - 1].tok;
            let flagged = match before {
                // Shape 1: `0.75 as usize`.
                Tok::Float(_) => true,
                // Shape 2: `<expr>.round() as u64` — walk back over `()`
                // to the method name and require a rounding method.
                Tok::Punct(')') => rounding_call_before(file, i - 1),
                _ => false,
            };
            if flagged {
                emit(self, file, toks[i].line, out);
            }
        }
    }
}

/// Whether the `)` at token index `close` closes a call of a rounding
/// method (`.floor()` etc.).
fn rounding_call_before(file: &SourceFile, close: usize) -> bool {
    let toks = &file.lexed.tokens;
    // Walk back to the matching `(`.
    let mut depth = 0isize;
    let mut j = close;
    loop {
        match &toks[j].tok {
            Tok::Punct(')') => depth += 1,
            Tok::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    // Expect `. method (` just before the open paren.
    if j < 2 {
        return false;
    }
    matches!(&toks[j - 1].tok,
        Tok::Ident(m) if ROUNDING_METHODS.contains(&m.as_str()))
        && toks[j - 2].tok.is_punct('.')
}
