//! `float-eq`: raw `==` / `!=` against a float literal.
//!
//! The EMD and exposure measures (paper Eqs. 1–2, §3.3.2) accumulate
//! dozens of f64 additions before anything is compared; `total == 0.0`
//! on such a sum silently misclassifies a nearly-empty histogram and
//! poisons every downstream unfairness cell. Comparisons must go through
//! the `fbox_core::measures::float` epsilon helpers.
//!
//! Lexical scope: only comparisons with a float *literal* operand are
//! flagged — identifier-vs-identifier equality needs type knowledge a
//! lexer does not have. That exactly covers the `x == 0.0` / `x != 1.0`
//! family that bit this codebase.

use crate::lexer::Tok;
use crate::rules::{emit, Finding, Rule, Severity};
use crate::source::SourceFile;

/// Flags `==`/`!=` where either operand is a float literal.
pub struct FloatEq;

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "float-eq"
    }

    fn summary(&self) -> &'static str {
        "raw f64/f32 `==`/`!=` against a float literal: use measures::float helpers"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.tokens;
        for i in 0..toks.len() {
            if !(toks[i].tok.is_op("==") || toks[i].tok.is_op("!=")) {
                continue;
            }
            let prev_float = i > 0 && matches!(toks[i - 1].tok, Tok::Float(_));
            let next_float = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Float(_)));
            if (prev_float || next_float) && file.is_runtime_code(toks[i].line) {
                emit(self, file, toks[i].line, out);
            }
        }
    }
}
