//! `process-exit`: `std::process::exit` outside the repro binaries.
//!
//! `exit` skips destructors — telemetry sinks are never flushed, span
//! guards never record, and a library caller loses the chance to handle
//! the failure. Only the `crates/repro` CLI binaries legitimately set a
//! process exit code (allowed via `Lint.toml` path scoping); everything
//! else returns errors upward.

use crate::rules::{emit, Finding, Rule, Severity};
use crate::source::SourceFile;

/// Flags `process::exit` calls (path allowance comes from `Lint.toml`).
pub struct ProcessExit;

impl Rule for ProcessExit {
    fn id(&self) -> &'static str {
        "process-exit"
    }

    fn summary(&self) -> &'static str {
        "`std::process::exit` outside crates/repro bins: propagate errors instead"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.tokens;
        for i in 0..toks.len().saturating_sub(2) {
            if toks[i].tok.is_ident("process")
                && toks[i + 1].tok.is_op("::")
                && toks[i + 2].tok.is_ident("exit")
                && !file.in_test_span(toks[i].line)
            {
                emit(self, file, toks[i].line, out);
            }
        }
    }
}
