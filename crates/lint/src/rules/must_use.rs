//! `missing-must-use`: pure measure constructors whose results can be
//! silently dropped.
//!
//! Constructors in the measure layer (`new`, `from_*`, `with_*`) are
//! pure: calling one and discarding the value is always a bug, typically
//! a half-edited pipeline that now measures nothing. `#[must_use]` turns
//! that silent no-op into a compiler warning (denied in CI). `Lint.toml`
//! scopes the rule to the measure modules via `apply-paths`.

use crate::lexer::Tok;
use crate::rules::{emit, Finding, Rule, Severity};
use crate::source::SourceFile;

/// Flags `pub fn new/from_*/with_*` returning a value without
/// `#[must_use]`.
pub struct MissingMustUse;

impl Rule for MissingMustUse {
    fn id(&self) -> &'static str {
        "missing-must-use"
    }

    fn summary(&self) -> &'static str {
        "pure measure constructor without `#[must_use]`"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.tokens;
        // Idents seen in the attribute run directly above the current
        // item; cleared by any non-attribute token.
        let mut pending_attrs: Vec<String> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            // Collect `#[...]` attribute idents.
            if toks[i].tok.is_punct('#') && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('[')) {
                let mut depth = 0usize;
                i += 1;
                while i < toks.len() {
                    match &toks[i].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) => pending_attrs.push(s.clone()),
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
                continue;
            }
            if !toks[i].tok.is_ident("pub") {
                pending_attrs.clear();
                i += 1;
                continue;
            }
            // `pub` possibly followed by a `(crate)`-style restriction.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.tok.is_punct('(')) {
                let mut depth = 0usize;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            let is_ctor_fn = toks.get(j).is_some_and(|t| t.tok.is_ident("fn"))
                && toks.get(j + 1).is_some_and(|t| match &t.tok {
                    Tok::Ident(name) => {
                        name == "new" || name.starts_with("from_") || name.starts_with("with_")
                    }
                    _ => false,
                });
            if is_ctor_fn
                && returns_value(toks, j + 1)
                && !pending_attrs.iter().any(|a| a == "must_use")
                && file.is_library_code(toks[i].line)
            {
                emit(self, file, toks[i].line, out);
            }
            pending_attrs.clear();
            i = j + 1;
        }
    }
}

/// Whether the fn whose name sits at token index `name_idx` has a return
/// type (`->` before the body `{` or a trait-decl `;`).
fn returns_value(toks: &[crate::lexer::Token], name_idx: usize) -> bool {
    let mut depth = 0isize;
    for t in &toks[name_idx..] {
        match &t.tok {
            Tok::Op("->") if depth == 0 => return true,
            Tok::Punct('{') | Tok::Punct(';') if depth == 0 => return false,
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            _ => {}
        }
    }
    false
}
