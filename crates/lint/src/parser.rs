//! A lightweight item-level parser on top of the [`lexer`](crate::lexer)
//! token stream.
//!
//! This is *not* a Rust grammar: it recovers exactly the structure the
//! semantic rules need — the item tree (modules, functions, impls,
//! traits, statics, use-trees) with line spans and token ranges, function
//! bodies, nested functions, and closures (including which call each
//! closure is an argument of, so `par_map(…, |x| …)` closures can become
//! call-graph roots). Everything it does not understand is skipped
//! token-by-token and recorded as a [`ParseError`]; the self-analysis
//! test asserts the real workspace parses with zero errors.

use crate::lexer::{Lexed, Tok};

/// Parsed structure of one source file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Flattened `use` imports: each is a `::`-separated path, expanded
    /// from grouped use-trees (`use a::{b, c::d}` yields two entries).
    pub uses: Vec<String>,
    /// Constructs the parser had to skip over.
    pub errors: Vec<ParseError>,
}

/// One recovery event: a token the item grammar could not place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// What was found.
    pub msg: String,
}

/// Item kinds the parser distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`.
    Mod,
    /// `fn name(…) { … }` (free function, method, or nested fn).
    Fn,
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl {
        /// Last path segment of the implemented type (`Self` target).
        type_name: String,
        /// Last path segment of the trait, for trait impls.
        trait_name: Option<String>,
    },
    /// `trait Name { … }` (default-bodied methods become child `Fn`s).
    Trait,
    /// One `use …;` item (paths are collected in [`ItemTree::uses`]).
    Use,
    /// `static NAME: T = …;`.
    Static {
        /// Whether this is `static mut`.
        mutable: bool,
        /// Type tokens between `:` and `=`, joined with spaces.
        ty: String,
    },
    /// `const NAME: T = …;`.
    Const,
    /// `struct` / `enum` / `union` definition.
    TypeDef,
    /// `type Name = …;` alias.
    TypeAlias,
    /// `macro_rules! name { … }`.
    MacroDef,
    /// An item-position macro invocation (`thread_local! { … }`).
    MacroCall,
    /// `extern "C" { … }` / `extern crate …;`.
    Extern,
    /// A closure literal inside a function body.
    Closure {
        /// Name of the innermost pending call the closure is an argument
        /// of (`par_map` in `par_map(&xs, |x| …)`), when syntactically
        /// evident.
        enclosing_call: Option<String>,
    },
}

/// One parsed item with its span, token range, and children.
#[derive(Debug)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// Declared name (`""` for impls, closures, extern blocks).
    pub name: String,
    /// 1-based line of the introducing keyword (`fn`, `impl`, …).
    pub line: u32,
    /// 1-based line where the item starts including its attributes
    /// (`== line` when there are none). Item-scoped suppressions attach
    /// here.
    pub attr_line: u32,
    /// 1-based last line of the item.
    pub end_line: u32,
    /// Half-open token index range `[start, end)` covering the whole
    /// item, attributes included.
    pub tokens: (usize, usize),
    /// Token range of the body block for fn-like items (`{ … }` content
    /// boundaries included) or the closure body expression.
    pub body: Option<(usize, usize)>,
    /// Nested items: module contents, impl/trait members, nested fns and
    /// closures inside bodies.
    pub children: Vec<Item>,
}

impl Item {
    /// Depth-first traversal over this item and all descendants.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Item)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }
}

impl ItemTree {
    /// Depth-first traversal over every item in the tree.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Item)) {
        for item in &self.items {
            item.walk(visit);
        }
    }
}

/// Keywords that can never start an expression call (`if (…)` is not a
/// call of a function named `if`).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield",
];

/// Whether `name` is a Rust keyword.
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Parses the token stream of one file into an [`ItemTree`].
pub fn parse(lexed: &Lexed) -> ItemTree {
    let mut p = Parser { lexed, pos: 0, tree: ItemTree::default() };
    let items = p.items_until(None);
    p.tree.items = items;
    p.tree
}

struct Parser<'a> {
    lexed: &'a Lexed,
    pos: usize,
    tree: ItemTree,
}

impl<'a> Parser<'a> {
    fn tok(&self, at: usize) -> Option<&'a Tok> {
        self.lexed.tokens.get(at).map(|t| &t.tok)
    }

    fn line(&self, at: usize) -> u32 {
        self.lexed
            .tokens
            .get(at.min(self.lexed.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(1)
    }

    /// Line of the last token strictly before `at` (for end-of-item spans).
    fn line_before(&self, at: usize) -> u32 {
        self.line(at.saturating_sub(1))
    }

    fn is_ident(&self, at: usize, name: &str) -> bool {
        matches!(self.tok(at), Some(Tok::Ident(s)) if s == name)
    }

    fn ident(&self, at: usize) -> Option<&'a str> {
        match self.tok(at) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    /// Parses items until `close` (a closing brace) or end of input.
    /// `self.pos` ends *on* the closing token, not past it.
    fn items_until(&mut self, close: Option<char>) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(tok) = self.tok(self.pos) {
            if let (Some(c), Tok::Punct(p)) = (close, tok) {
                if *p == c {
                    break;
                }
            }
            match self.item() {
                Some(item) => items.push(item),
                None => {
                    // Recovery: record and skip one token.
                    let line = self.line(self.pos);
                    if let Some(tok) = self.tok(self.pos) {
                        self.tree
                            .errors
                            .push(ParseError { line, msg: format!("unexpected token {tok:?}") });
                    }
                    self.pos += 1;
                }
            }
        }
        items
    }

    /// Skips `#[…]` / `#![…]` attributes at `self.pos`, returning the
    /// line of the first one (or `None` when there is no attribute).
    fn skip_attributes(&mut self) -> Option<u32> {
        let mut first = None;
        while matches!(self.tok(self.pos), Some(Tok::Punct('#'))) {
            let mut i = self.pos + 1;
            if matches!(self.tok(i), Some(Tok::Punct('!'))) {
                i += 1;
            }
            if !matches!(self.tok(i), Some(Tok::Punct('['))) {
                break;
            }
            first.get_or_insert(self.line(self.pos));
            let mut depth = 0usize;
            while let Some(tok) = self.tok(i) {
                match tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            self.pos = i + 1;
        }
        first
    }

    /// Skips visibility/linkage modifiers (`pub`, `pub(crate)`, `unsafe`,
    /// `async`, `default`, `extern "C"` before `fn`).
    fn skip_modifiers(&mut self) {
        loop {
            match self.ident(self.pos) {
                Some("pub") => {
                    self.pos += 1;
                    if matches!(self.tok(self.pos), Some(Tok::Punct('('))) {
                        self.skip_balanced('(', ')');
                    }
                }
                Some("unsafe" | "async" | "default") => self.pos += 1,
                Some("extern")
                    if matches!(self.tok(self.pos + 1), Some(Tok::Str(_)))
                        && self.is_ident(self.pos + 2, "fn") =>
                {
                    self.pos += 2;
                }
                _ => return,
            }
        }
    }

    /// From an opening delimiter at `self.pos`, advances past its match.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(tok) = self.tok(self.pos) {
            match tok {
                Tok::Punct(c) if *c == open => depth += 1,
                Tok::Punct(c) if *c == close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips a generic parameter/argument list starting at `<`. `<<`/`>>`
    /// lex as shift operators, so they count twice.
    fn skip_generics(&mut self) {
        let mut depth = 0isize;
        while let Some(tok) = self.tok(self.pos) {
            match tok {
                Tok::Punct('<') => depth += 1,
                Tok::Op("<<") => depth += 2,
                Tok::Punct('>') => depth -= 1,
                Tok::Op(">>") => depth -= 2,
                _ => {}
            }
            self.pos += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    /// Tries to parse one item at `self.pos`. Returns `None` (with
    /// `self.pos` unchanged) when the next token cannot start an item.
    fn item(&mut self) -> Option<Item> {
        let start = self.pos;
        let attr_line = self.skip_attributes();
        self.skip_modifiers();
        let kw_pos = self.pos;
        let result = match self.ident(kw_pos) {
            Some("mod") => self.item_mod(start, attr_line),
            Some("fn") => self.item_fn(start, attr_line),
            Some("impl") => self.item_impl(start, attr_line),
            Some("trait") => self.item_trait(start, attr_line),
            Some("use") => self.item_use(start, attr_line),
            Some("static") => self.item_static(start, attr_line),
            Some("const") if !self.is_ident(kw_pos + 1, "fn") => self.item_const(start, attr_line),
            Some("const") => {
                self.pos += 1; // `const fn`
                self.item_fn(start, attr_line)
            }
            Some("struct" | "enum" | "union") => self.item_typedef(start, attr_line),
            Some("type") => self.item_semi(start, attr_line, ItemKind::TypeAlias, true),
            Some("macro_rules") => self.item_macro_def(start, attr_line),
            Some("extern") => self.item_extern(start, attr_line),
            Some(name) if !is_keyword(name) => self.item_macro_call(start, attr_line),
            _ => None,
        };
        if result.is_none() {
            self.pos = start;
        }
        result
    }

    // One parameter per `Item` field being assembled; bundling them
    // into a builder would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        kind: ItemKind,
        name: String,
        start: usize,
        attr_line: Option<u32>,
        kw_pos: usize,
        body: Option<(usize, usize)>,
        children: Vec<Item>,
    ) -> Item {
        let line = self.line(kw_pos);
        Item {
            kind,
            name,
            line,
            attr_line: attr_line.unwrap_or(line),
            end_line: self.line_before(self.pos),
            tokens: (start, self.pos),
            body,
            children,
        }
    }

    /// `mod name;` or `mod name { items }`.
    fn item_mod(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        let name = self.ident(self.pos)?.to_owned();
        self.pos += 1;
        let children = match self.tok(self.pos) {
            Some(Tok::Punct(';')) => {
                self.pos += 1;
                Vec::new()
            }
            Some(Tok::Punct('{')) => {
                self.pos += 1;
                let items = self.items_until(Some('}'));
                self.pos += 1; // closing brace
                items
            }
            _ => return None,
        };
        Some(self.finish(ItemKind::Mod, name, start, attr_line, kw, None, children))
    }

    /// `fn name …(…) … { body }` or a bodiless trait-method `fn …;`.
    fn item_fn(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        let name = self.ident(self.pos)?.to_owned();
        self.pos += 1;
        if matches!(self.tok(self.pos), Some(Tok::Punct('<'))) {
            self.skip_generics();
        }
        if !matches!(self.tok(self.pos), Some(Tok::Punct('('))) {
            return None;
        }
        self.skip_balanced('(', ')');
        // Return type / where clause: scan to the body `{` or a `;`.
        // Bracketed groups are skipped whole — an array return type
        // like `[f64; 3]` carries a `;` that must not end the item.
        loop {
            match self.tok(self.pos) {
                Some(Tok::Punct('{')) => break,
                Some(Tok::Punct(';')) => {
                    self.pos += 1;
                    return Some(self.finish(
                        ItemKind::Fn,
                        name,
                        start,
                        attr_line,
                        kw,
                        None,
                        vec![],
                    ));
                }
                Some(Tok::Punct('<')) => self.skip_generics(),
                Some(Tok::Punct('(')) => self.skip_balanced('(', ')'),
                Some(Tok::Punct('[')) => self.skip_balanced('[', ']'),
                Some(_) => self.pos += 1,
                None => {
                    return Some(self.finish(
                        ItemKind::Fn,
                        name,
                        start,
                        attr_line,
                        kw,
                        None,
                        vec![],
                    ))
                }
            }
        }
        let (body, children) = self.fn_body();
        Some(self.finish(ItemKind::Fn, name, start, attr_line, kw, Some(body), children))
    }

    /// Parses a `{ … }` function body at `self.pos`, collecting nested
    /// fns and closures as children. Returns the body token range.
    fn fn_body(&mut self) -> ((usize, usize), Vec<Item>) {
        let open = self.pos;
        self.pos += 1; // `{`
        let mut children = Vec::new();
        let mut depth = 1usize;
        // Innermost pending call names: `par_map(` pushes, `)` pops.
        let mut calls: Vec<Option<String>> = Vec::new();
        let mut ctx = MatchCtx::new();
        while let Some(tok) = self.tok(self.pos) {
            ctx.see(tok);
            match tok {
                Tok::Punct('{') => {
                    depth += 1;
                    self.pos += 1;
                }
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    self.pos += 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Punct('(') => {
                    let callee = match self.ident(self.pos.wrapping_sub(1)) {
                        Some(name) if !is_keyword(name) => Some(name.to_owned()),
                        _ => None,
                    };
                    calls.push(callee);
                    self.pos += 1;
                }
                Tok::Punct(')') => {
                    calls.pop();
                    self.pos += 1;
                }
                Tok::Ident(s) if s == "fn" => {
                    let start = self.pos;
                    match self.item_fn(start, None) {
                        Some(item) => children.push(item),
                        None => self.pos = start + 1,
                    }
                }
                Tok::Punct('|') | Tok::Op("||") if self.closure_starts_here() => {
                    if ctx.pipe_is_pattern(self.tok(self.pos.wrapping_sub(1))) {
                        // Leading `|` of a match-arm or-pattern, not a closure.
                        self.pos += 1;
                    } else if let Some(item) = self.closure(calls.last().cloned().flatten()) {
                        children.push(item);
                    } else {
                        self.pos += 1;
                    }
                }
                _ => self.pos += 1,
            }
        }
        ((open, self.pos), children)
    }

    /// Whether the `|` / `||` at `self.pos` begins a closure rather than a
    /// binary/bitwise or. A closure can only follow a token that *ends
    /// nothing*: an opening delimiter, a separator, an operator, or the
    /// `move`/`return`/`else`/`in` keywords. After an identifier, literal,
    /// or closing delimiter, `|` is an operator.
    ///
    /// One residual ambiguity needs more than lookbehind: after `{` or `,`
    /// a `|` is a closure opener in expression position but the *leading
    /// pipe of an or-pattern* inside a match body (`match x { | A | B =>`).
    /// [`MatchCtx`] carries the one extra token of memory required — was
    /// the innermost brace opened by a `match` scrutinee? — see DESIGN.md.
    fn closure_starts_here(&self) -> bool {
        let Some(prev) = self.tok(self.pos.wrapping_sub(1)) else {
            return true; // body start
        };
        match prev {
            Tok::Punct('(' | '{' | '[' | ',' | ';' | '=' | ':') => true,
            Tok::Op("=>" | "==" | "&&" | "||" | "+=" | "-=" | "..") => true,
            Tok::Ident(s) => matches!(s.as_str(), "move" | "return" | "else" | "in" | "box"),
            _ => false,
        }
    }

    /// Parses a closure at `self.pos` (`|params| body` / `|| body` /
    /// preceded by `move`). The body is either a brace block (parsed like
    /// a fn body) or a bare expression, which extends to the first `,`,
    /// `)`, `]`, `}` or `;` at the closure's own nesting depth.
    fn closure(&mut self, enclosing_call: Option<String>) -> Option<Item> {
        let start = self.pos;
        match self.tok(self.pos) {
            Some(Tok::Op("||")) => self.pos += 1,
            Some(Tok::Punct('|')) => {
                self.pos += 1;
                // Parameter list: scan to the closing `|` at depth 0.
                let mut depth = 0usize;
                loop {
                    match self.tok(self.pos) {
                        Some(Tok::Punct('(' | '[' | '<')) => depth += 1,
                        Some(Tok::Punct(')' | ']' | '>')) => depth = depth.saturating_sub(1),
                        Some(Tok::Punct('|')) if depth == 0 => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => {}
                        None => return None,
                    }
                    self.pos += 1;
                }
            }
            _ => return None,
        }
        // Optional return type `-> T` before a brace body.
        while matches!(self.tok(self.pos), Some(Tok::Op("->")))
            || matches!(self.tok(self.pos), Some(Tok::Ident(_) | Tok::Op("::")))
                && matches!(self.tok(self.pos.wrapping_sub(1)), Some(Tok::Op("->" | "::")))
        {
            self.pos += 1;
        }
        let (body, children) = if matches!(self.tok(self.pos), Some(Tok::Punct('{'))) {
            self.fn_body()
        } else {
            self.expression_body()
        };
        let kind = ItemKind::Closure { enclosing_call };
        let line = self.line(start);
        Some(Item {
            kind,
            name: String::new(),
            line,
            attr_line: line,
            end_line: self.line_before(self.pos),
            tokens: (start, self.pos),
            body: Some(body),
            children,
        })
    }

    /// An expression-bodied closure body: consumed until the enclosing
    /// delimiter closes or a top-level `,` / `;` ends the expression.
    /// Nested closures inside it are still collected.
    fn expression_body(&mut self) -> ((usize, usize), Vec<Item>) {
        let open = self.pos;
        let mut children = Vec::new();
        let mut depth = 0usize;
        let mut calls: Vec<Option<String>> = Vec::new();
        let mut ctx = MatchCtx::new();
        while let Some(tok) = self.tok(self.pos) {
            ctx.see(tok);
            match tok {
                Tok::Punct('(' | '[') => {
                    if matches!(tok, Tok::Punct('(')) {
                        let callee = match self.ident(self.pos.wrapping_sub(1)) {
                            Some(name) if !is_keyword(name) => Some(name.to_owned()),
                            _ => None,
                        };
                        calls.push(callee);
                    }
                    depth += 1;
                    self.pos += 1;
                }
                Tok::Punct('{') => {
                    depth += 1;
                    self.pos += 1;
                }
                Tok::Punct(')' | ']' | '}') => {
                    if depth == 0 {
                        break;
                    }
                    if matches!(tok, Tok::Punct(')')) {
                        calls.pop();
                    }
                    depth -= 1;
                    self.pos += 1;
                }
                Tok::Punct(',' | ';') if depth == 0 => break,
                Tok::Punct('|') | Tok::Op("||") if self.closure_starts_here() => {
                    if ctx.pipe_is_pattern(self.tok(self.pos.wrapping_sub(1))) {
                        // Leading `|` of a match-arm or-pattern, not a closure.
                        self.pos += 1;
                    } else if let Some(item) = self.closure(calls.last().cloned().flatten()) {
                        children.push(item);
                    } else {
                        self.pos += 1;
                    }
                }
                _ => self.pos += 1,
            }
        }
        ((open, self.pos), children)
    }

    /// `impl …` with optional generics and `Trait for` prefix.
    fn item_impl(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        if matches!(self.tok(self.pos), Some(Tok::Punct('<'))) {
            self.skip_generics();
        }
        // Collect path idents up to `for`, `where`, or `{`.
        let mut first_path: Vec<String> = Vec::new();
        let mut second_path: Vec<String> = Vec::new();
        let mut saw_for = false;
        loop {
            match self.tok(self.pos) {
                Some(Tok::Punct('{')) => break,
                Some(Tok::Ident(s)) if s == "for" => {
                    saw_for = true;
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s == "where" => {
                    // Skip the where clause to the body.
                    while !matches!(self.tok(self.pos), Some(Tok::Punct('{')) | None) {
                        if matches!(self.tok(self.pos), Some(Tok::Punct('<'))) {
                            self.skip_generics();
                        } else {
                            self.pos += 1;
                        }
                    }
                }
                Some(Tok::Ident(s)) => {
                    let target = if saw_for { &mut second_path } else { &mut first_path };
                    target.push(s.clone());
                    self.pos += 1;
                }
                Some(Tok::Punct('<')) => self.skip_generics(),
                Some(_) => self.pos += 1,
                None => return None,
            }
        }
        let (type_name, trait_name) = if saw_for {
            (second_path.pop().unwrap_or_default(), first_path.pop())
        } else {
            (first_path.pop().unwrap_or_default(), None)
        };
        self.pos += 1; // `{`
        let children = self.items_until(Some('}'));
        self.pos += 1; // `}`
        let kind = ItemKind::Impl { type_name, trait_name };
        Some(self.finish(kind, String::new(), start, attr_line, kw, None, children))
    }

    /// `trait Name … { members }`.
    fn item_trait(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        let name = self.ident(self.pos)?.to_owned();
        self.pos += 1;
        loop {
            match self.tok(self.pos) {
                Some(Tok::Punct('{')) => break,
                Some(Tok::Punct('<')) => self.skip_generics(),
                Some(_) => self.pos += 1,
                None => return None,
            }
        }
        self.pos += 1;
        let children = self.items_until(Some('}'));
        self.pos += 1;
        Some(self.finish(ItemKind::Trait, name, start, attr_line, kw, None, children))
    }

    /// `use path::{tree};` — expands the tree into [`ItemTree::uses`].
    fn item_use(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        let mut prefix: Vec<String> = Vec::new();
        let mut stack: Vec<usize> = Vec::new(); // prefix lengths at `{`
        let mut uses: Vec<String> = Vec::new();
        // Whether the prefix ends in a leaf not yet emitted — cleared when
        // a group opens or closes so `use a::{b, c};` emits only `a::b`
        // and `a::c`, never the bare `a` prefix.
        let mut pending = false;
        loop {
            match self.tok(self.pos) {
                Some(Tok::Punct(';')) | None => {
                    if pending && !prefix.is_empty() {
                        uses.push(prefix.join("::"));
                    }
                    self.pos += 1;
                    break;
                }
                Some(Tok::Ident(s)) if s == "as" => {
                    // Alias: the aliased name replaces the last segment for
                    // resolution purposes; keep the real path, skip alias.
                    self.pos += 2;
                }
                Some(Tok::Ident(s)) => {
                    prefix.push(s.clone());
                    pending = true;
                    self.pos += 1;
                }
                Some(Tok::Punct('*')) => {
                    prefix.push("*".to_owned());
                    pending = true;
                    self.pos += 1;
                }
                Some(Tok::Op("::")) => self.pos += 1,
                Some(Tok::Punct('{')) => {
                    stack.push(prefix.len());
                    pending = false;
                    self.pos += 1;
                }
                Some(Tok::Punct(',')) => {
                    if pending && !prefix.is_empty() {
                        uses.push(prefix.join("::"));
                    }
                    let keep = stack.last().copied().unwrap_or(0);
                    prefix.truncate(keep);
                    pending = false;
                    self.pos += 1;
                }
                Some(Tok::Punct('}')) => {
                    if pending && !prefix.is_empty() {
                        uses.push(prefix.join("::"));
                    }
                    let keep = stack.pop().unwrap_or(0);
                    prefix.truncate(keep);
                    pending = false;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        self.tree.uses.extend(uses);
        Some(self.finish(ItemKind::Use, String::new(), start, attr_line, kw, None, vec![]))
    }

    /// `static [mut] NAME: Type = …;`.
    fn item_static(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        let mutable = self.is_ident(self.pos, "mut");
        if mutable {
            self.pos += 1;
        }
        let name = self.ident(self.pos)?.to_owned();
        self.pos += 1;
        // Type tokens between `:` and `=` (or `;`).
        let mut ty = String::new();
        if matches!(self.tok(self.pos), Some(Tok::Punct(':'))) {
            self.pos += 1;
            while let Some(tok) = self.tok(self.pos) {
                match tok {
                    Tok::Punct('=') | Tok::Punct(';') => break,
                    Tok::Ident(s) => {
                        if !ty.is_empty() {
                            ty.push(' ');
                        }
                        ty.push_str(s);
                        self.pos += 1;
                    }
                    _ => self.pos += 1,
                }
            }
        }
        self.skip_to_semi();
        let kind = ItemKind::Static { mutable, ty };
        Some(self.finish(kind, name, start, attr_line, kw, None, vec![]))
    }

    /// `const NAME: Type = …;`.
    fn item_const(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        // `const _: () = …;` uses `_`, which lexes as an ident.
        let name = self.ident(self.pos)?.to_owned();
        self.pos += 1;
        self.skip_to_semi();
        Some(self.finish(ItemKind::Const, name, start, attr_line, kw, None, vec![]))
    }

    /// `struct` / `enum` / `union` with `;`, `(…);` or `{…}` body.
    fn item_typedef(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        let name = self.ident(self.pos)?.to_owned();
        self.pos += 1;
        loop {
            match self.tok(self.pos) {
                Some(Tok::Punct(';')) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Punct('{')) => {
                    self.skip_balanced('{', '}');
                    break;
                }
                Some(Tok::Punct('(')) => {
                    self.skip_balanced('(', ')');
                    // Tuple struct: consume the trailing `;` (and any
                    // where clause before it).
                }
                Some(Tok::Punct('<')) => self.skip_generics(),
                Some(_) => self.pos += 1,
                None => break,
            }
        }
        Some(self.finish(ItemKind::TypeDef, name, start, attr_line, kw, None, vec![]))
    }

    /// `type Name … = …;` and other single-semicolon items.
    fn item_semi(
        &mut self,
        start: usize,
        attr_line: Option<u32>,
        kind: ItemKind,
        named: bool,
    ) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        let name = if named { self.ident(self.pos)?.to_owned() } else { String::new() };
        self.skip_to_semi();
        Some(self.finish(kind, name, start, attr_line, kw, None, vec![]))
    }

    /// `macro_rules! name { … }`.
    fn item_macro_def(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1; // macro_rules
        if !matches!(self.tok(self.pos), Some(Tok::Punct('!'))) {
            return None;
        }
        self.pos += 1;
        let name = self.ident(self.pos)?.to_owned();
        self.pos += 1;
        if !matches!(self.tok(self.pos), Some(Tok::Punct('{'))) {
            return None;
        }
        self.skip_balanced('{', '}');
        Some(self.finish(ItemKind::MacroDef, name, start, attr_line, kw, None, vec![]))
    }

    /// An item-position macro invocation: `path::name! { … }` or
    /// `name!(…);`. Only accepted when the `!` is present — anything else
    /// is not an item and falls through to recovery.
    fn item_macro_call(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        // Path segments: ident (:: ident)*.
        self.pos += 1;
        while matches!(self.tok(self.pos), Some(Tok::Op("::")))
            && matches!(self.tok(self.pos + 1), Some(Tok::Ident(_)))
        {
            self.pos += 2;
        }
        if !matches!(self.tok(self.pos), Some(Tok::Punct('!'))) {
            return None;
        }
        self.pos += 1;
        match self.tok(self.pos) {
            Some(Tok::Punct('{')) => self.skip_balanced('{', '}'),
            Some(Tok::Punct('(')) => {
                self.skip_balanced('(', ')');
                self.skip_to_semi();
            }
            Some(Tok::Punct('[')) => {
                self.skip_balanced('[', ']');
                self.skip_to_semi();
            }
            _ => return None,
        }
        Some(self.finish(ItemKind::MacroCall, String::new(), start, attr_line, kw, None, vec![]))
    }

    /// `extern crate name;` or `extern "C" { … }`.
    fn item_extern(&mut self, start: usize, attr_line: Option<u32>) -> Option<Item> {
        let kw = self.pos;
        self.pos += 1;
        if self.is_ident(self.pos, "crate") {
            self.skip_to_semi();
        } else {
            if matches!(self.tok(self.pos), Some(Tok::Str(_))) {
                self.pos += 1;
            }
            if matches!(self.tok(self.pos), Some(Tok::Punct('{'))) {
                self.skip_balanced('{', '}');
            } else {
                self.skip_to_semi();
            }
        }
        Some(self.finish(ItemKind::Extern, String::new(), start, attr_line, kw, None, vec![]))
    }

    /// Advances past the next `;` at brace/paren depth 0 (initializer
    /// expressions may contain `;` inside nested blocks).
    fn skip_to_semi(&mut self) {
        let mut depth = 0usize;
        while let Some(tok) = self.tok(self.pos) {
            match tok {
                Tok::Punct('{' | '(' | '[') => depth += 1,
                Tok::Punct('}' | ')' | ']') => depth = depth.saturating_sub(1),
                Tok::Punct(';') if depth == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// Tracks, per open brace, whether it opened a `match` body — the one
/// token of memory needed to tell a leading or-pattern pipe
/// (`match x { | A | B => … }`) from a closure opener, since both can
/// follow `{` or `,`. The decision cannot be made from lookbehind alone:
/// it depends on *why* the innermost brace was opened.
///
/// A brace opens a match body exactly when a `match` keyword was seen at
/// the same paren/bracket depth and no `;` intervened; parens reset the
/// question (`f(a, |x| x)` inside an arm is a closure again because its
/// group depth differs from the arm's).
struct MatchCtx {
    /// Current paren/bracket nesting depth.
    group_depth: usize,
    /// Group depth of a `match` keyword whose body brace has not opened yet.
    pending: Option<usize>,
    /// One entry per open `{`: `Some(group_depth)` when it opened a match
    /// body at that depth.
    braces: Vec<Option<usize>>,
}

impl MatchCtx {
    fn new() -> MatchCtx {
        MatchCtx { group_depth: 0, pending: None, braces: Vec::new() }
    }

    /// Observes one token about to be consumed by the body scanner. Multi-
    /// token constructs the scanner hands off whole (nested fns, closures)
    /// are invisible here, which is fine: they are brace-balanced, so the
    /// stack stays consistent.
    fn see(&mut self, tok: &Tok) {
        match tok {
            Tok::Punct('(' | '[') => self.group_depth += 1,
            Tok::Punct(')' | ']') => self.group_depth = self.group_depth.saturating_sub(1),
            Tok::Punct('{') => {
                let is_match = self.pending == Some(self.group_depth);
                self.pending = None;
                self.braces.push(is_match.then_some(self.group_depth));
            }
            Tok::Punct('}') => {
                self.braces.pop();
            }
            Tok::Punct(';') => self.pending = None,
            Tok::Ident(s) if s == "match" => self.pending = Some(self.group_depth),
            _ => {}
        }
    }

    /// Whether a `|` preceded by `prev` is the leading pipe of a match-arm
    /// or-pattern: directly after `{` or `,` while the innermost brace is a
    /// match body at the current group depth.
    fn pipe_is_pattern(&self, prev: Option<&Tok>) -> bool {
        matches!(prev, Some(Tok::Punct('{' | ',')))
            && self.braces.last() == Some(&Some(self.group_depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ItemTree {
        parse(&lex(src))
    }

    fn kinds(tree: &ItemTree) -> Vec<String> {
        tree.items.iter().map(|i| format!("{}:{}", discr(&i.kind), i.name)).collect()
    }

    fn discr(kind: &ItemKind) -> &'static str {
        match kind {
            ItemKind::Mod => "Mod",
            ItemKind::Fn => "Fn",
            ItemKind::Impl { .. } => "Impl",
            ItemKind::Trait => "Trait",
            ItemKind::Use => "Use",
            ItemKind::Static { .. } => "Static",
            ItemKind::Const => "Const",
            ItemKind::TypeDef => "TypeDef",
            ItemKind::TypeAlias => "TypeAlias",
            ItemKind::MacroDef => "MacroDef",
            ItemKind::MacroCall => "MacroCall",
            ItemKind::Extern => "Extern",
            ItemKind::Closure { .. } => "Closure",
        }
    }

    #[test]
    fn parses_the_common_item_shapes() {
        let tree = parsed(
            "use std::collections::{HashMap, hash_map::Entry};\n\
             pub mod inner { pub fn f() {} }\n\
             #[derive(Debug)]\npub struct S { x: u32 }\n\
             pub enum E { A, B(u32) }\n\
             impl S { pub fn m(&self) -> u32 { self.x } }\n\
             impl Clone for S { fn clone(&self) -> S { S { x: self.x } } }\n\
             pub trait T { fn req(&self); fn def(&self) {} }\n\
             static mut COUNTER: u32 = 0;\n\
             const LIMIT: usize = 8;\n\
             type Alias = Vec<u32>;\n\
             pub fn free<T: Clone>(x: T) -> T { x.clone() }\n",
        );
        assert!(tree.errors.is_empty(), "parse errors: {:?}", tree.errors);
        assert_eq!(
            kinds(&tree),
            vec![
                "Use:",
                "Mod:inner",
                "TypeDef:S",
                "TypeDef:E",
                "Impl:",
                "Impl:",
                "Trait:T",
                "Static:COUNTER",
                "Const:LIMIT",
                "TypeAlias:Alias",
                "Fn:free"
            ]
        );
        assert_eq!(
            tree.uses,
            vec!["std::collections::HashMap", "std::collections::hash_map::Entry"]
        );
        let imp = &tree.items[4];
        assert_eq!(imp.kind, ItemKind::Impl { type_name: "S".into(), trait_name: None });
        assert_eq!(imp.children.len(), 1);
        let timp = &tree.items[5];
        assert_eq!(
            timp.kind,
            ItemKind::Impl { type_name: "S".into(), trait_name: Some("Clone".into()) }
        );
        let st = &tree.items[7];
        assert_eq!(st.kind, ItemKind::Static { mutable: true, ty: "u32".into() });
    }

    #[test]
    fn nested_fns_and_closures_become_children() {
        let tree = parsed(
            "pub fn outer(xs: &[u32]) -> Vec<u32> {\n\
                 fn helper(x: u32) -> u32 { x + 1 }\n\
                 let ys = par_map(xs, |&x| helper(x));\n\
                 ys.iter().map(|y| y * 2).collect()\n\
             }\n",
        );
        assert!(tree.errors.is_empty(), "parse errors: {:?}", tree.errors);
        let outer = &tree.items[0];
        assert_eq!(outer.children.len(), 3, "helper + two closures: {:#?}", outer.children);
        assert_eq!(outer.children[0].name, "helper");
        assert_eq!(
            outer.children[1].kind,
            ItemKind::Closure { enclosing_call: Some("par_map".into()) }
        );
        assert_eq!(
            outer.children[2].kind,
            ItemKind::Closure { enclosing_call: Some("map".into()) }
        );
    }

    #[test]
    fn array_and_tuple_return_types_keep_the_body() {
        // The `;` inside an array type must not end the fn as bodiless.
        let tree = parsed(
            "pub fn breakdown(xs: &[u64]) -> (f64, [f64; 3]) {\n\
                 helper();\n\
                 (0.0, [0.0; 3])\n\
             }\n\
             fn shape() -> [u8; 4] { [0; 4] }\n\
             fn helper() {}\n",
        );
        assert!(tree.errors.is_empty(), "parse errors: {:?}", tree.errors);
        assert_eq!(kinds(&tree), vec!["Fn:breakdown", "Fn:shape", "Fn:helper"]);
        assert!(tree.items[0].body.is_some(), "breakdown keeps its body");
        assert!(tree.items[1].body.is_some(), "shape keeps its body");
    }

    #[test]
    fn pipes_as_operators_are_not_closures() {
        let tree = parsed("pub fn f(a: u32, b: u32) -> u32 { let c = a | b; c || 3 > 2; a }\n");
        assert!(tree.errors.is_empty());
        // `a | b` and `c || …` after identifiers are operators.
        assert!(tree.items[0].children.is_empty(), "{:#?}", tree.items[0].children);
    }

    #[test]
    fn spans_are_monotonic_and_nested() {
        let tree = parsed(
            "pub fn a() { body(); }\n\n\
             pub mod m {\n    pub fn b() {\n        inner();\n    }\n}\n",
        );
        assert!(tree.errors.is_empty());
        let a = &tree.items[0];
        let m = &tree.items[1];
        assert_eq!((a.line, a.end_line), (1, 1));
        assert_eq!((m.line, m.end_line), (3, 7));
        let b = &m.children[0];
        assert_eq!((b.line, b.end_line), (4, 6));
        assert!(b.line >= m.line && b.end_line <= m.end_line);
    }

    #[test]
    fn match_arm_pipes_do_not_start_closures() {
        let tree = parsed(
            "pub fn f(x: Option<u32>) -> u32 {\n\
                 match x { Some(0) | None => 0, Some(n) => n }\n\
             }\n",
        );
        assert!(tree.errors.is_empty(), "parse errors: {:?}", tree.errors);
        assert!(tree.items[0].children.is_empty(), "{:#?}", tree.items[0].children);
    }

    #[test]
    fn leading_or_pattern_pipes_do_not_start_closures() {
        // A leading `|` after `{` or `,` inside a match body is a pattern
        // pipe; the same tokens in expression position open a closure.
        let tree = parsed(
            "pub fn f(x: Option<u32>) -> u32 {\n\
                 match x {\n\
                     | Some(0) | Some(1) => 0,\n\
                     | Some(n) => n,\n\
                     | None => 1,\n\
                 }\n\
             }\n",
        );
        assert!(tree.errors.is_empty(), "parse errors: {:?}", tree.errors);
        assert!(tree.items[0].children.is_empty(), "{:#?}", tree.items[0].children);
    }

    #[test]
    fn closures_in_call_args_inside_match_arms_still_parse() {
        // Inside an arm, a `|` after `(` or after `,` at a deeper group
        // depth is back in expression position: these ARE closures.
        let tree = parsed(
            "pub fn f(x: Option<Vec<u32>>) -> u32 {\n\
                 match x {\n\
                     | Some(v) => v.iter().map(|y| y + 1).sum(),\n\
                     | None => apply(0, |z| z),\n\
                 }\n\
             }\n",
        );
        assert!(tree.errors.is_empty(), "parse errors: {:?}", tree.errors);
        let kinds: Vec<_> = tree.items[0].children.iter().map(|c| c.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Closure { enclosing_call: Some("map".into()) },
                ItemKind::Closure { enclosing_call: Some("apply".into()) },
            ],
            "{:#?}",
            tree.items[0].children
        );
    }

    #[test]
    fn or_pattern_inside_par_map_closure_keeps_capture_edges() {
        // Regression: the leading pipe used to be misparsed as a closure
        // opener, swallowing the rest of the match and misattributing the
        // `par_map` capture edge.
        let tree = parsed(
            "pub fn f(xs: &[Option<u32>]) -> Vec<u32> {\n\
                 par_map(xs, |x| match x {\n\
                     | Some(v) => *v,\n\
                     | None => 0,\n\
                 })\n\
             }\n",
        );
        assert!(tree.errors.is_empty(), "parse errors: {:?}", tree.errors);
        let outer = &tree.items[0];
        assert_eq!(outer.children.len(), 1, "{:#?}", outer.children);
        assert_eq!(
            outer.children[0].kind,
            ItemKind::Closure { enclosing_call: Some("par_map".into()) }
        );
        assert!(outer.children[0].children.is_empty(), "{:#?}", outer.children[0].children);
    }
}
