//! `Lint.toml` — the rule configuration file.
//!
//! A deliberately small hand-rolled TOML subset (the workspace is
//! offline, so no `toml` crate): `[section]` headers, `key = "string"`
//! values, single-line `key = ["a", "b"]` arrays, and `#` comments.
//! That is every shape the lint configuration needs.
//!
//! Recognised sections:
//!
//! ```toml
//! [rules]                    # base severity per rule id
//! float-eq = "deny"
//!
//! [paths]
//! exclude = ["shims"]        # path prefixes never scanned
//!
//! [rule.process-exit]
//! allow-paths = ["crates/repro/src/bin"]   # rule skipped under these
//!
//! [rule.missing-must-use]
//! apply-paths = ["crates/core/src/measures"] # rule ONLY under these
//!
//! [crate.crates/bench]       # per-crate severity overrides
//! unwrap-in-lib = "allow"
//!
//! [sema]                     # determinism roots for the det-* rules
//! roots = ["FBox::from_search", "study::run_study"]
//! ```
//!
//! Rule ids are validated against the union of the lexical and semantic
//! rule registries; an unknown id anywhere is a hard config error, so a
//! typo can never silently disable a rule.

use std::collections::BTreeMap;

use crate::rules::{all_rules, Severity};
use crate::sema::all_sema_rules;

/// Parsed `Lint.toml`.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Path prefixes (workspace-relative) excluded from scanning.
    pub exclude: Vec<String>,
    /// `[rules]` base severities.
    pub rule_severity: BTreeMap<String, Severity>,
    /// `[crate.<label>]` overrides: crate label → rule id → severity.
    pub crate_overrides: BTreeMap<String, BTreeMap<String, Severity>>,
    /// `[rule.<id>] allow-paths`: the rule is skipped under these prefixes.
    pub allow_paths: BTreeMap<String, Vec<String>>,
    /// `[rule.<id>] apply-paths`: the rule runs ONLY under these prefixes.
    pub apply_paths: BTreeMap<String, Vec<String>>,
    /// `[sema] roots`: qualified-name suffix patterns overriding the
    /// built-in determinism roots (empty = use the defaults).
    pub sema_roots: Vec<String>,
}

impl Config {
    /// Parses `Lint.toml` text. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut known: Vec<&'static str> = all_rules().iter().map(|r| r.id()).collect();
        known.extend(all_sema_rules().iter().map(|r| r.id()));
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_owned();
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_owned();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("Lint.toml:{lineno}: expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match section.as_str() {
                "rules" => {
                    if !known.contains(&key) {
                        return Err(format!("Lint.toml:{lineno}: unknown rule `{key}`"));
                    }
                    cfg.rule_severity.insert(key.to_owned(), severity(value, lineno)?);
                }
                "paths" => match key {
                    "exclude" => cfg.exclude = string_array(value, lineno)?,
                    _ => return Err(format!("Lint.toml:{lineno}: unknown [paths] key `{key}`")),
                },
                "sema" => match key {
                    "roots" => cfg.sema_roots = string_array(value, lineno)?,
                    _ => return Err(format!("Lint.toml:{lineno}: unknown [sema] key `{key}`")),
                },
                s => {
                    if let Some(rule) = s.strip_prefix("rule.") {
                        if !known.contains(&rule) {
                            return Err(format!("Lint.toml:{lineno}: unknown rule `{rule}`"));
                        }
                        let paths = string_array(value, lineno)?;
                        match key {
                            "allow-paths" => {
                                cfg.allow_paths.insert(rule.to_owned(), paths);
                            }
                            "apply-paths" => {
                                cfg.apply_paths.insert(rule.to_owned(), paths);
                            }
                            _ => {
                                return Err(format!(
                                    "Lint.toml:{lineno}: unknown [rule.*] key `{key}`"
                                ))
                            }
                        }
                    } else if let Some(label) = s.strip_prefix("crate.") {
                        if !known.contains(&key) {
                            return Err(format!("Lint.toml:{lineno}: unknown rule `{key}`"));
                        }
                        cfg.crate_overrides
                            .entry(label.to_owned())
                            .or_default()
                            .insert(key.to_owned(), severity(value, lineno)?);
                    } else {
                        return Err(format!("Lint.toml:{lineno}: unknown section `[{s}]`"));
                    }
                }
            }
        }
        Ok(cfg)
    }

    /// Effective severity of `rule` for a file in `crate_label`:
    /// per-crate override → `[rules]` base → the rule's built-in default.
    pub fn severity(&self, rule: &str, crate_label: &str, default: Severity) -> Severity {
        if let Some(sev) = self.crate_overrides.get(crate_label).and_then(|m| m.get(rule)) {
            return *sev;
        }
        self.rule_severity.get(rule).copied().unwrap_or(default)
    }

    /// Whether `rule` runs on `path` given its allow/apply path scoping.
    pub fn rule_applies_to(&self, rule: &str, path: &str) -> bool {
        if let Some(allowed) = self.allow_paths.get(rule) {
            if allowed.iter().any(|p| path.starts_with(p.as_str())) {
                return false;
            }
        }
        if let Some(only) = self.apply_paths.get(rule) {
            return only.iter().any(|p| path.starts_with(p.as_str()));
        }
        true
    }

    /// Whether `path` is excluded from scanning entirely.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn severity(value: &str, lineno: usize) -> Result<Severity, String> {
    let s = unquote(value, lineno)?;
    Severity::parse(&s)
        .ok_or_else(|| format!("Lint.toml:{lineno}: severity must be allow|warn|deny, got `{s}`"))
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("Lint.toml:{lineno}: expected a double-quoted string"))
}

fn string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("Lint.toml:{lineno}: expected a single-line [\"...\"] array"))?;
    inner.split(',').map(str::trim).filter(|s| !s.is_empty()).map(|s| unquote(s, lineno)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[rules]
float-eq = "deny"   # trailing comment
expect-in-lib = "warn"

[paths]
exclude = ["shims", "crates/lint/tests/fixtures"]

[rule.process-exit]
allow-paths = ["crates/repro/src/bin"]

[rule.missing-must-use]
apply-paths = ["crates/core/src/measures"]

[crate.crates/bench]
unwrap-in-lib = "allow"
"#;

    #[test]
    fn parses_every_section_shape() {
        let cfg = Config::parse(SAMPLE).expect("sample config parses");
        assert_eq!(cfg.rule_severity.get("float-eq"), Some(&Severity::Deny));
        assert!(cfg.is_excluded("shims/rand/src/lib.rs"));
        assert!(!cfg.rule_applies_to("process-exit", "crates/repro/src/bin/repro-all.rs"));
        assert!(cfg.rule_applies_to("process-exit", "crates/core/src/fbox.rs"));
        assert!(cfg.rule_applies_to("missing-must-use", "crates/core/src/measures/emd.rs"));
        assert!(!cfg.rule_applies_to("missing-must-use", "crates/search/src/engine.rs"));
        assert_eq!(cfg.severity("unwrap-in-lib", "crates/bench", Severity::Deny), Severity::Allow);
        assert_eq!(cfg.severity("unwrap-in-lib", "crates/core", Severity::Deny), Severity::Deny);
    }

    #[test]
    fn unknown_rule_ids_are_rejected() {
        assert!(Config::parse("[rules]\nno-such-rule = \"deny\"\n").is_err());
        assert!(Config::parse("[crate.crates/core]\nno-such-rule = \"warn\"\n").is_err());
        assert!(Config::parse("[rules]\nfloat-eq = \"forbid\"\n").is_err());
        assert!(Config::parse("[rule.no-such-rule]\nallow-paths = [\"x\"]\n").is_err());
        // The error names the offending line and id.
        let err = Config::parse("[rules]\ndet-hash-itre = \"deny\"\n").expect_err("typo rejected");
        assert!(err.contains(":2:") && err.contains("det-hash-itre"), "{err}");
    }

    #[test]
    fn sema_rule_ids_are_known_everywhere() {
        let cfg = Config::parse(
            "[rules]\ndet-hash-iter = \"warn\"\n\
             [crate.crates/bench]\npar-panic-reachable = \"allow\"\n\
             [rule.det-env-read]\nallow-paths = [\"crates/par\"]\n",
        )
        .expect("sema ids are valid in every section");
        assert_eq!(cfg.rule_severity.get("det-hash-iter"), Some(&Severity::Warn));
        assert!(!cfg.rule_applies_to("det-env-read", "crates/par/src/lib.rs"));
    }

    #[test]
    fn sema_roots_section_parses_and_rejects_unknown_keys() {
        let cfg = Config::parse("[sema]\nroots = [\"FBox::from_search\", \"study::run_study\"]\n")
            .expect("sema section parses");
        assert_eq!(cfg.sema_roots, ["FBox::from_search", "study::run_study"]);
        assert!(Config::parse("[sema]\nrotos = [\"x\"]\n").is_err(), "unknown [sema] key");
    }
}
