//! The job taxonomy and the 5,361-query crawl grid (paper §5.1.1).
//!
//! TaskRabbit organizes work into categories (the eight of Table 9); a
//! crawl query is one *sub-query* (a concrete task type) at one city. The
//! paper generated "a total of 5,361 job-related queries, where each query
//! is a combination of a job and a location". With 8 categories × 12
//! sub-queries × 56 cities we get 5,376 combinations; fifteen sub-queries
//! are not offered in the smallest market (Baton Rouge), matching the
//! paper's total exactly.

use serde::{Deserialize, Serialize};

/// A job category with its sub-queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Category {
    /// Category name, e.g. `"General Cleaning"`.
    pub name: &'static str,
    /// Concrete task types within the category. Names that appear in the
    /// paper's tables (e.g. "Lawn Mowing", "Back To Organized") are kept
    /// verbatim.
    pub sub_queries: [&'static str; 12],
}

/// The eight categories of Table 9, each with twelve sub-queries.
pub const CATEGORIES: [Category; 8] = [
    Category {
        name: "Handyman",
        sub_queries: [
            "Furniture Repair",
            "Door Repair",
            "Wall Mounting",
            "Picture Hanging",
            "Shelf Installation",
            "Light Fixture Installation",
            "Faucet Repair",
            "Caulking",
            "Drywall Repair",
            "Blind Installation",
            "Weatherproofing",
            "Childproofing",
        ],
    },
    Category {
        name: "Event Staffing",
        sub_queries: [
            "Event Decorating",
            "Bartending Help",
            "Serving Help",
            "Coat Check",
            "Event Setup",
            "Event Cleanup",
            "Ticket Scanning",
            "Guest Registration",
            "Catering Help",
            "Party Planning Help",
            "Photo Booth Help",
            "Crowd Ushering",
        ],
    },
    Category {
        name: "General Cleaning",
        sub_queries: [
            "Back To Organized",
            "Organize & Declutter",
            "Organize Closet",
            "office cleaning jobs",
            "private cleaning jobs",
            "Home Cleaning",
            "Deep Cleaning",
            "Move Out Cleaning",
            "Garage Cleaning",
            "Window Cleaning",
            "Carpet Cleaning",
            "Fridge Cleaning",
        ],
    },
    Category {
        name: "Yard Work",
        sub_queries: [
            "Lawn Mowing",
            "Leaf Raking",
            "Weed Removal",
            "Hedge Trimming",
            "Garden Planting",
            "Mulching",
            "Gutter Cleaning",
            "Patio Cleaning",
            "Snow Removal",
            "Tree Pruning",
            "Yard Cleanup",
            "Composting Setup",
        ],
    },
    Category {
        name: "Moving",
        sub_queries: [
            "Help Moving",
            "Packing Services",
            "Unpacking Services",
            "Heavy Lifting",
            "Truck Loading",
            "Truck Unloading",
            "Storage Unit Moving",
            "Piano Moving Help",
            "Apartment Moving",
            "Office Moving",
            "In-Home Furniture Moving",
            "Junk Hauling",
        ],
    },
    Category {
        name: "Delivery",
        sub_queries: [
            "Grocery Delivery",
            "Food Delivery",
            "Package Pickup",
            "Pharmacy Pickup",
            "Furniture Delivery",
            "Appliance Delivery",
            "Flower Delivery",
            "Gift Delivery",
            "Laundry Drop-off",
            "Dry Cleaning Pickup",
            "Document Courier",
            "Equipment Return",
        ],
    },
    Category {
        name: "Furniture Assembly",
        sub_queries: [
            "IKEA Assembly",
            "Bed Assembly",
            "Desk Assembly",
            "Bookshelf Assembly",
            "Dresser Assembly",
            "Table Assembly",
            "Chair Assembly",
            "Wardrobe Assembly",
            "Crib Assembly",
            "Sofa Assembly",
            "Outdoor Furniture Assembly",
            "Disassembly",
        ],
    },
    Category {
        name: "Run Errands",
        sub_queries: [
            "run errand",
            "Wait In Line",
            "Post Office Run",
            "Bank Errand",
            "Shopping Errand",
            "Pet Supply Run",
            "Hardware Store Run",
            "Return Items",
            "Car Wash Run",
            "Library Run",
            "Donation Drop-off",
            "Prescription Run",
        ],
    },
];

/// Total number of distinct sub-queries (96).
pub const N_QUERIES: usize = 96;
const _: () = assert!(N_QUERIES == CATEGORIES.len() * 12, "category table changed size");

/// City index that does not offer every task (the smallest market).
const PARTIAL_CITY: usize = 55; // Baton Rouge, LA

/// Number of sub-queries missing in the partial city (5,376 − 5,361).
const MISSING_IN_PARTIAL_CITY: usize = 15;

/// Iterates all `(category index, sub-query index within category)` pairs
/// in stable order, with the flat query index.
pub fn all_queries() -> impl Iterator<Item = (usize, usize, &'static str)> {
    CATEGORIES.iter().enumerate().flat_map(|(ci, cat)| {
        cat.sub_queries.iter().enumerate().map(move |(si, &name)| (ci, si, name))
    })
}

/// Whether the flat query index `q` (0..96) is offered in city index
/// `city` (0..56).
///
/// Everything is offered everywhere except the last fifteen sub-queries in
/// the smallest market, which yields the paper's total of 5,361 crawl
/// queries.
pub fn offered(q: usize, city: usize) -> bool {
    let n_cities = crate::city::CITIES.len();
    assert!(q < N_QUERIES, "query index out of range");
    assert!(city < n_cities, "city index out of range");
    !(city == PARTIAL_CITY && q >= N_QUERIES - MISSING_IN_PARTIAL_CITY)
}

/// The category of a flat query index.
pub fn category_of(q: usize) -> &'static Category {
    &CATEGORIES[q / 12]
}

/// Looks up the flat index of a sub-query by name.
pub fn query_index(name: &str) -> Option<usize> {
    all_queries().position(|(_, _, n)| n == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninety_six_distinct_queries() {
        let names: Vec<&str> = all_queries().map(|(_, _, n)| n).collect();
        assert_eq!(names.len(), N_QUERIES);
        for (i, n) in names.iter().enumerate() {
            assert!(!names[..i].contains(n), "duplicate sub-query {n:?}");
        }
    }

    #[test]
    fn crawl_grid_has_exactly_5361_queries() {
        let total: usize = (0..N_QUERIES)
            .flat_map(|q| (0..crate::city::CITIES.len()).map(move |c| (q, c)))
            .filter(|&(q, c)| offered(q, c))
            .count();
        assert_eq!(total, 5361, "paper §5.1.1 total");
    }

    #[test]
    fn paper_named_subqueries_exist() {
        for name in [
            "Lawn Mowing",
            "Event Decorating",
            "Back To Organized",
            "Organize & Declutter",
            "Organize Closet",
            "office cleaning jobs",
            "private cleaning jobs",
            "Home Cleaning",
            "run errand",
        ] {
            assert!(query_index(name).is_some(), "missing {name:?}");
        }
    }

    #[test]
    fn category_lookup() {
        let q = query_index("Lawn Mowing").unwrap();
        assert_eq!(category_of(q).name, "Yard Work");
        let q = query_index("Back To Organized").unwrap();
        assert_eq!(category_of(q).name, "General Cleaning");
    }

    #[test]
    fn partial_city_is_only_gap() {
        for q in 0..N_QUERIES {
            for c in 0..crate::city::CITIES.len() {
                if c != PARTIAL_CITY {
                    assert!(offered(q, c));
                }
            }
        }
        assert!(!offered(N_QUERIES - 1, PARTIAL_CITY));
        assert!(offered(0, PARTIAL_CITY));
    }
}
