//! Configurable bias injection.
//!
//! The simulator does not hard-code any of the paper's result tables.
//! Instead, a [`BiasProfile`] describes *how the platform's ranking treats
//! demographic groups*: a base score penalty per full demographic group,
//! per-city and per-category amplifiers, and scoped overrides (the
//! mechanism behind the paper's comparison findings, where e.g. Chicago
//! treats females better than males against the overall trend,
//! Table 12). The ranking engine subtracts the effective penalty from each
//! worker's clean score; every reported unfairness number then *emerges*
//! from the ranked results through the F-Box pipeline.

use crate::demographics::{Demographic, Ethnicity, Gender};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a matching [`BiasOverride`] does to the penalty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OverrideAction {
    /// Multiplies the base penalty by a factor (0 disables bias in the
    /// scope, > 1 amplifies it).
    Scale(f64),
    /// Evaluates the base penalty as if the worker had the opposite
    /// gender — the lever for gender-trend reversals like Table 12's.
    SwapGenders,
}

/// A scoped adjustment to the bias profile. All present fields must match
/// for the override to apply; absent fields match anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasOverride {
    /// Match a specific city by name.
    pub location: Option<String>,
    /// Match a specific sub-query by name.
    pub query: Option<String>,
    /// Match a whole category by name.
    pub category: Option<String>,
    /// Match workers of one gender.
    pub gender: Option<Gender>,
    /// Match workers of one ethnicity.
    pub ethnicity: Option<Ethnicity>,
    /// The adjustment.
    pub action: OverrideAction,
}

impl BiasOverride {
    fn matches(&self, demo: Demographic, query: &str, category: &str, location: &str) -> bool {
        self.location.as_deref().is_none_or(|l| l == location)
            && self.query.as_deref().is_none_or(|q| q == query)
            && self.category.as_deref().is_none_or(|c| c == category)
            && self.gender.is_none_or(|g| g == demo.gender)
            && self.ethnicity.is_none_or(|e| e == demo.ethnicity)
    }
}

/// The full bias configuration of a simulated marketplace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasProfile {
    /// Base penalty (score units in `[0, 1]`) per `[gender][ethnicity]`,
    /// indexed by [`Gender::value_id`] / [`Ethnicity::value_id`] order.
    pub group_penalty: [[f64; 3]; 2],
    /// Default city amplifier when a city has no entry.
    pub default_location_amp: f64,
    /// Per-city amplifiers.
    pub location_amp: HashMap<String, f64>,
    /// Default category amplifier when a category has no entry.
    pub default_category_amp: f64,
    /// Per-category amplifiers.
    pub category_amp: HashMap<String, f64>,
    /// Scoped adjustments, applied in order.
    pub overrides: Vec<BiasOverride>,
}

impl BiasProfile {
    /// A profile that injects no bias at all: every penalty is zero, so
    /// rankings are purely merit-driven. The fairness measures should read
    /// near-zero unfairness on such a marketplace (used in tests as the
    /// null model).
    pub fn neutral() -> Self {
        Self {
            group_penalty: [[0.0; 3]; 2],
            default_location_amp: 1.0,
            location_amp: HashMap::new(),
            default_category_amp: 1.0,
            category_amp: HashMap::new(),
            overrides: Vec::new(),
        }
    }

    /// Sets the base penalty for one full demographic group (builder
    /// style). Negative values model *positive discrimination* (the group
    /// is boosted above its merit — §2 of the paper notes rankings may
    /// favor disadvantaged groups); both directions register as
    /// unfairness under distribution- and exposure-based measures.
    pub fn with_penalty(mut self, gender: Gender, ethnicity: Ethnicity, penalty: f64) -> Self {
        assert!((-1.0..=1.0).contains(&penalty), "penalty must be in [-1,1]");
        self.group_penalty[gender.value_id().0 as usize][ethnicity.value_id().0 as usize] = penalty;
        self
    }

    /// Sets a city amplifier (builder style).
    pub fn with_location_amp(mut self, city: &str, amp: f64) -> Self {
        assert!(amp >= 0.0, "amplifier must be non-negative");
        self.location_amp.insert(city.to_string(), amp);
        self
    }

    /// Sets a category amplifier (builder style).
    pub fn with_category_amp(mut self, category: &str, amp: f64) -> Self {
        assert!(amp >= 0.0, "amplifier must be non-negative");
        self.category_amp.insert(category.to_string(), amp);
        self
    }

    /// Adds an override (builder style).
    pub fn with_override(mut self, o: BiasOverride) -> Self {
        self.overrides.push(o);
        self
    }

    /// Base penalty of a demographic group.
    pub fn base_penalty(&self, demo: Demographic) -> f64 {
        self.group_penalty[demo.gender.value_id().0 as usize][demo.ethnicity.value_id().0 as usize]
    }

    /// The effective score penalty for a worker of demographic `demo`
    /// competing on `query` (in `category`) at `location`:
    ///
    /// `base(g') · location_amp · category_amp · Π scale-overrides`
    ///
    /// where `g'` is `demo` unless a matching [`OverrideAction::SwapGenders`]
    /// replaces the gender.
    pub fn penalty(&self, demo: Demographic, query: &str, category: &str, location: &str) -> f64 {
        let mut gender = demo.gender;
        let mut scale = 1.0;
        for o in &self.overrides {
            if o.matches(demo, query, category, location) {
                match o.action {
                    OverrideAction::Scale(f) => scale *= f,
                    OverrideAction::SwapGenders => {
                        gender = match gender {
                            Gender::Male => Gender::Female,
                            Gender::Female => Gender::Male,
                        };
                    }
                }
            }
        }
        let base =
            self.group_penalty[gender.value_id().0 as usize][demo.ethnicity.value_id().0 as usize];
        let loc_amp = self.location_amp.get(location).copied().unwrap_or(self.default_location_amp);
        let cat_amp = self.category_amp.get(category).copied().unwrap_or(self.default_category_amp);
        base * loc_amp * cat_amp * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(g: Gender, e: Ethnicity) -> Demographic {
        Demographic { gender: g, ethnicity: e }
    }

    #[test]
    fn neutral_profile_is_penalty_free() {
        let p = BiasProfile::neutral();
        for g in Gender::ALL {
            for e in Ethnicity::ALL {
                assert_eq!(p.penalty(demo(g, e), "Lawn Mowing", "Yard Work", "Chicago, IL"), 0.0);
            }
        }
    }

    #[test]
    fn amplifiers_multiply() {
        let p = BiasProfile::neutral()
            .with_penalty(Gender::Female, Ethnicity::Asian, 0.2)
            .with_location_amp("Birmingham, UK", 1.5)
            .with_category_amp("Handyman", 2.0);
        let d = demo(Gender::Female, Ethnicity::Asian);
        assert!((p.penalty(d, "Door Repair", "Handyman", "Birmingham, UK") - 0.6).abs() < 1e-12);
        // Defaults elsewhere.
        assert!((p.penalty(d, "Door Repair", "Handyman", "Chicago, IL") - 0.4).abs() < 1e-12);
        assert!((p.penalty(d, "Lawn Mowing", "Yard Work", "Chicago, IL") - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scale_override_scopes() {
        let p = BiasProfile::neutral()
            .with_penalty(Gender::Male, Ethnicity::Black, 0.3)
            .with_override(BiasOverride {
                location: Some("Chicago, IL".into()),
                query: None,
                category: None,
                gender: None,
                ethnicity: Some(Ethnicity::Black),
                action: OverrideAction::Scale(0.0),
            });
        let d = demo(Gender::Male, Ethnicity::Black);
        assert_eq!(p.penalty(d, "run errand", "Run Errands", "Chicago, IL"), 0.0);
        assert!((p.penalty(d, "run errand", "Run Errands", "Boston, MA") - 0.3).abs() < 1e-12);
    }

    #[test]
    fn swap_genders_override() {
        let p = BiasProfile::neutral()
            .with_penalty(Gender::Female, Ethnicity::White, 0.4)
            .with_penalty(Gender::Male, Ethnicity::White, 0.1)
            .with_override(BiasOverride {
                location: Some("Nashville, TN".into()),
                query: None,
                category: None,
                gender: None,
                ethnicity: None,
                action: OverrideAction::SwapGenders,
            });
        let f = demo(Gender::Female, Ethnicity::White);
        let m = demo(Gender::Male, Ethnicity::White);
        // Swapped in Nashville…
        assert!(
            (p.penalty(f, "Home Cleaning", "General Cleaning", "Nashville, TN") - 0.1).abs()
                < 1e-12
        );
        assert!(
            (p.penalty(m, "Home Cleaning", "General Cleaning", "Nashville, TN") - 0.4).abs()
                < 1e-12
        );
        // …normal elsewhere.
        assert!(
            (p.penalty(f, "Home Cleaning", "General Cleaning", "Boston, MA") - 0.4).abs() < 1e-12
        );
    }

    #[test]
    fn query_scoped_override() {
        let p = BiasProfile::neutral()
            .with_penalty(Gender::Female, Ethnicity::Black, 0.2)
            .with_override(BiasOverride {
                location: None,
                query: Some("Lawn Mowing".into()),
                category: None,
                gender: Some(Gender::Female),
                ethnicity: None,
                action: OverrideAction::Scale(2.0),
            });
        let d = demo(Gender::Female, Ethnicity::Black);
        assert!((p.penalty(d, "Lawn Mowing", "Yard Work", "Chicago, IL") - 0.4).abs() < 1e-12);
        assert!((p.penalty(d, "Leaf Raking", "Yard Work", "Chicago, IL") - 0.2).abs() < 1e-12);
    }
}
