//! The simulated tasker population (paper Figures 7–8: 3,311 unique
//! taskers, ≈ 72 % male, ≈ 66 % white).

use crate::demographics::{Demographic, PopulationMarginals};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One tasker. Profile attributes mirror what the paper's crawler
/// extracted per worker: rank position comes from the engine; badges,
/// reviews (ratings), and hourly rates live here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Stable worker id, unique across the marketplace.
    pub id: u64,
    /// Demographic profile (in the paper, inferred from profile pictures
    /// by AMT labeling; in the simulator, ground truth that a
    /// `fbox-crowd` labeling pass may perturb).
    pub demographic: Demographic,
    /// Home city index into [`crate::city::CITIES`].
    pub city: usize,
    /// Mean review rating in `[3.0, 5.0]`.
    pub rating: f64,
    /// Number of completed jobs.
    pub jobs_completed: u32,
    /// Days since joining the platform.
    pub tenure_days: u32,
    /// Advertised hourly rate in USD.
    pub hourly_rate: f64,
    /// Whether the worker holds an elite badge.
    pub badge: bool,
}

/// Distributes `total` workers over `n_cities` markets: every market gets
/// the floor share and the first `total % n_cities` markets get one more,
/// so the sum is exact.
pub fn allocate(total: usize, n_cities: usize) -> Vec<usize> {
    let markets = n_cities;
    assert!(markets > 0, "allocate needs at least one market");
    let base = total / markets;
    let extra = total % markets;
    (0..markets).map(|i| base + usize::from(i < extra)).collect()
}

/// The demographic mix of one city of `count` workers: largest-remainder
/// apportionment over the six gender × ethnicity cells, so every city's
/// composition matches the marginals to within one worker per cell.
pub fn stratified_demographics(count: usize, marginals: &PopulationMarginals) -> Vec<Demographic> {
    use crate::demographics::{Ethnicity, Gender};
    let eth_p = |e: Ethnicity| match e {
        Ethnicity::Asian => marginals.asian,
        Ethnicity::Black => marginals.black,
        Ethnicity::White => marginals.white,
    };
    let cells: Vec<(Demographic, f64)> = Gender::ALL
        .iter()
        .flat_map(|&gender| {
            let gp = if gender == Gender::Male { marginals.male } else { 1.0 - marginals.male };
            Ethnicity::ALL
                .iter()
                .map(move |&ethnicity| (Demographic { gender, ethnicity }, gp * eth_p(ethnicity)))
        })
        .collect();

    let quotas: Vec<f64> = cells.iter().map(|&(_, p)| p * count as f64).collect();
    let mut counts: Vec<usize> = quotas
        .iter()
        .map(|&q| {
            // Quotas are products of validated probabilities and a finite
            // count; the guard pins that invariant at the conversion.
            let quota = if q.is_finite() && q >= 0.0 { q } else { 0.0 };
            debug_assert!(quota.is_finite() && quota >= 0.0, "guard clamps the quota");
            fbox_core::measures::float::floor_index(quota)
        })
        .collect();
    let mut assigned: usize = counts.iter().sum();
    // Hand out the remaining seats by descending fractional remainder
    // (ties by cell order, deterministic).
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = quotas[a] - quotas[a].floor();
        let rb = quotas[b] - quotas[b].floor();
        rb.total_cmp(&ra).then(a.cmp(&b))
    });
    let mut i = 0;
    while assigned < count {
        counts[order[i % order.len()]] += 1;
        assigned += 1;
        i += 1;
    }

    let mut out = Vec::with_capacity(count);
    for (&n, &(demo, _)) in counts.iter().zip(&cells) {
        out.extend(std::iter::repeat_n(demo, n));
    }
    out
}

/// Generates the full tasker population, seeded for reproducibility.
///
/// `total` defaults to the paper's 3,311 in [`Population::paper`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    workers: Vec<Worker>,
    by_city: Vec<Vec<usize>>,
}

impl Population {
    /// Samples a population of `total` workers over `n_cities` markets.
    ///
    /// Demographics are *stratified per city*: each city receives group
    /// counts matching the marginals as closely as integer rounding allows
    /// (largest-remainder apportionment over the six gender × ethnicity
    /// cells). Without stratification, binomial sampling would give each
    /// city its own demographic quirk, and those quirks — not the injected
    /// bias — would dominate cross-city unfairness comparisons.
    pub fn generate(
        total: usize,
        n_cities: usize,
        marginals: PopulationMarginals,
        seed: u64,
    ) -> Self {
        marginals.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = allocate(total, n_cities);
        let mut workers = Vec::with_capacity(total);
        let mut by_city = vec![Vec::new(); n_cities];
        let mut id = 0u64;
        for (city, &count) in counts.iter().enumerate() {
            let demographics = stratified_demographics(count, &marginals);
            // Merit is stratified within each (city, demographic) cell:
            // members get evenly spaced latent quantiles, individually
            // jittered per attribute. Every group then has the same merit
            // profile in every city; cross-city unfairness differences are
            // caused by the injected bias, not by which handful of
            // high-rated workers a 3-person group happens to contain.
            let mut cell_seen: std::collections::HashMap<Demographic, usize> =
                std::collections::HashMap::new();
            let cell_total: std::collections::HashMap<Demographic, usize> = {
                let mut m = std::collections::HashMap::new();
                for &d in &demographics {
                    *m.entry(d).or_insert(0) += 1;
                }
                m
            };
            for demographic in demographics {
                let idx = *cell_seen.entry(demographic).and_modify(|c| *c += 1).or_insert(0);
                // `demographic` is drawn from the same list `cell_total`
                // counts, so its count is ≥ 1; the clamp keeps the divisor
                // visibly nonzero on every path.
                let n_cell = cell_total[&demographic].max(1);
                let latent = (idx as f64 + 0.5) / n_cell as f64;
                let q = |salt: u64| {
                    let jitter = (crate::scoring::mix(id.wrapping_add(1), salt) >> 11) as f64
                        / (1u64 << 53) as f64;
                    (latent + 0.25 * (jitter - 0.5)).rem_euclid(1.0)
                };
                let rating = 3.0 + 2.0 * q(1);
                let q_jobs = q(2);
                debug_assert!((0.0..=1.0).contains(&q_jobs), "quantile out of unit range");
                let jobs_completed = (500.0 * q_jobs) as u32;
                let q_tenure = q(3);
                debug_assert!((0.0..=1.0).contains(&q_tenure), "quantile out of unit range");
                let tenure_days = 10 + (1990.0 * q_tenure) as u32;
                let hourly_rate = 15.0 + rng.random_range(0.0..85.0);
                let badge = q(4) < 0.15;
                by_city[city].push(workers.len());
                workers.push(Worker {
                    id,
                    demographic,
                    city,
                    rating,
                    jobs_completed,
                    tenure_days,
                    hourly_rate,
                    badge,
                });
                id += 1;
            }
        }
        Self { workers, by_city }
    }

    /// The paper's population: 3,311 taskers over the 56 cities with the
    /// Figure 7–8 marginals.
    pub fn paper(seed: u64) -> Self {
        Self::generate(3311, crate::city::CITIES.len(), PopulationMarginals::default(), seed)
    }

    /// All workers.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Indices of the workers based in a city.
    pub fn in_city(&self, city: usize) -> &[usize] {
        &self.by_city[city]
    }

    /// Total number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Demographic breakdown: `(male share, per-ethnicity shares in
    /// [Asian, Black, White] order)` — the data behind Figures 7 and 8.
    pub fn breakdown(&self) -> (f64, [f64; 3]) {
        let n = self.workers.len().max(1) as f64;
        let male = self
            .workers
            .iter()
            .filter(|w| w.demographic.gender == crate::demographics::Gender::Male)
            .count() as f64
            / n;
        let mut eth = [0.0f64; 3];
        for w in &self.workers {
            eth[w.demographic.ethnicity.value_id().0 as usize] += 1.0;
        }
        for e in &mut eth {
            *e /= n;
        }
        (male, eth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_sums_exactly() {
        let counts = allocate(3311, 56);
        assert_eq!(counts.len(), 56);
        assert_eq!(counts.iter().sum::<usize>(), 3311);
        // Balanced: no market differs from another by more than one.
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn paper_population_shape() {
        let p = Population::paper(42);
        assert_eq!(p.len(), 3311);
        let (male, eth) = p.breakdown();
        assert!((male - 0.72).abs() < 0.03, "male share {male}");
        assert!((eth[2] - 0.66).abs() < 0.03, "white share {}", eth[2]);
        assert!((eth.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Population::paper(7);
        let b = Population::paper(7);
        assert_eq!(a.workers(), b.workers());
        let c = Population::paper(8);
        assert_ne!(a.workers(), c.workers());
    }

    #[test]
    fn city_index_is_consistent() {
        let p = Population::paper(1);
        for city in 0..56 {
            for &wi in p.in_city(city) {
                assert_eq!(p.workers()[wi].city, city);
            }
        }
        let per_city: usize = (0..56).map(|c| p.in_city(c).len()).sum();
        assert_eq!(per_city, 3311);
    }

    #[test]
    fn attribute_ranges() {
        let p = Population::paper(3);
        for w in p.workers() {
            assert!((3.0..=5.0).contains(&w.rating));
            assert!(w.jobs_completed < 500);
            assert!((15.0..=100.0).contains(&w.hourly_rate));
            assert!((10..2000).contains(&w.tenure_days));
        }
    }
}
