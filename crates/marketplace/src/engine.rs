//! The marketplace ranking engine: given a sub-query and a city, rank the
//! local workers by `f_q^l` and return the top page (the paper crawled the
//! top 50 taskers per query, §5.1.1).

use crate::bias::BiasProfile;
use crate::demographics::Demographic;
use crate::jobs;
use crate::population::Population;
use crate::scoring::{mix, mix_str, ScoringModel};
use fbox_core::observations::{MarketRanking, RankedWorker};

/// Result-page size the paper crawled.
pub const PAGE_SIZE: usize = 50;

/// Default probability that a worker serves a given job category.
///
/// Taskers sign up for a subset of categories, so the candidate pool for
/// one query is smaller than the city's whole worker base — and, with the
/// paper-sized population (≈ 59 workers/city), almost always fits the
/// 50-result page. That matters for measurement: when every candidate is
/// visible, stronger bias shows up as worse ranks; with an overflowing
/// pool it would instead push discriminated workers off the page and out
/// of the data entirely.
pub const CATEGORY_COVERAGE: f64 = 0.65;

/// A simulated TaskRabbit-style marketplace.
#[derive(Debug, Clone)]
pub struct Marketplace {
    population: Population,
    scoring: ScoringModel,
    bias: BiasProfile,
    seed: u64,
    page_size: usize,
    category_coverage: f64,
    /// Demographics the *crawler* records per worker (e.g. AMT majority
    /// labels from `fbox-crowd`). The platform always ranks by ground
    /// truth; only the observation side uses these.
    observed_labels: Option<Vec<Demographic>>,
}

impl Marketplace {
    /// Assembles a marketplace.
    pub fn new(
        population: Population,
        scoring: ScoringModel,
        bias: BiasProfile,
        seed: u64,
    ) -> Self {
        Self {
            population,
            scoring,
            bias,
            seed,
            page_size: PAGE_SIZE,
            category_coverage: CATEGORY_COVERAGE,
            observed_labels: None,
        }
    }

    /// Overrides the per-category sign-up probability (1.0 = every worker
    /// serves every category).
    pub fn with_category_coverage(mut self, coverage: f64) -> Self {
        assert!((0.0..=1.0).contains(&coverage), "coverage must be a probability");
        self.category_coverage = coverage;
        self
    }

    /// Whether a worker serves a category (a deterministic per-worker
    /// sign-up decision).
    pub fn serves(&self, worker_id: u64, category: &str) -> bool {
        let key = mix(mix_str(0x5E7_CA7, category), worker_id);
        ((key >> 11) as f64 / (1u64 << 53) as f64) < self.category_coverage
    }

    /// Overrides the result-page size (top-N cutoff).
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        self.page_size = page_size;
        self
    }

    /// Replaces the demographics the crawler observes with external labels
    /// (one per worker, in population order) — the paper's AMT
    /// majority-vote labels. Ranking still uses ground truth; only the
    /// emitted [`RankedWorker::assignment`]s change.
    ///
    /// # Panics
    ///
    /// Panics if the label count does not match the population size.
    pub fn with_observed_labels(mut self, labels: Vec<Demographic>) -> Self {
        assert_eq!(labels.len(), self.population.len(), "need exactly one label per worker");
        self.observed_labels = Some(labels);
        self
    }

    /// The demographic the crawler records for worker index `wi`.
    fn observed(&self, wi: usize) -> Demographic {
        match &self.observed_labels {
            Some(labels) => labels[wi],
            None => self.population.workers()[wi].demographic,
        }
    }

    /// The worker population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The bias profile in force.
    pub fn bias(&self) -> &BiasProfile {
        &self.bias
    }

    /// Runs one query: ranks the city's workers by score and returns the
    /// top page **as a crawler sees it** — ranks and demographics only,
    /// `score: None`, because live marketplaces do not expose `f_q^l`
    /// (§3.3.1). Relevance is therefore rank-derived downstream, exactly
    /// as in the paper.
    ///
    /// Returns `None` if the query is not offered in the city
    /// ([`jobs::offered`]).
    pub fn run_query(&self, query_idx: usize, city_idx: usize) -> Option<MarketRanking> {
        if !jobs::offered(query_idx, city_idx) {
            return None;
        }
        let (_, _, query_name) =
            jobs::all_queries().nth(query_idx).expect("query index validated by jobs::offered");
        let category = jobs::category_of(query_idx).name;
        let location = crate::city::CITIES[city_idx].name;

        let noise_seed = mix_str(mix_str(self.seed, query_name), location);
        let mut scored: Vec<(usize, f64)> = self
            .population
            .in_city(city_idx)
            .iter()
            .filter(|&&wi| self.serves(self.population.workers()[wi].id, category))
            .map(|&wi| {
                let w = &self.population.workers()[wi];
                let s =
                    self.scoring.score(w, &self.bias, query_name, category, location, noise_seed);
                (wi, s)
            })
            .collect();
        // Sort by score desc; ties by worker id for determinism.
        scored.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then(self.population.workers()[a.0].id.cmp(&self.population.workers()[b.0].id))
        });
        scored.truncate(self.page_size);

        let workers = scored
            .iter()
            .enumerate()
            .map(|(i, &(wi, _))| RankedWorker {
                assignment: self.observed(wi).assignment(),
                rank: i + 1,
                score: None,
            })
            .collect();
        Some(MarketRanking::new(workers))
    }

    /// Like [`run_query`](Self::run_query) but also returns the internal
    /// scores (for inspection and tests; a real crawler never sees these).
    pub fn run_query_with_scores(
        &self,
        query_idx: usize,
        city_idx: usize,
    ) -> Option<Vec<(u64, f64)>> {
        if !jobs::offered(query_idx, city_idx) {
            return None;
        }
        let (_, _, query_name) = jobs::all_queries().nth(query_idx)?;
        let category = jobs::category_of(query_idx).name;
        let location = crate::city::CITIES[city_idx].name;
        let noise_seed = mix_str(mix_str(self.seed, query_name), location);
        let mut scored: Vec<(u64, f64)> = self
            .population
            .in_city(city_idx)
            .iter()
            .filter(|&&wi| self.serves(self.population.workers()[wi].id, category))
            .map(|&wi| {
                let w = &self.population.workers()[wi];
                (
                    w.id,
                    self.scoring.score(w, &self.bias, query_name, category, location, noise_seed),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(self.page_size);
        Some(scored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demographics::{Ethnicity, Gender};

    fn marketplace(bias: BiasProfile) -> Marketplace {
        Marketplace::new(Population::paper(11), ScoringModel::default(), bias, 99)
    }

    #[test]
    fn returns_top_page() {
        let m = marketplace(BiasProfile::neutral());
        let r = m.run_query(0, 0).unwrap();
        // The active pool (workers serving the category) fits the page.
        let active = m
            .population()
            .in_city(0)
            .iter()
            .filter(|&&wi| m.serves(m.population().workers()[wi].id, "Handyman"))
            .count();
        assert_eq!(r.len(), PAGE_SIZE.min(active));
        assert!(r.len() < m.population().in_city(0).len(), "some workers opt out");
        // Ranks are 1..=N (validated by MarketRanking::new) and scores
        // hidden from the crawl.
        assert!(r.workers().iter().all(|w| w.score.is_none()));
    }

    #[test]
    fn category_coverage_is_deterministic_and_partial() {
        let m = marketplace(BiasProfile::neutral());
        let serving = (0..1000u64).filter(|&id| m.serves(id, "Handyman")).count();
        assert!((550..750).contains(&serving), "≈65 % sign-up, got {serving}/1000");
        assert_eq!(m.serves(7, "Handyman"), m.serves(7, "Handyman"));
        // Full coverage restores everyone.
        let full = marketplace(BiasProfile::neutral()).with_category_coverage(1.0);
        assert_eq!(
            full.run_query(0, 0).unwrap().len(),
            PAGE_SIZE.min(full.population().in_city(0).len())
        );
    }

    #[test]
    fn unoffered_query_returns_none() {
        // The last sub-query is not offered in the partial city (index 55).
        assert!(m_last().run_query(crate::jobs::N_QUERIES - 1, 55).is_none());
        assert!(m_last().run_query(crate::jobs::N_QUERIES - 1, 0).is_some());
    }

    fn m_last() -> Marketplace {
        marketplace(BiasProfile::neutral())
    }

    #[test]
    fn ranking_is_deterministic() {
        let m = marketplace(BiasProfile::neutral());
        let a = m.run_query(3, 10).unwrap();
        let b = m.run_query(3, 10).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rankings_vary_across_queries_and_cities() {
        let m = marketplace(BiasProfile::neutral());
        let a = m.run_query(3, 10).unwrap();
        let b = m.run_query(4, 10).unwrap();
        // Different noise stream → different order (same worker pool).
        assert_ne!(a, b);
    }

    #[test]
    fn bias_pushes_target_group_down() {
        let neutral = marketplace(BiasProfile::neutral());
        let biased = marketplace(BiasProfile::neutral().with_penalty(
            Gender::Female,
            Ethnicity::Asian,
            0.35,
        ));
        // Under bias, Asian Females appear less often in the top page and
        // those who do appear sit at worse (larger) ranks on average.
        let af = (crate::demographics::Demographic {
            gender: Gender::Female,
            ethnicity: Ethnicity::Asian,
        })
        .assignment();
        let collect = |m: &Marketplace| {
            let (mut sum, mut n) = (0.0f64, 0usize);
            for q in 0..8 {
                for city in 0..8 {
                    let r = m.run_query(q * 12, city).unwrap();
                    for w in r.workers() {
                        if w.assignment == af {
                            sum += w.rank as f64;
                            n += 1;
                        }
                    }
                }
            }
            (sum / n.max(1) as f64, n)
        };
        let (mean_neutral, n_neutral) = collect(&neutral);
        let (mean_biased, n_biased) = collect(&biased);
        assert!(n_neutral > 0, "asian females must appear in neutral pages");
        // Category sign-up keeps the ranked pool within the page, so the
        // group stays visible (that is the design — see CATEGORY_COVERAGE)
        // while its ranks degrade.
        assert!(
            n_biased <= n_neutral,
            "bias must not add members to the page: {n_biased} vs {n_neutral}"
        );
        assert!(
            mean_biased > mean_neutral + 5.0,
            "bias should clearly worsen the mean rank: {mean_biased} vs {mean_neutral}"
        );
    }

    #[test]
    fn page_size_override() {
        let m = marketplace(BiasProfile::neutral()).with_page_size(10);
        assert_eq!(m.run_query(0, 0).unwrap().len(), 10);
    }

    #[test]
    fn scores_view_matches_ranking_order() {
        let m = marketplace(BiasProfile::neutral());
        let ranking = m.run_query(5, 5).unwrap();
        let scores = m.run_query_with_scores(5, 5).unwrap();
        assert_eq!(ranking.len(), scores.len());
        for w in scores.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
